//! `argos` — a user-level tasking runtime modeled after [Argobots].
//!
//! The HEPnOS paper builds on Argobots for threading and tasking: *execution
//! streams* (OS-level threads, "xstreams") run *schedulers* over *pools* of
//! *user-level threads/tasks* (ULTs), and higher layers (Margo, Yokan
//! providers) are mapped onto specific pools to decouple the compute
//! resources that execute an RPC from the data resources the RPC acts on.
//!
//! This crate reproduces that programming model in safe Rust:
//!
//! * [`Pool`] — a thread-safe work queue with a pluggable scheduling
//!   discipline ([`SchedulingDiscipline::Fifo`] or
//!   [`SchedulingDiscipline::Priority`]).
//! * [`ExecutionStream`] — an OS thread running a scheduler loop over one or
//!   more pools.
//! * [`Eventual`] — a one-shot, thread-safe future used for task completion
//!   and RPC responses (the analogue of `ABT_eventual`).
//! * [`Runtime`] — owns named pools and xstreams and tears them down in
//!   order, the analogue of `ABT_init`/`ABT_finalize`.
//!
//! **Substitution note** (see `DESIGN.md`): Argobots ULTs are stackful
//! coroutines that can suspend mid-execution. Our tasks are run-to-completion
//! closures executed on xstream threads; blocking on an [`Eventual`] parks
//! the underlying OS thread. Because HEPnOS configures roughly one xstream
//! per provider and uses pools primarily for *placement* (which resources
//! execute which RPC), this preserves the observable scheduling behaviour
//! while remaining entirely safe Rust.
//!
//! [Argobots]: https://www.argobots.org
//!
//! # Example
//!
//! ```
//! use argos::{Runtime, SchedulingDiscipline};
//!
//! let rt = Runtime::builder()
//!     .pool("work", SchedulingDiscipline::Fifo)
//!     .xstream("es0", &["work"])
//!     .build()
//!     .unwrap();
//! let pool = rt.pool("work").unwrap();
//! let h = pool.spawn(|| 21 * 2);
//! assert_eq!(h.join(), 42);
//! rt.shutdown();
//! ```

#![warn(missing_docs)]

mod eventual;
mod pool;
mod runtime;
pub mod sync;
mod xstream;

pub use eventual::Eventual;
pub use pool::{JoinHandle, Pool, PoolStats, SchedulingDiscipline, Task, TaskPriority};
pub use runtime::{Runtime, RuntimeBuilder, RuntimeError};
pub use xstream::{ExecutionStream, XstreamStats};

/// Cooperatively yield the current task.
///
/// In Argobots, `ABT_thread_yield` lets other ULTs in the same pool run. In
/// our run-to-completion model the closest analogue is yielding the OS
/// thread's timeslice, which gives other xstreams (and the progress loop) a
/// chance to run.
pub fn yield_now() {
    std::thread::yield_now();
}
