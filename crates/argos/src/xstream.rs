//! Execution streams (`ABT_xstream` analogue).

use crate::pool::Pool;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle as ThreadHandle;
use std::time::Duration;

/// How long an idle xstream waits on one pool before moving to the next.
const POLL_QUANTUM: Duration = Duration::from_millis(2);

struct Shared {
    stop: AtomicBool,
    executed: AtomicU64,
}

/// An execution stream: an OS thread running a scheduler loop over one or
/// more [`Pool`]s in round-robin order.
///
/// In Argobots terms this is an `ABT_xstream` with a basic scheduler
/// attached. The pool list is fixed at creation, mirroring Bedrock's static
/// mapping of schedulers to pools.
pub struct ExecutionStream {
    name: String,
    shared: Arc<Shared>,
    handle: Option<ThreadHandle<()>>,
}

/// Counters for a running execution stream.
#[derive(Debug, Clone, Copy)]
pub struct XstreamStats {
    /// Total number of tasks this xstream has executed.
    pub tasks_executed: u64,
}

impl ExecutionStream {
    /// Spawn an execution stream draining `pools` (round-robin among them).
    ///
    /// # Panics
    ///
    /// Panics if `pools` is empty.
    pub fn spawn(name: impl Into<String>, pools: Vec<Pool>) -> Self {
        assert!(!pools.is_empty(), "xstream needs at least one pool");
        let name = name.into();
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            executed: AtomicU64::new(0),
        });
        let sh = Arc::clone(&shared);
        let tname = name.clone();
        let handle = std::thread::Builder::new()
            .name(format!("argos-xs-{tname}"))
            .spawn(move || scheduler_loop(&pools, &sh))
            .expect("failed to spawn xstream thread");
        ExecutionStream {
            name,
            shared,
            handle: Some(handle),
        }
    }

    /// The xstream's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Snapshot of execution counters.
    pub fn stats(&self) -> XstreamStats {
        XstreamStats {
            tasks_executed: self.shared.executed.load(Ordering::Relaxed),
        }
    }

    /// Request the scheduler loop to stop once its pools stop yielding work,
    /// then join the thread. Called automatically on drop.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ExecutionStream {
    fn drop(&mut self) {
        self.join_inner();
    }
}

fn scheduler_loop(pools: &[Pool], shared: &Shared) {
    loop {
        let mut ran = false;
        for pool in pools {
            // Drain eagerly: popping without blocking while work is
            // available keeps hot pools hot.
            while let Some(task) = pool.try_pop() {
                task();
                shared.executed.fetch_add(1, Ordering::Relaxed);
                ran = true;
            }
        }
        if ran {
            continue;
        }
        if shared.stop.load(Ordering::Acquire) {
            // Final sweep: a task may have been pushed between the drain and
            // the stop check.
            let leftover = pools.iter().any(|p| !p.is_empty());
            if !leftover {
                return;
            }
            continue;
        }
        // Idle: block briefly on the first pool. close() wakes us.
        if let Some(task) = pools[0].pop_timeout(POLL_QUANTUM) {
            task();
            shared.executed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::SchedulingDiscipline;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_submitted_tasks() {
        let pool = Pool::new("p", SchedulingDiscipline::Fifo);
        let xs = ExecutionStream::spawn("es", vec![pool.clone()]);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..100)
            .map(|_| {
                let c = Arc::clone(&counter);
                pool.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert!(xs.stats().tasks_executed >= 100);
        pool.close();
        xs.join();
    }

    #[test]
    fn drains_before_stopping() {
        let pool = Pool::new("p", SchedulingDiscipline::Fifo);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.push(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let xs = ExecutionStream::spawn("es", vec![pool.clone()]);
        pool.close();
        xs.join();
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn round_robin_over_multiple_pools() {
        let p1 = Pool::new("a", SchedulingDiscipline::Fifo);
        let p2 = Pool::new("b", SchedulingDiscipline::Fifo);
        let xs = ExecutionStream::spawn("es", vec![p1.clone(), p2.clone()]);
        let h1 = p1.spawn(|| 1);
        let h2 = p2.spawn(|| 2);
        assert_eq!(h1.join() + h2.join(), 3);
        p1.close();
        p2.close();
        xs.join();
    }

    #[test]
    fn multiple_xstreams_share_a_pool() {
        let pool = Pool::new("p", SchedulingDiscipline::Fifo);
        let xs: Vec<_> = (0..4)
            .map(|i| ExecutionStream::spawn(format!("es{i}"), vec![pool.clone()]))
            .collect();
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..400)
            .map(|_| {
                let c = Arc::clone(&counter);
                pool.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 400);
        pool.close();
        for x in xs {
            x.join();
        }
    }
}
