//! Task-level synchronization primitives (`ABT_mutex`/`ABT_barrier`
//! analogues).
//!
//! These are thin, documented wrappers over `parking_lot` so that code
//! written against the argos API does not reach for `std::sync` directly
//! (matching how Mochi code uses `ABT_mutex` instead of `pthread_mutex`).
//! Since argos tasks run to completion on xstream threads, blocking a task
//! blocks its xstream — exactly the cost model a Mochi provider sees when it
//! holds `ABT_mutex` across a long critical section.

use parking_lot::{Condvar, Mutex as PlMutex, RwLock as PlRwLock};
use std::sync::Arc;

/// Mutual exclusion usable from any task.
pub struct Mutex<T> {
    inner: PlMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: PlMutex::new(value),
        }
    }

    /// Lock, blocking the calling xstream if contended.
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, T> {
        self.inner.lock()
    }

    /// Try to lock without blocking.
    pub fn try_lock(&self) -> Option<parking_lot::MutexGuard<'_, T>> {
        self.inner.try_lock()
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Reader-writer lock usable from any task.
pub struct RwLock<T> {
    inner: PlRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: PlRwLock::new(value),
        }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> parking_lot::RwLockReadGuard<'_, T> {
        self.inner.read()
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> parking_lot::RwLockWriteGuard<'_, T> {
        self.inner.write()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

struct BarrierState {
    waiting: usize,
    generation: u64,
}

/// A reusable barrier for `n` participants (`ABT_barrier` analogue).
#[derive(Clone)]
pub struct Barrier {
    n: usize,
    state: Arc<(PlMutex<BarrierState>, Condvar)>,
}

impl Barrier {
    /// Create a barrier for `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        Barrier {
            n,
            state: Arc::new((
                PlMutex::new(BarrierState {
                    waiting: 0,
                    generation: 0,
                }),
                Condvar::new(),
            )),
        }
    }

    /// Wait until all `n` participants arrive. Returns `true` for exactly one
    /// "leader" arrival per generation.
    pub fn wait(&self) -> bool {
        let (lock, cond) = &*self.state;
        let mut st = lock.lock();
        let gen = st.generation;
        st.waiting += 1;
        if st.waiting == self.n {
            st.waiting = 0;
            st.generation = st.generation.wrapping_add(1);
            cond.notify_all();
            return true;
        }
        while st.generation == gen {
            cond.wait(&mut st);
        }
        false
    }
}

struct SemState {
    permits: usize,
}

/// A counting semaphore, useful for bounding in-flight work (e.g. limiting
/// outstanding asynchronous flushes against one provider).
#[derive(Clone)]
pub struct Semaphore {
    state: Arc<(PlMutex<SemState>, Condvar)>,
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            state: Arc::new((PlMutex::new(SemState { permits }), Condvar::new())),
        }
    }

    /// Acquire one permit, blocking until available. Returns a guard that
    /// releases the permit on drop.
    pub fn acquire(&self) -> SemaphoreGuard {
        let (lock, cond) = &*self.state;
        let mut st = lock.lock();
        while st.permits == 0 {
            cond.wait(&mut st);
        }
        st.permits -= 1;
        SemaphoreGuard { sem: self.clone() }
    }

    /// Try to acquire without blocking.
    pub fn try_acquire(&self) -> Option<SemaphoreGuard> {
        let (lock, _) = &*self.state;
        let mut st = lock.lock();
        if st.permits == 0 {
            return None;
        }
        st.permits -= 1;
        Some(SemaphoreGuard { sem: self.clone() })
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.state.0.lock().permits
    }

    fn release(&self) {
        let (lock, cond) = &*self.state;
        lock.lock().permits += 1;
        cond.notify_one();
    }
}

/// Releases its permit when dropped.
pub struct SemaphoreGuard {
    sem: Semaphore,
}

impl Drop for SemaphoreGuard {
    fn drop(&mut self) {
        self.sem.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut ts = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            ts.push(thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for t in ts {
            t.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let mut ts = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            ts.push(thread::spawn(move || l.read().iter().sum::<i32>()));
        }
        for t in ts {
            assert_eq!(t.join().unwrap(), 6);
        }
    }

    #[test]
    fn barrier_synchronizes_and_elects_one_leader() {
        let b = Barrier::new(4);
        let leaders = Arc::new(AtomicUsize::new(0));
        let mut ts = Vec::new();
        for _ in 0..4 {
            let b = b.clone();
            let leaders = Arc::clone(&leaders);
            ts.push(thread::spawn(move || {
                if b.wait() {
                    leaders.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for t in ts {
            t.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn barrier_is_reusable() {
        let b = Barrier::new(2);
        let b2 = b.clone();
        let t = thread::spawn(move || {
            for _ in 0..10 {
                b2.wait();
            }
        });
        for _ in 0..10 {
            b.wait();
        }
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_barrier_panics() {
        let _ = Barrier::new(0);
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        let sem = Semaphore::new(2);
        let peak = Arc::new(AtomicUsize::new(0));
        let current = Arc::new(AtomicUsize::new(0));
        let mut ts = Vec::new();
        for _ in 0..8 {
            let sem = sem.clone();
            let peak = Arc::clone(&peak);
            let current = Arc::clone(&current);
            ts.push(thread::spawn(move || {
                let _g = sem.acquire();
                let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                thread::sleep(std::time::Duration::from_millis(5));
                current.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for t in ts {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn semaphore_try_acquire() {
        let sem = Semaphore::new(1);
        let g = sem.try_acquire().unwrap();
        assert!(sem.try_acquire().is_none());
        assert_eq!(sem.available(), 0);
        drop(g);
        assert_eq!(sem.available(), 1);
        assert!(sem.try_acquire().is_some());
    }
}
