//! Runtime: named pools + xstreams with ordered teardown
//! (`ABT_init`/`ABT_finalize` analogue).

use crate::pool::{Pool, SchedulingDiscipline};
use crate::xstream::ExecutionStream;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors raised while building or using a [`Runtime`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Two pools or two xstreams were declared with the same name.
    DuplicateName(String),
    /// An xstream referenced a pool that was never declared.
    UnknownPool(String),
    /// An xstream was declared with no pools.
    EmptyXstream(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DuplicateName(n) => write!(f, "duplicate name: {n}"),
            RuntimeError::UnknownPool(n) => write!(f, "unknown pool: {n}"),
            RuntimeError::EmptyXstream(n) => write!(f, "xstream {n} has no pools"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Declarative builder for a [`Runtime`] — the programmatic equivalent of a
/// Bedrock "argobots" configuration section.
#[derive(Default)]
pub struct RuntimeBuilder {
    pools: Vec<(String, SchedulingDiscipline)>,
    xstreams: Vec<(String, Vec<String>)>,
}

impl RuntimeBuilder {
    /// Declare a pool.
    pub fn pool(mut self, name: &str, discipline: SchedulingDiscipline) -> Self {
        self.pools.push((name.to_string(), discipline));
        self
    }

    /// Declare an xstream draining the named pools, in round-robin order.
    pub fn xstream(mut self, name: &str, pools: &[&str]) -> Self {
        self.xstreams.push((
            name.to_string(),
            pools.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Validate the declaration and start all xstream threads.
    pub fn build(self) -> Result<Runtime, RuntimeError> {
        let mut pools: HashMap<String, Pool> = HashMap::with_capacity(self.pools.len());
        for (name, disc) in self.pools {
            if pools.contains_key(&name) {
                return Err(RuntimeError::DuplicateName(name));
            }
            pools.insert(name.clone(), Pool::new(name, disc));
        }
        let mut seen = std::collections::HashSet::new();
        let mut xstreams = Vec::with_capacity(self.xstreams.len());
        for (name, pool_names) in self.xstreams {
            if !seen.insert(name.clone()) {
                return Err(RuntimeError::DuplicateName(name));
            }
            if pool_names.is_empty() {
                return Err(RuntimeError::EmptyXstream(name));
            }
            let mut ps = Vec::with_capacity(pool_names.len());
            for pn in &pool_names {
                ps.push(
                    pools
                        .get(pn)
                        .cloned()
                        .ok_or_else(|| RuntimeError::UnknownPool(pn.clone()))?,
                );
            }
            xstreams.push(ExecutionStream::spawn(name, ps));
        }
        Ok(Runtime {
            inner: Arc::new(RuntimeInner {
                pools,
                xstreams: Mutex::new(xstreams),
            }),
        })
    }
}

struct RuntimeInner {
    pools: HashMap<String, Pool>,
    xstreams: Mutex<Vec<ExecutionStream>>,
}

/// Owns a set of named pools and the execution streams draining them.
///
/// Cloning yields another handle to the same runtime. [`Runtime::shutdown`]
/// closes every pool (letting queued work drain) and joins every xstream.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RuntimeInner>,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("pools", &self.pool_names())
            .field("xstreams", &self.num_xstreams())
            .finish()
    }
}

impl Runtime {
    /// Start building a runtime.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// Convenience: one FIFO pool named `"default"` drained by `n` xstreams.
    pub fn simple(n_xstreams: usize) -> Runtime {
        let mut b = Runtime::builder().pool("default", SchedulingDiscipline::Fifo);
        for i in 0..n_xstreams.max(1) {
            b = b.xstream(&format!("es{i}"), &["default"]);
        }
        b.build().expect("simple runtime construction cannot fail")
    }

    /// Look up a pool by name.
    pub fn pool(&self, name: &str) -> Option<Pool> {
        self.inner.pools.get(name).cloned()
    }

    /// The `"default"` pool, if declared.
    pub fn default_pool(&self) -> Option<Pool> {
        self.pool("default")
    }

    /// Names of all pools.
    pub fn pool_names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.inner.pools.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of running xstreams.
    pub fn num_xstreams(&self) -> usize {
        self.inner.xstreams.lock().len()
    }

    /// Close every pool, drain queued tasks, and join every xstream.
    /// Idempotent.
    pub fn shutdown(&self) {
        for pool in self.inner.pools.values() {
            if !pool.is_closed() {
                pool.close();
            }
        }
        let mut xs = self.inner.xstreams.lock();
        for x in xs.drain(..) {
            x.join();
        }
    }
}

impl Drop for RuntimeInner {
    fn drop(&mut self) {
        for pool in self.pools.values() {
            if !pool.is_closed() {
                pool.close();
            }
        }
        // ExecutionStream::drop joins each thread.
        self.xstreams.get_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn builder_validates_duplicate_pool() {
        let err = Runtime::builder()
            .pool("a", SchedulingDiscipline::Fifo)
            .pool("a", SchedulingDiscipline::Fifo)
            .build()
            .unwrap_err();
        assert_eq!(err, RuntimeError::DuplicateName("a".into()));
    }

    #[test]
    fn builder_validates_unknown_pool() {
        let err = Runtime::builder()
            .pool("a", SchedulingDiscipline::Fifo)
            .xstream("es", &["nope"])
            .build()
            .unwrap_err();
        assert_eq!(err, RuntimeError::UnknownPool("nope".into()));
    }

    #[test]
    fn builder_validates_empty_xstream() {
        let err = Runtime::builder()
            .pool("a", SchedulingDiscipline::Fifo)
            .xstream("es", &[])
            .build()
            .unwrap_err();
        assert_eq!(err, RuntimeError::EmptyXstream("es".into()));
    }

    #[test]
    fn simple_runtime_runs_work() {
        let rt = Runtime::simple(2);
        let pool = rt.default_pool().unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..64)
            .map(|_| {
                let c = Arc::clone(&counter);
                pool.spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        rt.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let rt = Runtime::simple(1);
        rt.shutdown();
        rt.shutdown();
    }

    #[test]
    fn multi_pool_topology() {
        // The HEPnOS server shape: dedicated pool per provider plus a shared
        // RPC pool.
        let rt = Runtime::builder()
            .pool("rpc", SchedulingDiscipline::Fifo)
            .pool("db0", SchedulingDiscipline::Fifo)
            .pool("db1", SchedulingDiscipline::Fifo)
            .xstream("es-rpc", &["rpc"])
            .xstream("es-db0", &["db0", "rpc"])
            .xstream("es-db1", &["db1", "rpc"])
            .build()
            .unwrap();
        assert_eq!(rt.num_xstreams(), 3);
        assert_eq!(rt.pool_names(), vec!["db0", "db1", "rpc"]);
        let h = rt.pool("db1").unwrap().spawn(|| "ok");
        assert_eq!(h.join(), "ok");
        rt.shutdown();
        assert_eq!(rt.num_xstreams(), 0);
    }
}
