//! Ablation A (paper §II-D): batching amortizes per-RPC cost when storing
//! many small products. Sweeps the WriteBatch flush limit from 1 (every
//! store is its own RPC) to 4096, on a live in-process deployment with a
//! realistic per-RPC network latency.

use bedrock::DbCounts;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hepnos::testing::{local_deployment_with, LocalDeployment};
use hepnos::{ProductLabel, WriteBatch};
use mercurio::NetworkModel;
use std::time::Duration;

fn deployment() -> LocalDeployment {
    // A non-ideal network: each RPC costs 20us each way, so batching wins.
    local_deployment_with(
        1,
        DbCounts::default(),
        bedrock::BackendKind::Map,
        None,
        NetworkModel {
            latency: Duration::from_micros(20),
            ..Default::default()
        },
    )
}

fn bench_store_batching(c: &mut Criterion) {
    let dep = deployment();
    let store = dep.datastore();
    let ds = store.root().create_dataset("ablation").unwrap();
    let uuid = ds.uuid().unwrap();
    let label = ProductLabel::new("hits").unwrap();
    let mut g = c.benchmark_group("write_batching");
    g.sample_size(10);
    let mut subrun_counter = 0u64;
    const N_PRODUCTS: u64 = 256;
    for batch_limit in [1usize, 16, 64, 1024] {
        g.bench_with_input(
            BenchmarkId::new("store_256_products", batch_limit),
            &batch_limit,
            |b, &limit| {
                b.iter(|| {
                    subrun_counter += 1;
                    let run = ds.create_run(1).unwrap();
                    let sr = run.create_subrun(subrun_counter).unwrap();
                    let mut batch = WriteBatch::new(&store).with_per_db_limit(limit);
                    for e in 0..N_PRODUCTS {
                        let ev = batch.create_event(&sr, &uuid, e).unwrap();
                        batch.store(&ev, &label, &vec![e as f32; 16]).unwrap();
                    }
                    batch.flush().unwrap();
                })
            },
        );
    }
    g.finish();
    dep.shutdown();
}

fn bench_async_overlap(c: &mut Criterion) {
    // AsyncWriteBatch ships full groups in the background (paper §II-D);
    // under visible RPC latency the overlap beats the synchronous batch.
    let dep = deployment();
    let store = dep.datastore();
    let ds = store.root().create_dataset("async-ablation").unwrap();
    let uuid = ds.uuid().unwrap();
    let label = hepnos::ProductLabel::new("hits").unwrap();
    let rt = argos::Runtime::simple(2);
    let mut g = c.benchmark_group("async_vs_sync_batch");
    g.sample_size(10);
    let mut subrun_counter = 1_000_000u64;
    g.bench_function("sync_512_products_limit64", |b| {
        b.iter(|| {
            subrun_counter += 1;
            let sr = ds
                .create_run(2)
                .unwrap()
                .create_subrun(subrun_counter)
                .unwrap();
            let mut batch = WriteBatch::new(&store).with_per_db_limit(64);
            for e in 0..512u64 {
                let ev = batch.create_event(&sr, &uuid, e).unwrap();
                batch.store(&ev, &label, &vec![e as f32; 8]).unwrap();
            }
            batch.flush().unwrap();
        })
    });
    g.bench_function("async_512_products_limit64", |b| {
        b.iter(|| {
            subrun_counter += 1;
            let sr = ds
                .create_run(2)
                .unwrap()
                .create_subrun(subrun_counter)
                .unwrap();
            let mut batch = hepnos::AsyncWriteBatch::new(&store, rt.default_pool().unwrap())
                .with_per_db_limit(64);
            for e in 0..512u64 {
                let ev = batch.create_event(&sr, &uuid, e).unwrap();
                batch.store(&ev, &label, &vec![e as f32; 8]).unwrap();
            }
            batch.wait().unwrap();
        })
    });
    g.finish();
    rt.shutdown();
    dep.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_store_batching, bench_async_overlap
}
criterion_main!(benches);
