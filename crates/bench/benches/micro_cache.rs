//! Microbenchmark: the read cache under reader concurrency — one global
//! lock (shards=1, the pre-sharding layout) versus the N-way sharded cache.
//!
//! Each iteration runs T threads doing a read-mostly mix (1/16 inserts)
//! over a prefilled working set. The sharded layout should scale with
//! threads while the single lock serializes them; at one thread the two
//! must be within noise of each other.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lsmdb::ShardedReadCache;
use std::sync::Arc;

const CAPACITY: usize = 64 << 20;
const KEYS: u32 = 4096;
const OPS_PER_THREAD: usize = 4096;
const VALUE: [u8; 128] = [0u8; 128];

fn prefill(cache: &ShardedReadCache) {
    for i in 0..KEYS {
        cache.insert(&i.to_be_bytes(), &VALUE);
    }
}

fn run(cache: &Arc<ShardedReadCache>, threads: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let cache = Arc::clone(cache);
            s.spawn(move || {
                // Per-thread LCG so threads walk the keyspace independently.
                let mut x = (t as u32).wrapping_mul(2_654_435_761).wrapping_add(1);
                for _ in 0..OPS_PER_THREAD {
                    x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    let k = (x % KEYS).to_be_bytes();
                    if x.is_multiple_of(16) {
                        cache.insert(&k, &VALUE);
                    } else {
                        black_box(cache.get(&k));
                    }
                }
            });
        }
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_read_path");
    // Shard count is pinned to 8 rather than taking the host default so the
    // comparison is against a genuinely sharded layout even on small hosts
    // (where `default_shard_count()` collapses to 1).
    for &threads in &[1usize, 2, 4, 8] {
        for (label, shards) in [("single_lock", 1), ("sharded", 8)] {
            let cache = Arc::new(ShardedReadCache::with_shards(CAPACITY, shards));
            prefill(&cache);
            g.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| run(&cache, threads))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
