//! Ablation D (paper §II-C3): placement by hash of the *parent* key keeps
//! all children of a container in one database, so iteration is a single
//! database's sorted scan. The alternative the paper rejects — consistent
//! hashing of the *full* key — would require "interrogating all the servers
//! and merging their results". We measure both strategies against the same
//! deployment: the parent-key path uses the normal HEPnOS iterator; the
//! full-key path is emulated by scatter-gathering over every event
//! database and merging.

use bedrock::DbCounts;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hepnos::testing::local_deployment_with;
use hepnos::WriteBatch;
use mercurio::NetworkModel;
use std::time::Duration;
use yokan::{DbTarget, YokanClient};

fn bench_placement_strategies(c: &mut Criterion) {
    let dep = local_deployment_with(
        2,
        DbCounts {
            datasets: 1,
            runs: 1,
            subruns: 1,
            events: 8,
            products: 8,
        },
        bedrock::BackendKind::Map,
        None,
        NetworkModel {
            latency: Duration::from_micros(20),
            ..Default::default()
        },
    );
    let store = dep.datastore();
    let ds = store.root().create_dataset("placement").unwrap();
    let uuid = ds.uuid().unwrap();
    let run = ds.create_run(1).unwrap();
    for s in 0..16u64 {
        let sr = run.create_subrun(s).unwrap();
        let mut batch = WriteBatch::new(&store);
        for e in 0..200u64 {
            batch.create_event(&sr, &uuid, e).unwrap();
        }
        batch.flush().unwrap();
    }
    let sr5 = run.subrun(5).unwrap();
    // Scatter-gather emulation: ask every event database for the subrun's
    // prefix and merge (only one actually has data under parent-key
    // placement, but a full-key scheme would spread them and *every*
    // database must be asked either way — the cost being measured).
    let client = YokanClient::new(dep.fabric().endpoint("placement-bench"));
    let event_dbs: Vec<DbTarget> = dep
        .descriptors()
        .iter()
        .flat_map(|d| {
            d.providers.iter().flat_map(|p| {
                p.databases
                    .iter()
                    .filter(|n| n.starts_with("events"))
                    .map(|n| DbTarget::new(d.address.clone(), p.provider_id, n))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    assert_eq!(event_dbs.len(), 16);
    let prefix = sr5.key().to_vec();

    let mut g = c.benchmark_group("placement_iteration");
    g.sample_size(10);
    g.bench_function("parent_key_single_db", |b| {
        b.iter(|| {
            let evs = sr5.events().unwrap();
            assert_eq!(evs.len(), 200);
            black_box(evs);
        })
    });
    g.bench_function("full_key_scatter_gather", |b| {
        b.iter(|| {
            let mut all = Vec::new();
            for db in &event_dbs {
                let keys = client.list_keys(db, &prefix, &prefix, 0).unwrap();
                all.extend(keys);
            }
            all.sort();
            assert_eq!(all.len(), 200);
            black_box(all);
        })
    });
    g.finish();
    dep.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_placement_strategies
}
criterion_main!(benches);
