//! Criterion companion to the `figure2`/`figure3` binaries: times one
//! virtual-time simulation of each workflow model at the paper's largest
//! configuration, demonstrating the whole 256-node sweep costs milliseconds
//! — the point of simulating Theta instead of sleeping through it.

use cluster::{
    Backend, CostModel, DatasetSpec, FileWorkflowModel, HepnosWorkflowModel, ThetaMachine,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_models(c: &mut Criterion) {
    let d = DatasetSpec::nova_replicated(4);
    let mut g = c.benchmark_group("cluster_models");
    g.sample_size(10);
    g.bench_function("file_workflow_256_nodes", |b| {
        b.iter(|| {
            let r = FileWorkflowModel {
                n_nodes: 256,
                machine: ThetaMachine::default(),
                dataset: d,
                costs: CostModel::default(),
            }
            .simulate();
            black_box(r.throughput);
        })
    });
    g.bench_function("hepnos_memory_256_nodes", |b| {
        b.iter(|| {
            let r = HepnosWorkflowModel {
                n_nodes: 256,
                machine: ThetaMachine::default(),
                dataset: d,
                costs: CostModel::default(),
                backend: Backend::Memory,
            }
            .simulate();
            black_box(r.throughput);
        })
    });
    g.bench_function("hepnos_lsm_256_nodes", |b| {
        b.iter(|| {
            let r = HepnosWorkflowModel {
                n_nodes: 256,
                machine: ThetaMachine::default(),
                dataset: d,
                costs: CostModel::default(),
                backend: Backend::Lsm,
            }
            .simulate();
            black_box(r.throughput);
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_models
}
criterion_main!(benches);
