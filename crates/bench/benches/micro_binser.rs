//! Microbenchmark: product serialization (the Boost-serialization analogue)
//! — the per-product CPU cost every store/load pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nova::{NovaGenerator, SliceQuantities};
use std::time::Duration;

fn bench_binser(c: &mut Criterion) {
    let gen = NovaGenerator::new(5);
    let ev = gen.generate(1, 2, 3);
    let slices: Vec<SliceQuantities> = ev.slices.clone();
    let bytes = hepnos::binser::to_bytes(&slices).unwrap();
    let mut g = c.benchmark_group("binser");
    g.throughput(criterion::Throughput::Bytes(bytes.len() as u64));
    g.bench_function("serialize_slice_vec", |b| {
        b.iter(|| hepnos::binser::to_bytes(black_box(&slices)).unwrap())
    });
    g.bench_function("deserialize_slice_vec", |b| {
        b.iter(|| {
            let v: Vec<SliceQuantities> = hepnos::binser::from_bytes(black_box(&bytes)).unwrap();
            v
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench_binser
}
criterion_main!(benches);
