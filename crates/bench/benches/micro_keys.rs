//! Microbenchmark: key encoding/decoding throughput (the metadata hot path
//! of every store/load/iterate operation).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hepnos::keys;
use hepnos::placement::{ModuloPlacement, Placement, RingPlacement};
use hepnos::Uuid;
use std::time::Duration;

fn bench_keys(c: &mut Criterion) {
    let uuid = Uuid::from_bytes([7u8; 16]);
    let mut g = c.benchmark_group("keys");
    g.bench_function("event_key_encode", |b| {
        b.iter(|| keys::event_key(black_box(&uuid), 12, 34, 56))
    });
    let ek = keys::event_key(&uuid, 12, 34, 56);
    g.bench_function("event_key_parse", |b| {
        b.iter(|| keys::parse_event_key(black_box(&ek)))
    });
    g.bench_function("product_key_encode", |b| {
        b.iter(|| keys::product_key(black_box(&ek), "rec.slc", "Vec<SliceQuantities>"))
    });
    g.bench_function("dataset_key_encode", |b| {
        b.iter(|| keys::dataset_key(black_box("fermilab/nova"), "mc"))
    });
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    let uuid = Uuid::from_bytes([9u8; 16]);
    let subrun_key = keys::subrun_key(&uuid, 3, 4);
    let modulo = ModuloPlacement;
    let ring = RingPlacement::default();
    let mut g = c.benchmark_group("placement");
    g.bench_function("modulo_place", |b| {
        b.iter(|| modulo.place(black_box(&subrun_key), 64))
    });
    g.bench_function("ring_place", |b| {
        b.iter(|| ring.place(black_box(&subrun_key), 64))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    targets = bench_keys, bench_placement
}
criterion_main!(benches);
