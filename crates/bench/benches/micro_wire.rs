//! Microbenchmark: the TCP send path under writer concurrency — per-frame
//! writes (`max_coalesce_frames = 1`, the pre-pipelining behaviour: one
//! write+flush syscall pair per frame) versus the coalescing writer thread
//! (all frames queued at drain time go out in one buffered write).
//!
//! Each iteration runs T threads issuing a burst of async echo RPCs over a
//! shared client endpoint and waits for all responses. On a 1-CPU host the
//! expected signal is reduced lock-handoff/syscall count per op rather than
//! parallel speedup (as with the cache microbench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mercurio::tcp::{TcpEndpoint, TcpSendConfig};
use mercurio::{Endpoint, Request, RpcId};
use std::sync::Arc;

const CALLS_PER_THREAD: usize = 256;
const PAYLOAD: usize = 128;

fn echo_server() -> Arc<TcpEndpoint> {
    let s = TcpEndpoint::bind(0).expect("bind server");
    s.register(RpcId(1), Arc::new(|req: Request| Ok(req.payload)));
    s
}

fn run(client: &Arc<TcpEndpoint>, addr: &str, threads: usize) {
    std::thread::scope(|s| {
        for _ in 0..threads {
            let client = Arc::clone(client);
            s.spawn(move || {
                let payload = bytes::Bytes::from(vec![7u8; PAYLOAD]);
                let pending: Vec<_> = (0..CALLS_PER_THREAD)
                    .map(|_| client.call_async(addr, RpcId(1), 0, payload.clone()))
                    .collect();
                for p in pending {
                    p.wait().expect("echo rpc failed");
                }
            });
        }
    });
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp_send_path");
    for &threads in &[1usize, 2, 4, 8] {
        for (label, coalesce) in [("per_frame", 1usize), ("coalesced", 64)] {
            let server = echo_server();
            let addr = server.address();
            let client = TcpEndpoint::bind_with(
                0,
                TcpSendConfig {
                    max_coalesce_frames: coalesce,
                    max_queued_frames: 1024,
                },
            )
            .expect("bind client");
            g.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| run(&client, &addr, threads))
            });
            let st = client.stats();
            eprintln!(
                "# {label}/{threads}: frames_sent={} wire_writes={} coalescing={:.1}x stalls={}",
                st.frames_sent,
                st.wire_writes,
                st.frames_sent as f64 / st.wire_writes.max(1) as f64,
                st.send_stalls,
            );
            client.shutdown();
            server.shutdown();
        }
    }
    g.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
