//! Ablation C: in-memory vs LSM backend raw key-value throughput — the
//! server-side half of Fig. 2's in-memory vs RocksDB comparison, measured
//! on the real backends through the Yokan `Backend` trait.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;
use std::time::Duration;
use yokan::{Backend, LsmBackend, MemBackend};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("yokan-bench-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn backends(tag: &str) -> Vec<(&'static str, Box<dyn Backend>, Option<PathBuf>)> {
    let dir = tmpdir(tag);
    vec![
        ("map", Box::new(MemBackend::new()) as Box<dyn Backend>, None),
        ("lsm", Box::new(LsmBackend::open(&dir).unwrap()), Some(dir)),
    ]
}

fn bench_put_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend_put_get");
    for (name, backend, dir) in backends("pg") {
        let mut i = 0u64;
        g.bench_with_input(BenchmarkId::new("put_360B", name), &(), |b, _| {
            b.iter(|| {
                i += 1;
                backend.put(&i.to_be_bytes(), &[0u8; 360]).unwrap();
            })
        });
        // Preload for gets.
        for k in 0..20_000u64 {
            backend.put(&k.to_be_bytes(), &[1u8; 360]).unwrap();
        }
        let mut j = 0u64;
        g.bench_with_input(BenchmarkId::new("get_360B", name), &(), |b, _| {
            b.iter(|| {
                j = (j + 7919) % 20_000;
                black_box(backend.get(&j.to_be_bytes()).unwrap());
            })
        });
        drop(backend);
        if let Some(d) = dir {
            std::fs::remove_dir_all(&d).ok();
        }
    }
    g.finish();
}

fn bench_batch_listing(c: &mut Criterion) {
    // The PEP read path: list_keyvals in large pages — the batch the paper
    // sizes at 16384.
    let mut g = c.benchmark_group("backend_list");
    g.sample_size(10);
    for (name, backend, dir) in backends("ls") {
        for k in 0..50_000u64 {
            backend.put(&k.to_be_bytes(), &[2u8; 360]).unwrap();
        }
        for page in [64usize, 1024, 16384] {
            g.bench_with_input(
                BenchmarkId::new(format!("list_keyvals_{page}"), name),
                &page,
                |b, &page| {
                    b.iter(|| {
                        black_box(backend.list_keyvals(&[], &[], page).unwrap());
                    })
                },
            );
        }
        drop(backend);
        if let Some(d) = dir {
            std::fs::remove_dir_all(&d).ok();
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_put_get, bench_batch_listing
}
criterion_main!(benches);
