//! Ablation B (paper §IV-D): the ParallelEventProcessor's two batch sizes —
//! large *load* batches (paper: 16384; fewer RPCs, bigger payloads) and
//! small *dispatch* batches (paper: 64; fine-grained load balancing).
//! Sweeps both over a live deployment with per-RPC latency.

use bedrock::DbCounts;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hepnos::testing::local_deployment_with;
use hepnos::{ParallelEventProcessor, PepOptions, ProductLabel, WriteBatch};
use mercurio::NetworkModel;
use std::time::Duration;

fn bench_pep_batches(c: &mut Criterion) {
    let dep = local_deployment_with(
        1,
        DbCounts::default(),
        bedrock::BackendKind::Map,
        None,
        NetworkModel {
            latency: Duration::from_micros(20),
            ..Default::default()
        },
    );
    let store = dep.datastore();
    let ds = store.root().create_dataset("pep").unwrap();
    let uuid = ds.uuid().unwrap();
    let label = ProductLabel::new("p").unwrap();
    let run = ds.create_run(1).unwrap();
    for s in 0..8u64 {
        let sr = run.create_subrun(s).unwrap();
        let mut batch = WriteBatch::new(&store);
        for e in 0..500u64 {
            let ev = batch.create_event(&sr, &uuid, e).unwrap();
            batch.store(&ev, &label, &vec![1.0f32; 8]).unwrap();
        }
        batch.flush().unwrap();
    }
    let mut g = c.benchmark_group("pep_batches");
    g.sample_size(10);
    for load_batch in [256usize, 4096] {
        for dispatch_batch in [8usize, 64, 512] {
            let id = format!("load{load_batch}_dispatch{dispatch_batch}");
            g.bench_with_input(BenchmarkId::new("process_4000", id), &(), |b, _| {
                b.iter(|| {
                    let pep = ParallelEventProcessor::new(
                        store.clone(),
                        PepOptions {
                            load_batch_size: load_batch,
                            dispatch_batch_size: dispatch_batch,
                            num_workers: 4,
                            ..Default::default()
                        },
                    );
                    let stats = pep.process(&ds, |_w, _e| {}).unwrap();
                    assert_eq!(stats.total_events, 4000);
                })
            });
        }
    }
    g.finish();
    dep.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_pep_batches
}
criterion_main!(benches);
