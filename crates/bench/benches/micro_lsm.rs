//! Microbenchmark: the LSM engine (RocksDB substitute) — write path (WAL +
//! memtable), read path (memtable / SST + bloom), and sorted scans.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use lsmdb::{Db, Options};
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lsm-bench-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn bench_writes(c: &mut Criterion) {
    let dir = tmpdir("w");
    let db = Db::open(&dir, Options::default()).unwrap();
    let mut i = 0u64;
    let mut g = c.benchmark_group("lsm_write");
    g.bench_function("put_100B", |b| {
        b.iter(|| {
            i += 1;
            db.put(&i.to_be_bytes(), &[0u8; 100]).unwrap();
        })
    });
    let mut batch_i = 0u64;
    g.bench_function("put_multi_64x100B", |b| {
        b.iter_batched(
            || {
                let mut wb = lsmdb::WriteBatch::new();
                for _ in 0..64 {
                    batch_i += 1;
                    wb.put(&batch_i.to_be_bytes(), &[0u8; 100]);
                }
                wb
            },
            |wb| db.write(black_box(&wb)).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_reads(c: &mut Criterion) {
    let dir = tmpdir("r");
    let db = Db::open(&dir, Options::default()).unwrap();
    for i in 0..50_000u64 {
        db.put(&i.to_be_bytes(), &[1u8; 100]).unwrap();
    }
    db.compact().unwrap(); // cold path: everything in L1 SSTs
    let mut g = c.benchmark_group("lsm_read");
    let mut i = 0u64;
    g.bench_function("get_hit_sst", |b| {
        b.iter(|| {
            i = (i + 7919) % 50_000;
            black_box(db.get(&i.to_be_bytes()).unwrap());
        })
    });
    g.bench_function("get_miss_bloom", |b| {
        b.iter(|| {
            i += 1;
            black_box(db.get(&(100_000 + i).to_be_bytes()).unwrap());
        })
    });
    g.bench_function("scan_1024", |b| {
        b.iter(|| {
            let lower = 1000u64.to_be_bytes();
            black_box(db.scan(&lower, None, 1024).unwrap());
        })
    });
    g.finish();
    let cache = db.read_cache_stats();
    println!(
        "# lsm_read cache: {} shards, {} entries, {} hits / {} misses / {} evictions",
        cache.shard_entries.len(),
        cache.entries,
        cache.hits,
        cache.misses,
        cache.evictions
    );
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_writes, bench_reads
}
criterion_main!(benches);
