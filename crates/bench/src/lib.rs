//! Shared utilities for the benchmark harness: cost calibration against the
//! real implementation and table formatting for the figure binaries.
//!
//! See `EXPERIMENTS.md` at the workspace root for the experiment index and
//! recorded results.

#![warn(missing_docs)]

use bedrock::DbCounts;
use hepnos::testing::{local_deployment, LocalDeployment};
use hepnos::{ProductLabel, WriteBatch};
use nova::{select_slices, NovaGenerator, SelectionCuts};
use std::time::Instant;

/// Measure the real per-slice selection cost (seconds/slice) on this
/// machine by running the actual `nova::select_slices` over generated data.
pub fn calibrate_slice_cost() -> f64 {
    let gen = NovaGenerator::new(0xCA11B);
    let cuts = SelectionCuts::default();
    let events: Vec<_> = (0..2000u64).map(|e| gen.generate(1, 0, e)).collect();
    let n_slices: usize = events.iter().map(|e| e.slices.len()).sum();
    // Warm up, then measure.
    for ev in events.iter().take(100) {
        std::hint::black_box(select_slices(ev, &cuts));
    }
    let t = Instant::now();
    for ev in &events {
        std::hint::black_box(select_slices(ev, &cuts));
    }
    t.elapsed().as_secs_f64() / n_slices as f64
}

/// Measure real Yokan service costs on this machine: returns
/// `(per_event_seconds, per_batch_seconds)` for in-memory event listing,
/// solved from a two-point linear fit over small and large page sizes.
pub fn calibrate_kv_costs() -> (f64, f64) {
    use yokan::{DbTarget, YokanClient};
    let dep = local_deployment(1, DbCounts::default());
    let store = dep.datastore();
    let ds = store.root().create_dataset("calib").unwrap();
    let sr = ds.create_run(1).unwrap().create_subrun(0).unwrap();
    let uuid = ds.uuid().unwrap();
    let n_events = 20_000u64;
    let mut batch = WriteBatch::new(&store);
    for e in 0..n_events {
        batch.create_event(&sr, &uuid, e).unwrap();
    }
    batch.flush().unwrap();
    // Page all events of the dataset out of every event database with a
    // given page size, timing the whole sweep.
    let client = YokanClient::new(dep.fabric().endpoint("calib-kv"));
    let targets: Vec<DbTarget> = dep
        .descriptors()
        .iter()
        .flat_map(|d| {
            d.providers.iter().flat_map(|p| {
                p.databases
                    .iter()
                    .filter(|n| n.starts_with("events"))
                    .map(|n| DbTarget::new(d.address.clone(), p.provider_id, n))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let prefix: Vec<u8> = uuid.as_bytes().to_vec();
    let sweep = |page: usize| -> (f64, u64) {
        let t = Instant::now();
        let mut total = 0u64;
        let mut batches = 0u64;
        for db in &targets {
            let mut from = prefix.clone();
            loop {
                let keys = client.list_keys(db, &from, &prefix, page).unwrap();
                batches += 1;
                if keys.is_empty() {
                    break;
                }
                total += keys.len() as u64;
                from = keys.last().unwrap().clone();
            }
        }
        assert_eq!(total, n_events);
        (t.elapsed().as_secs_f64(), batches)
    };
    sweep(4096); // warm-up
    let (t_small, b_small) = sweep(64);
    let (t_large, b_large) = sweep(16384);
    dep.shutdown();
    // t = per_batch * batches + per_event * n_events, two equations.
    let per_batch = ((t_small - t_large) / (b_small as f64 - b_large as f64)).max(0.0);
    let per_event = ((t_large - per_batch * b_large as f64) / n_events as f64).max(0.0);
    (per_event, per_batch)
}

/// Build a small in-process deployment pre-loaded with synthetic events;
/// returns the deployment, the dataset path, and the slice count.
pub fn loaded_deployment(
    n_nodes: usize,
    counts: DbCounts,
    n_subruns: u64,
    events_per_subrun: u64,
) -> (LocalDeployment, String, u64) {
    let dep = local_deployment(n_nodes, counts);
    let store = dep.datastore();
    let ds = store.root().create_dataset("bench/nova").unwrap();
    let gen = NovaGenerator::new(7);
    let label = ProductLabel::new("rec.slc").unwrap();
    let uuid = ds.uuid().unwrap();
    let mut slices = 0u64;
    let run = ds.create_run(1).unwrap();
    for s in 0..n_subruns {
        let sr = run.create_subrun(s).unwrap();
        let mut batch = WriteBatch::new(&store);
        for e in 0..events_per_subrun {
            let rec = gen.generate(1, s, e);
            let ev = batch.create_event(&sr, &uuid, e).unwrap();
            batch.store(&ev, &label, &rec.slices).unwrap();
            slices += rec.slices.len() as u64;
        }
        batch.flush().unwrap();
    }
    (dep, "bench/nova".to_string(), slices)
}

/// Right-align a float with thousands separators for table output.
pub fn fmt_throughput(v: f64) -> String {
    let n = v.round() as u64;
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_returns_sane_costs() {
        let c = calibrate_slice_cost();
        assert!(c > 0.0 && c < 1e-3, "slice cost {c}");
    }

    #[test]
    fn fmt_throughput_groups_digits() {
        assert_eq!(fmt_throughput(1234567.0), "1,234,567");
        assert_eq!(fmt_throughput(999.4), "999");
        assert_eq!(fmt_throughput(0.0), "0");
    }

    #[test]
    fn loaded_deployment_counts_slices() {
        let (dep, path, slices) = loaded_deployment(1, DbCounts::default(), 2, 20);
        assert!(slices > 0);
        let ds = dep.datastore().dataset(&path).unwrap();
        let run = ds.run(1).unwrap();
        assert_eq!(run.subruns().unwrap().len(), 2);
        dep.shutdown();
    }
}

#[cfg(test)]
mod kv_calibration_tests {
    use super::*;

    #[test]
    fn kv_calibration_returns_nonnegative_costs() {
        let (per_event, per_batch) = calibrate_kv_costs();
        assert!((0.0..1e-3).contains(&per_event), "per_event {per_event}");
        assert!((0.0..1.0).contains(&per_batch), "per_batch {per_batch}");
    }
}
