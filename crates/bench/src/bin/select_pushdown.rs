//! Selection push-down vs blob fetch: the CAFAna-style candidate
//! selection over a generated dataset, once through the baseline path
//! (fetch every `rec.slc` product, cut client-side) and once through the
//! columnar push-down path (ship the compiled predicate program to the
//! product databases, get surviving global slice ids back).
//!
//! Both passes must produce byte-identical id vectors — the bench asserts
//! it. The interesting outputs are wire bytes moved per pass (measured as
//! deltas of the client's [`mercurio::EndpointStats`] counters), events/s,
//! and how much stored payload the servers filtered in place. Results are
//! logged into `BENCH_select.json`.
//!
//! Run: `cargo run --release -p hepnos-bench --bin select_pushdown`

use bedrock::DbCounts;
use hepnos::testing::local_deployment;
use nova::{
    select_dataset_blob, select_dataset_pushdown, DataLoader, NovaGenerator, SelectStats,
    SelectionCuts,
};
use std::time::{Duration, Instant};

const EVENT_COUNTS: [u64; 2] = [500, 2000];
const PAGE_ROWS: u32 = 256;

struct PassResult {
    elapsed: Duration,
    sent: u64,
    received: u64,
    ids: Vec<u64>,
    stats: SelectStats,
}

fn print_pass(case: &str, events: u64, slices: u64, r: &PassResult, baseline_wire: Option<u64>) {
    let wire = r.sent + r.received;
    let events_per_s = events as f64 / r.elapsed.as_secs_f64();
    let reduction = baseline_wire
        .map(|b| format!(", \"wire_reduction_x\": {:.1}", b as f64 / wire as f64))
        .unwrap_or_default();
    println!(
        "{{ \"case\": \"{case}\", \"events\": {events}, \"slices\": {slices}, \
         \"selected\": {}, \"elapsed_ms\": {}, \"events_per_s\": {:.0}, \
         \"wire_sent_bytes\": {}, \"wire_received_bytes\": {}, \"wire_total_bytes\": {}, \
         \"wire_bytes_per_event\": {:.1}, \"pages_scanned\": {}, \"pages_skipped\": {}, \
         \"stored_bytes_filtered_in_place\": {}, \"fallback_events\": {}{reduction} }}",
        r.ids.len(),
        r.elapsed.as_millis(),
        events_per_s,
        r.sent,
        r.received,
        wire,
        wire as f64 / events as f64,
        r.stats.pages_scanned,
        r.stats.pages_skipped,
        r.stats.bytes_stored,
        r.stats.fallback_events,
    );
}

fn main() {
    println!(
        "# Selection push-down vs blob fetch, page_rows {PAGE_ROWS}, \
         1-node deployment, default cuts"
    );
    println!("# wire bytes = client endpoint sent+received deltas around each pass");
    for n in EVENT_COUNTS {
        let dep = local_deployment(1, DbCounts::default());
        let store = dep.datastore();
        let gen = NovaGenerator::new(7);
        let events: Vec<_> = (0..n).map(|e| gen.generate(1, 0, e)).collect();
        let slices: u64 = events.iter().map(|e| e.slices.len() as u64).sum();

        let ds_blob = store.root().create_dataset("sel/blob").unwrap();
        DataLoader::new(store.clone(), ds_blob.clone())
            .ingest_events(&events)
            .unwrap();
        let ds_col = store.root().create_dataset("sel/columnar").unwrap();
        DataLoader::new(store.clone(), ds_col.clone())
            .with_columnar(PAGE_ROWS)
            .ingest_events(&events)
            .unwrap();

        let run = |pushdown: bool, cuts: &SelectionCuts| -> PassResult {
            let ds = if pushdown { &ds_col } else { &ds_blob };
            let before = store.endpoint_stats();
            let t0 = Instant::now();
            let (ids, stats) = if pushdown {
                select_dataset_pushdown(&store, ds, cuts).unwrap()
            } else {
                select_dataset_blob(&store, ds, cuts).unwrap()
            };
            let elapsed = t0.elapsed();
            let after = store.endpoint_stats();
            PassResult {
                elapsed,
                sent: after.bytes_sent - before.bytes_sent,
                received: after.bytes_received - before.bytes_received,
                ids,
                stats,
            }
        };

        // "tight" = the ν_e appearance selection (near-zero survivors, zone
        // maps prune almost everything); "loose" = a sideband selection that
        // keeps real survivors, so the byte-identical check is non-trivial
        // and surviving ids pay their wire cost.
        let loose = SelectionCuts {
            min_cvn_nue: 0.6,
            max_cosmic_score: 0.7,
            energy_range: (0.5, 8.0),
            nhit_range: (10, 700),
            max_remid: 0.9,
            ..SelectionCuts::default()
        };
        for (cuts_name, cuts) in [("tight", SelectionCuts::default()), ("loose", loose)] {
            let blob = run(false, &cuts);
            let push = run(true, &cuts);
            assert_eq!(
                blob.ids, push.ids,
                "push-down results must be byte-identical to the blob path"
            );
            assert_eq!(push.stats.fallback_events, 0, "columnar dataset fell back");

            print_pass(&format!("blob_{cuts_name}"), n, slices, &blob, None);
            print_pass(
                &format!("pushdown_{cuts_name}"),
                n,
                slices,
                &push,
                Some(blob.sent + blob.received),
            );
        }
        dep.shutdown();
    }
}
