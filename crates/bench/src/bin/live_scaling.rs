//! Live (real threads, real storage path) miniature of Figures 2/3: the
//! file-based and HEPnOS workflows run the *actual* implementations in this
//! workspace over a laptop-scale dataset, sweeping the worker count.
//!
//! The crossover the paper reports appears live: once workers outnumber
//! files, the file-based workflow stops scaling while HEPnOS (event
//! granularity) keeps gaining. Both workflows run the same selection and
//! their accepted-slice sets are compared, as in §IV.
//!
//! Run: `cargo run --release -p hepnos-bench --bin live_scaling`

use bedrock::DbCounts;
use hepfile::{run_file_workflow, PfsConfig, SimPfs};
use hepnos::testing::local_deployment;
use hepnos::{ParallelEventProcessor, PepOptions};
use nova::loader::{slice_label, slice_type_name, DataLoader};
use nova::{files, select_slices, NovaGenerator, SelectionCuts};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::time::Instant;

const N_FILES: u64 = 12;
const EVENTS_PER_FILE: u64 = 400;
const SEED: u64 = 2023;
/// Per-slice compute cost added to both workflows, standing in for the real
/// CAFAna selection's cost on KNL cores (the synthetic cuts alone are
/// nanoseconds; the paper's workloads are compute-heavy). The cost is paid
/// by *sleeping*, not spinning, so that worker "cores" overlap even when
/// the host machine has fewer physical cores than workers — each worker
/// thread then behaves like a dedicated (slow) core.
const WORK_PER_SLICE: std::time::Duration = std::time::Duration::from_micros(50);

fn spin(per_slice: std::time::Duration, n_slices: usize) {
    std::thread::sleep(per_slice * n_slices as u32);
}

fn main() {
    let dir = std::env::temp_dir().join(format!("hepnos-live-{}", std::process::id()));
    let gen = NovaGenerator::new(SEED);
    let cuts = SelectionCuts::default();
    println!(
        "# Live mini-scaling: {N_FILES} files x {EVENTS_PER_FILE} events, real implementations"
    );
    let paths =
        files::write_dataset(&dir, &gen, N_FILES, EVENTS_PER_FILE).expect("dataset write failed");
    let total_slices: u64 = paths
        .iter()
        .map(|p| {
            files::read_file(p)
                .unwrap()
                .iter()
                .map(|e| e.slices.len() as u64)
                .sum::<u64>()
        })
        .sum();
    println!("# total slices: {total_slices}");

    // HEPnOS deployment, ingested once (the paper measures read throughput
    // on an already-prepared service).
    let dep = local_deployment(1, DbCounts::default());
    let store = dep.datastore();
    let ds = store.root().create_dataset("nova").unwrap();
    let loader = DataLoader::new(store.clone(), ds.clone());
    let ingest = loader.ingest_files(&paths).expect("ingest failed");
    println!(
        "# ingested: {} files, {} events, {} slices",
        ingest.files, ingest.events, ingest.slices
    );

    println!(
        "\n{:>8} {:>20} {:>20} {:>14}",
        "workers", "file-based (sl/s)", "hepnos-mem (sl/s)", "same result"
    );
    for workers in [2usize, 4, 8, 16, 32] {
        // ---------------- file-based ----------------
        let pfs = SimPfs::new(PfsConfig {
            aggregate_bandwidth: 2.0e9,
            metadata_latency: std::time::Duration::from_millis(2),
            time_scale: 1.0,
        });
        let accepted_file: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::new());
        let t = Instant::now();
        run_file_workflow(paths.len(), workers, |i| {
            pfs.open();
            pfs.read(std::fs::metadata(&paths[i]).map(|m| m.len()).unwrap_or(0));
            let events = files::read_file(&paths[i]).expect("file read failed");
            let mut acc = Vec::new();
            for ev in &events {
                spin(WORK_PER_SLICE, ev.slices.len());
                acc.extend(select_slices(ev, &cuts));
            }
            accepted_file.lock().extend(acc);
        });
        let file_tp = total_slices as f64 / t.elapsed().as_secs_f64();

        // ---------------- HEPnOS ----------------
        let accepted_hepnos: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::new());
        let pep = ParallelEventProcessor::new(
            store.clone(),
            PepOptions {
                num_workers: workers,
                load_batch_size: 2048,
                dispatch_batch_size: 64,
                prefetch: vec![(slice_label(), slice_type_name())],
                ..Default::default()
            },
        );
        let t = Instant::now();
        let cuts2 = cuts.clone();
        let stats = pep
            .process(&ds, |_wid, pe| {
                let slices: Vec<nova::SliceQuantities> =
                    pe.load(&slice_label()).unwrap().unwrap_or_default();
                let (run, subrun, event) = pe.event().coordinates();
                let rec = nova::EventRecord {
                    run,
                    subrun,
                    event,
                    slices,
                };
                spin(WORK_PER_SLICE, rec.slices.len());
                accepted_hepnos.lock().extend(select_slices(&rec, &cuts2));
            })
            .expect("pep failed");
        let hepnos_tp = total_slices as f64 / t.elapsed().as_secs_f64();
        let same = *accepted_file.lock() == *accepted_hepnos.lock();
        println!(
            "{:>8} {:>20.0} {:>20.0} {:>14}",
            workers,
            file_tp,
            hepnos_tp,
            if same { "YES" } else { "NO!" }
        );
        assert_eq!(stats.total_events as u64, ingest.events);
    }
    println!("\n# note: with {N_FILES} files, the file-based rows stop improving");
    println!("# once workers > files; HEPnOS keeps scaling with workers.");
    println!("\n# storage-tier stats after the sweep (shards / entries per shard):");
    for (label, s) in dep.backend_stats() {
        let (min, max) = (
            s.shard_entries.iter().min().copied().unwrap_or(0),
            s.shard_entries.iter().max().copied().unwrap_or(0),
        );
        println!(
            "#   {label}: {} shards, {} entries (min {min} / max {max} per shard), \
             cache {}h/{}m/{}e",
            s.shards,
            s.shard_entries.iter().sum::<usize>(),
            s.cache_hits,
            s.cache_misses,
            s.cache_evictions,
        );
    }
    dep.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
