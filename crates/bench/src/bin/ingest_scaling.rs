//! Ingestion scaling: the paper calls the HDF2HEPnOS DataLoader "the first
//! step of an HEPnOS-based HEP workflow, and the only step whose
//! scalability is constrained by the number of files" (§IV-B). This harness
//! shows exactly that: loader throughput saturates once loader ranks
//! outnumber files, while the event-granular selection step (Fig. 2) keeps
//! scaling over the same allocations.
//!
//! Run: `cargo run --release -p hepnos-bench --bin ingest_scaling`

use cluster::{Backend, CostModel, DatasetSpec, HepnosWorkflowModel, IngestModel, ThetaMachine};
use hepnos_bench::fmt_throughput;

fn main() {
    let dataset = DatasetSpec::nova_base(); // 1929 files
    let machine = ThetaMachine::default();
    let costs = CostModel::default();
    println!(
        "# Ingestion vs processing scaling — {} files / {} events",
        dataset.n_files, dataset.n_events
    );
    println!("# events/second (virtual-time cluster model)");
    println!(
        "{:>6} {:>16} {:>14} {:>18}",
        "nodes", "ingest (ev/s)", "loaders-busy", "processing (ev/s)"
    );
    let mut rows = Vec::new();
    for n_nodes in [16usize, 32, 64, 128, 256] {
        let ingest = IngestModel {
            n_nodes,
            machine: machine.clone(),
            dataset,
            costs: costs.clone(),
        }
        .simulate();
        let processing = HepnosWorkflowModel {
            n_nodes,
            machine: machine.clone(),
            dataset,
            costs: costs.clone(),
            backend: Backend::Memory,
        }
        .simulate();
        let proc_events = processing.throughput / dataset.slices_per_event();
        println!(
            "{:>6} {:>16} {:>13.0}% {:>18}",
            n_nodes,
            fmt_throughput(ingest.events_per_second),
            ingest.loaders_busy_fraction * 100.0,
            fmt_throughput(proc_events)
        );
        rows.push((ingest.events_per_second, proc_events));
    }
    let ingest_gain = rows[4].0 / rows[2].0;
    let proc_gain = rows[4].1 / rows[2].1;
    println!("\n# claims check (§IV-B):");
    println!(
        "#  - ingestion saturates with the file count (x{ingest_gain:.2} from 64->256 nodes): {}",
        if ingest_gain < 1.5 { "PASS" } else { "FAIL" }
    );
    println!(
        "#  - event-granular processing keeps scaling (x{proc_gain:.2} over the same range): {}",
        if proc_gain > 2.0 { "PASS" } else { "FAIL" }
    );
}
