//! Regenerates **Figure 3** of the paper: throughput vs dataset size at a
//! fixed 128-node allocation.
//!
//! Datasets are the paper's three samples: 1929 / 3858 / 7716 files
//! (4,359,414 / 8,718,828 / 17,437,656 events). The paper's observation:
//! the file-based workflow is hampered on the smaller datasets (only 24% of
//! cores busy at 1929 files) while HEPnOS is far less sensitive.
//!
//! Run: `cargo run --release -p hepnos-bench --bin figure3`

use cluster::{
    Backend, CostModel, DatasetSpec, FileWorkflowModel, HepnosWorkflowModel, ThetaMachine,
};
use hepnos_bench::fmt_throughput;

fn main() {
    const NODES: usize = 128;
    let costs = CostModel::default();
    let machine = ThetaMachine::default();
    println!("# Figure 3 — throughput vs dataset size at {NODES} nodes");
    println!("# throughput in slices/second (virtual-time cluster model, Theta-shaped)");
    println!(
        "{:>6} {:>10} {:>18} {:>18} {:>18} {:>11}",
        "files", "events", "file-based", "hepnos-rocksdb", "hepnos-memory", "cores-busy"
    );
    let mut rows = Vec::new();
    for k in [1u64, 2, 4] {
        let dataset = DatasetSpec::nova_replicated(k);
        let file = FileWorkflowModel {
            n_nodes: NODES,
            machine: machine.clone(),
            dataset,
            costs: costs.clone(),
        }
        .simulate();
        let lsm = HepnosWorkflowModel {
            n_nodes: NODES,
            machine: machine.clone(),
            dataset,
            costs: costs.clone(),
            backend: Backend::Lsm,
        }
        .simulate();
        let mem = HepnosWorkflowModel {
            n_nodes: NODES,
            machine: machine.clone(),
            dataset,
            costs: costs.clone(),
            backend: Backend::Memory,
        }
        .simulate();
        println!(
            "{:>6} {:>10} {:>18} {:>18} {:>18} {:>10.0}%",
            dataset.n_files,
            dataset.n_events,
            fmt_throughput(file.throughput),
            fmt_throughput(lsm.throughput),
            fmt_throughput(mem.throughput),
            file.cores_busy_fraction * 100.0
        );
        rows.push((file, lsm, mem));
    }
    println!("\n# claims check:");
    let busy_small = rows[0].0.cores_busy_fraction;
    println!(
        "#  - only ~24% of cores busy for the 1929-file sample ({:.0}%): {}",
        busy_small * 100.0,
        yesno((0.20..0.28).contains(&busy_small))
    );
    let all_win = rows
        .iter()
        .all(|(f, l, m)| l.throughput > f.throughput && m.throughput > f.throughput);
    println!(
        "#  - HEPnOS superior at every dataset size: {}",
        yesno(all_win)
    );
    let file_spread = rows[2].0.throughput / rows[0].0.throughput;
    let mem_spread = rows[2].2.throughput / rows[0].2.throughput;
    println!(
        "#  - file-based much more size-sensitive (x{file_spread:.2} over sizes) \
         than HEPnOS (x{mem_spread:.2}): {}",
        yesno(file_spread > mem_spread * 1.3)
    );
}

fn yesno(b: bool) -> &'static str {
    if b {
        "PASS"
    } else {
        "FAIL"
    }
}
