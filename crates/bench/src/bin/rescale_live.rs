//! Live-rescaling macro-bench: what an online migration costs the
//! foreground workload.
//!
//! One in-process node serves a 4+4-database topology of which clients
//! initially use 2+2. Eight writers stream acked product overwrites and
//! reads while a background [`hepnos::rescale::Migrator`] walks the event
//! and product groups onto the full topology; the run is split into three
//! windows — **before** (steady state), **during** (copy + handoff under
//! traffic) and **after** (finalized, clients re-homed onto the full
//! topology) — and put/get latency percentiles are reported per window,
//! alongside the migration's own throughput. The headline number is the
//! p99 dilation during the copy pass: frozen ranges shed `Busy` with a
//! bounded retry hint, so the foreground pays a bounded, not unbounded,
//! stall.
//!
//! Run: `cargo run --release -p hepnos-bench --bin rescale_live`
//! (`--smoke` for a quick CI-sized pass). Results land in
//! `BENCH_rescale.json`.

use bedrock::{ConnectionDescriptor, DbCounts};
use hepnos::placement::ModuloPlacement;
use hepnos::rescale::{Migrator, MigratorConfig, PlacementInput};
use hepnos::testing::local_deployment;
use hepnos::{DataStore, ProductLabel, WriteBatch};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use yokan::{DbTarget, YokanClient};

const WRITERS: usize = 8;

// Workload phases, advanced by the main thread only.
const BEFORE: u8 = 0;
const DURING: u8 = 1;
const QUIESCE: u8 = 2;
const AFTER: u8 = 3;
const STOP: u8 = 4;

fn counts_full() -> DbCounts {
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 4,
        products: 4,
    }
}

/// Restrict descriptors to the databases the pre-rescale clients use.
fn shrink_descriptors(
    full: &[ConnectionDescriptor],
    max_events: usize,
    max_products: usize,
) -> Vec<ConnectionDescriptor> {
    full.iter()
        .map(|d| {
            let mut d = d.clone();
            for p in &mut d.providers {
                p.databases.retain(|name| {
                    let keep = |prefix: &str, max: usize| {
                        name.strip_prefix(prefix)
                            .and_then(|s| s.strip_prefix('_'))
                            .and_then(|s| s.parse::<usize>().ok())
                            .map(|i| i < max)
                    };
                    if name.starts_with("events") {
                        keep("events", max_events).unwrap_or(false)
                    } else if name.starts_with("products") {
                        keep("products", max_products).unwrap_or(false)
                    } else {
                        true
                    }
                });
            }
            d.providers.retain(|p| !p.databases.is_empty());
            d
        })
        .collect()
}

/// Every `DbTarget` of one group, sorted — the single-copy chain heads.
fn group_targets(descriptors: &[ConnectionDescriptor], prefix: &str) -> Vec<DbTarget> {
    let mut v: Vec<DbTarget> = descriptors
        .iter()
        .flat_map(|d| {
            d.providers.iter().flat_map(|p| {
                p.databases
                    .iter()
                    .filter(|n| n.starts_with(prefix))
                    .map(|n| DbTarget::new(d.address.clone(), p.provider_id, n))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    v.sort();
    v
}

fn writer_retry_policy() -> yokan::RetryPolicy {
    yokan::RetryPolicy {
        max_attempts: 16,
        rpc_timeout: Duration::from_millis(300),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
        jitter_seed: 1,
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Per-phase latency samples of one writer (indexed by phase constant).
#[derive(Default)]
struct Samples {
    puts: [Vec<Duration>; 4],
    gets: [Vec<Duration>; 4],
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };
    let events_per_subrun: u64 = if smoke { 30 } else { 120 };
    let payload_len = if smoke { 256 } else { 512 };
    let window = Duration::from_millis(if smoke { 200 } else { 600 });
    println!(
        "# Live rescale under {WRITERS} writers ({mode}): 2+2 -> 4+4 databases, \
         {events_per_subrun} events/subrun x 4 subruns"
    );

    let dep = local_deployment(1, counts_full());
    let full = dep.descriptors().to_vec();
    let small = shrink_descriptors(&full, 2, 2);
    let store_small = DataStore::connect_with_retry(
        dep.fabric().endpoint("bench-small"),
        &small,
        writer_retry_policy(),
    )
    .expect("connect small");
    let label = ProductLabel::new("payload").expect("label");
    let payload: Vec<u8> = (0..payload_len).map(|i| i as u8).collect();

    // Populate through the pre-rescale topology.
    let ds = store_small.root().create_dataset("bench").expect("dataset");
    let uuid = ds.uuid().expect("uuid");
    let run = ds.create_run(1).expect("run");
    for s in 0..4u64 {
        let sr = run.create_subrun(s).expect("subrun");
        let mut batch = WriteBatch::new(&store_small);
        for e in 0..events_per_subrun {
            let ev = batch.create_event(&sr, &uuid, e).expect("event");
            batch.store(&ev, &label, &payload).expect("store");
        }
        batch.flush().expect("flush");
    }

    let phase = Arc::new(AtomicU8::new(BEFORE));
    let store_full_cell: Arc<OnceLock<DataStore>> = Arc::new(OnceLock::new());
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let phase = phase.clone();
        let store_small = store_small.clone();
        let store_full_cell = store_full_cell.clone();
        let label = label.clone();
        let payload = payload.clone();
        handles.push(std::thread::spawn(move || -> Samples {
            let shard_events = |store: &DataStore| {
                let run = store
                    .dataset("bench")
                    .expect("dataset")
                    .run(1)
                    .expect("run");
                let mut evs = Vec::new();
                let mut i = 0usize;
                for sr in run.subruns().expect("subruns") {
                    for ev in sr.events().expect("events") {
                        if i % WRITERS == w {
                            evs.push(ev);
                        }
                        i += 1;
                    }
                }
                evs
            };
            let old_events = shard_events(&store_small);
            let mut new_events: Option<Vec<hepnos::Event>> = None;
            let mut out = Samples::default();
            let mut i = 0usize;
            loop {
                let p = phase.load(Ordering::SeqCst);
                match p {
                    STOP => return out,
                    QUIESCE => {
                        std::thread::sleep(Duration::from_micros(200));
                        continue;
                    }
                    AFTER if new_events.is_none() => {
                        let store = store_full_cell.get().expect("full store published");
                        new_events = Some(shard_events(store));
                    }
                    _ => {}
                }
                let evs = match p {
                    AFTER => new_events.as_ref().expect("fetched above"),
                    _ => &old_events,
                };
                let ev = &evs[i % evs.len()];
                i += 1;
                let t = Instant::now();
                ev.store(&label, &payload).expect("acked put");
                out.puts[p as usize].push(t.elapsed());
                let t = Instant::now();
                let got: Option<Vec<u8>> = ev.load(&label).expect("get");
                out.gets[p as usize].push(t.elapsed());
                assert!(got.is_some(), "acked product missing");
            }
        }));
    }

    std::thread::sleep(window); // the BEFORE window

    // The background migration: events then products, under traffic.
    let mig_cfg = MigratorConfig {
        batch_keys: 16,
        max_inflight_ranges: 2,
        freeze_retry_after: Duration::from_millis(1),
        range_pause: Duration::from_millis(if smoke { 1 } else { 2 }),
    };
    let to_chains = |ts: Vec<DbTarget>| ts.into_iter().map(|t| vec![t]).collect::<Vec<_>>();
    let ev_mig = Migrator::new(
        YokanClient::new(dep.fabric().endpoint("bench-mig-ev")),
        to_chains(group_targets(&small, "events")),
        to_chains(group_targets(&full, "events")),
        Arc::new(ModuloPlacement),
        PlacementInput::Prefix(32),
        mig_cfg.clone(),
    )
    .expect("events migrator");
    let pr_mig = Migrator::new(
        YokanClient::new(dep.fabric().endpoint("bench-mig-pr")),
        to_chains(group_targets(&small, "products")),
        to_chains(group_targets(&full, "products")),
        Arc::new(ModuloPlacement),
        PlacementInput::Product,
        mig_cfg,
    )
    .expect("products migrator");
    phase.store(DURING, Ordering::SeqCst);
    let t_mig = Instant::now();
    let ev_stats = ev_mig.run().expect("events migration");
    let pr_stats = pr_mig.run().expect("products migration");
    let mig_elapsed = t_mig.elapsed();

    // Quiesce the epoch-1 writers, then fence them for good and re-home
    // the clients onto the full topology.
    phase.store(QUIESCE, Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(ev_mig.finalize(2).expect("finalize events"), 2);
    assert_eq!(pr_mig.finalize(2).expect("finalize products"), 2);
    let store_full =
        DataStore::connect(dep.fabric().endpoint("bench-full"), &full).expect("connect full");
    assert_eq!(store_full.topology_epoch(), 2);
    assert!(
        store_full_cell.set(store_full).is_ok(),
        "publish full store once"
    );
    phase.store(AFTER, Ordering::SeqCst);
    std::thread::sleep(window); // the AFTER window
    phase.store(STOP, Ordering::SeqCst);

    let mut merged = Samples::default();
    for h in handles {
        let s = h.join().expect("writer panicked");
        for p in [BEFORE, DURING, AFTER] {
            merged.puts[p as usize].extend(s.puts[p as usize].iter());
            merged.gets[p as usize].extend(s.gets[p as usize].iter());
        }
    }
    dep.shutdown();

    let mut lines = Vec::new();
    let mut p99s = [[Duration::ZERO; 2]; 4];
    for (pi, name) in [(BEFORE, "before"), (DURING, "during"), (AFTER, "after")] {
        for (oi, (op, samples)) in [
            ("put", &mut merged.puts[pi as usize]),
            ("get", &mut merged.gets[pi as usize]),
        ]
        .into_iter()
        .enumerate()
        {
            assert!(!samples.is_empty(), "no {op} samples in the {name} window");
            samples.sort();
            let (p50, p99) = (percentile(samples, 0.50), percentile(samples, 0.99));
            p99s[pi as usize][oi] = p99;
            lines.push(format!(
                "{{ \"case\": \"latency\", \"phase\": \"{name}\", \"op\": \"{op}\", \
                 \"n\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {} }}",
                samples.len(),
                p50.as_micros(),
                p99.as_micros(),
                samples.last().expect("non-empty").as_micros()
            ));
        }
    }
    let keys = ev_stats.keys_moved + pr_stats.keys_moved;
    let bytes = ev_stats.bytes_moved + pr_stats.bytes_moved;
    lines.push(format!(
        "{{ \"case\": \"migration\", \"elapsed_ms\": {}, \"keys_moved\": {keys}, \
         \"bytes_moved\": {bytes}, \"ranges\": {}, \"keys_per_s\": {:.0}, \
         \"bytes_per_s\": {:.0} }}",
        mig_elapsed.as_millis(),
        ev_stats.ranges_migrated + pr_stats.ranges_migrated,
        keys as f64 / mig_elapsed.as_secs_f64(),
        bytes as f64 / mig_elapsed.as_secs_f64()
    ));
    let ratio = |oi: usize| {
        let before = p99s[BEFORE as usize][oi].as_secs_f64();
        if before > 0.0 {
            p99s[DURING as usize][oi].as_secs_f64() / before
        } else {
            f64::NAN
        }
    };
    lines.push(format!(
        "{{ \"case\": \"dilation\", \"put_p99_during_over_before\": {:.2}, \
         \"get_p99_during_over_before\": {:.2} }}",
        ratio(0),
        ratio(1)
    ));
    for line in &lines {
        println!("{line}");
    }
    std::fs::write("BENCH_rescale.json", lines.join("\n") + "\n")
        .expect("write BENCH_rescale.json");
}
