//! Iterative analysis: the paper's introduction argues that "a common
//! scenario in many HEP analyses is the iterative refinement or tuning of
//! the analysis process... This requires multiple passes through a given
//! dataset. Having the data available in a distributed data service not
//! only makes this more convenient, but also spreads the cost of loading
//! the data over all iterations."
//!
//! This harness prices an N-pass campaign at 128 nodes: the traditional
//! workflow re-reads every file from the PFS on every pass; HEPnOS pays the
//! one-time ingestion, then every pass runs at event granularity from the
//! service.
//!
//! Run: `cargo run --release -p hepnos-bench --bin multipass`

use cluster::{
    Backend, CostModel, DatasetSpec, FileWorkflowModel, HepnosWorkflowModel, IngestModel,
    ThetaMachine,
};

fn main() {
    const NODES: usize = 128;
    let dataset = DatasetSpec::nova_base();
    let machine = ThetaMachine::default();
    let costs = CostModel::default();
    let file_pass = FileWorkflowModel {
        n_nodes: NODES,
        machine: machine.clone(),
        dataset,
        costs: costs.clone(),
    }
    .simulate()
    .makespan;
    let ingest_once = IngestModel {
        n_nodes: NODES,
        machine: machine.clone(),
        dataset,
        costs: costs.clone(),
    }
    .simulate()
    .makespan;
    let hepnos_pass = HepnosWorkflowModel {
        n_nodes: NODES,
        machine,
        dataset,
        costs,
        backend: Backend::Memory,
    }
    .simulate()
    .makespan;
    println!(
        "# Iterative analysis at {NODES} nodes — {} files / {} events per pass",
        dataset.n_files, dataset.n_events
    );
    println!("# total campaign time in (virtual) seconds");
    println!(
        "{:>7} {:>18} {:>26} {:>10}",
        "passes", "file-based (s)", "hepnos: ingest+passes (s)", "speedup"
    );
    let mut crossover: Option<u32> = None;
    for n in [1u32, 2, 4, 8, 16] {
        let file_total = file_pass * n as f64;
        let hepnos_total = ingest_once + hepnos_pass * n as f64;
        if crossover.is_none() && hepnos_total < file_total {
            crossover = Some(n);
        }
        println!(
            "{:>7} {:>18.1} {:>26.1} {:>9.2}x",
            n,
            file_total,
            hepnos_total,
            file_total / hepnos_total
        );
    }
    println!(
        "\n# one-time ingest = {ingest_once:.1}s, hepnos pass = {hepnos_pass:.1}s, \
         file-based pass = {file_pass:.1}s"
    );
    match crossover {
        Some(n) => println!(
            "# HEPnOS wins from pass {n} onward; each further pass widens the gap \
             (the ingest cost is spread over all iterations, as §I argues)"
        ),
        None => println!("# HEPnOS never recovered the ingest cost over these pass counts"),
    }
}
