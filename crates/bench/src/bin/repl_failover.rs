//! Replication macro-bench: what chain replication costs and what it buys.
//!
//! Three measurements over in-process deployments of 2 nodes:
//!
//! - **acked-put latency** (p50/p99) at R=1 vs R=2 — the price of the
//!   chain forward sitting between apply and ack;
//! - **read throughput** against one replicated database, all readers on
//!   the primary vs readers spread across the replicas (the
//!   read-from-replica policy multiplying provider pools);
//! - **failover blackout**: a writer streams acked puts while the chain
//!   head is killed mid-stream; the blackout is the longest gap between
//!   consecutive acks — the window in which the timeout fired and the
//!   client promoted the backup.
//!
//! Run: `cargo run --release -p hepnos-bench --bin repl_failover`
//! (`--smoke` for a quick CI-sized pass). Results land in
//! `BENCH_repl.json`.

use bedrock::DbCounts;
use hepnos::testing::{local_deployment_replicated, LocalDeployment};
use std::time::{Duration, Instant};
use yokan::{DbTarget, YokanClient};

fn counts() -> DbCounts {
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 2,
        products: 2,
    }
}

/// The first events chain of a deployment (singleton at R=1).
fn events_chain(dep: &LocalDeployment) -> Vec<DbTarget> {
    bedrock::deployment_chains(dep.descriptors())
        .into_iter()
        .find(|c| c[0].db.starts_with("events"))
        .expect("an events chain")
}

fn routed_client(dep: &LocalDeployment, name: &str) -> YokanClient {
    let client = YokanClient::new(dep.fabric().endpoint(name));
    client.install_replica_routes(&bedrock::deployment_chains(dep.descriptors()));
    client
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Sequential acked puts through the chain head; returns (p50, p99).
fn put_latency(factor: usize, n_puts: usize) -> (Duration, Duration) {
    let dep = local_deployment_replicated(2, counts(), factor);
    let chain = events_chain(&dep);
    assert_eq!(chain.len(), factor.max(1));
    let client = routed_client(&dep, "put-bench");
    let value = vec![7u8; 512];
    let mut lat = Vec::with_capacity(n_puts);
    for i in 0..n_puts {
        let key = format!("key-{i:08}").into_bytes();
        let t = Instant::now();
        client.put(&chain[0], &key, &value).expect("acked put");
        lat.push(t.elapsed());
    }
    dep.shutdown();
    lat.sort();
    (percentile(&lat, 0.50), percentile(&lat, 0.99))
}

/// Aggregate read throughput of `threads` readers over one replicated
/// database: all on the primary, or spread across the replicas.
fn read_throughput(spread: bool, threads: usize, gets_per_thread: usize) -> f64 {
    let dep = local_deployment_replicated(2, counts(), 2);
    let chain = events_chain(&dep);
    let writer = routed_client(&dep, "read-bench-writer");
    const KEYS: usize = 512;
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..KEYS)
        .map(|i| (format!("key-{i:06}").into_bytes(), vec![i as u8; 256]))
        .collect();
    writer.put_multi(&chain[0], &pairs).expect("populate");
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for w in 0..threads {
        let target = chain[if spread { w % chain.len() } else { 0 }].clone();
        let reader = YokanClient::new(dep.fabric().endpoint(&format!("reader-{w}")));
        handles.push(std::thread::spawn(move || {
            for g in 0..gets_per_thread {
                let key = format!("key-{:06}", (g * 31 + w) % KEYS).into_bytes();
                reader.get(&target, &key).expect("read").expect("present");
            }
        }));
    }
    for h in handles {
        h.join().expect("reader panicked");
    }
    let elapsed = t0.elapsed();
    dep.shutdown();
    (threads * gets_per_thread) as f64 / elapsed.as_secs_f64()
}

struct Blackout {
    blackout: Duration,
    pre_kill_p99: Duration,
    acked: usize,
}

/// Stream acked puts while the chain head dies; the blackout is the
/// longest inter-ack gap (timeout + failover + promoted retry).
fn failover_blackout(n_puts: usize) -> Blackout {
    let mut dep = local_deployment_replicated(2, counts(), 2);
    let chain = events_chain(&dep);
    let head_node = (0..dep.num_servers())
        .find(|&n| dep.server(n).is_some_and(|s| s.address() == chain[0].addr))
        .expect("head node");
    // Short forward probes: after the kill the survivor's degraded acks
    // must stay inside the writer's 50 ms per-target budget.
    for n in 0..dep.num_servers() {
        dep.server(n)
            .unwrap()
            .yokan()
            .set_forward_params(yokan::ForwardParams {
                timeout: Duration::from_millis(25),
                attempts: 1,
                suspend: Duration::from_secs(10),
            });
    }
    let client =
        YokanClient::new(dep.fabric().endpoint("blackout-writer")).with_retry(yokan::RetryPolicy {
            max_attempts: 2,
            rpc_timeout: Duration::from_millis(50),
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            jitter_seed: 1,
        });
    client.install_replica_routes(&bedrock::deployment_chains(dep.descriptors()));
    let target = chain[0].clone();
    let value = vec![3u8; 256];
    let kill_at = n_puts / 2;
    let mut acks: Vec<Instant> = Vec::with_capacity(n_puts);
    for i in 0..n_puts {
        if i == kill_at {
            dep.kill_server(head_node);
        }
        let key = format!("key-{i:08}").into_bytes();
        client.put(&target, &key, &value).expect("acked put");
        acks.push(Instant::now());
    }
    assert_eq!(client.retry_stats().failovers, 1, "no failover happened");
    dep.shutdown();
    let mut pre: Vec<Duration> = acks[..kill_at].windows(2).map(|w| w[1] - w[0]).collect();
    pre.sort();
    let blackout = acks
        .windows(2)
        .map(|w| w[1] - w[0])
        .max()
        .expect("at least two acks");
    Blackout {
        blackout,
        pre_kill_p99: percentile(&pre, 0.99),
        acked: acks.len(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_puts = if smoke { 500 } else { 4_000 };
    let n_gets = if smoke { 2_000 } else { 20_000 };
    let mode = if smoke { "smoke" } else { "full" };
    println!("# Replication cost/benefit ({mode}): chain forward vs single copy, 2 nodes");
    let mut lines = Vec::new();
    for factor in [1usize, 2] {
        let (p50, p99) = put_latency(factor, n_puts);
        lines.push(format!(
            "{{ \"case\": \"acked_put\", \"replication\": {factor}, \"puts\": {n_puts}, \
             \"p50_us\": {}, \"p99_us\": {} }}",
            p50.as_micros(),
            p99.as_micros()
        ));
    }
    for spread in [false, true] {
        let policy = if spread {
            "read_from_replica"
        } else {
            "primary_only"
        };
        let per_s = read_throughput(spread, 4, n_gets / 4);
        lines.push(format!(
            "{{ \"case\": \"read_throughput\", \"policy\": \"{policy}\", \"readers\": 4, \
             \"gets\": {n_gets}, \"gets_per_s\": {per_s:.0} }}"
        ));
    }
    let b = failover_blackout(n_puts);
    lines.push(format!(
        "{{ \"case\": \"failover\", \"blackout_ms\": {}, \"pre_kill_p99_us\": {}, \
         \"acked_puts\": {}, \"lost_acks\": 0 }}",
        b.blackout.as_millis(),
        b.pre_kill_p99.as_micros(),
        b.acked
    ));
    for line in &lines {
        println!("{line}");
    }
    std::fs::write("BENCH_repl.json", lines.join("\n") + "\n").expect("write BENCH_repl.json");
}
