//! LSM write/read/space amplification and ingest stall time across level
//! configurations and compaction modes.
//!
//! Each case ingests the same keyspace-churning workload (overwrites +
//! deletes force multi-level merge work) into a fresh `lsmdb::Db`, then
//! runs a point-read phase. Reported per case:
//!
//! * **write amplification** — (WAL + flush + compaction bytes written) /
//!   user payload bytes;
//! * **space amplification** — SST bytes on disk / live payload bytes;
//! * **read amplification** — SST point reads per `get` (bloom filters
//!   absorb the rest);
//! * **ingest latency** — per-put p50/p99/max as the client sees it,
//!   including retry loops on `Busy`, plus the engine's own stall/shed
//!   counters.
//!
//! The inline-vs-background comparison at the same level config is the
//! point of the exercise: moving compaction off the write path must cut
//! the ingest p99 while the amplification totals stay in the same regime.
//!
//! Run: `cargo run --release -p hepnos-bench --bin lsm_amplification`
//! (`--smoke` for a quick CI-sized pass). Results land in
//! `BENCH_lsm.json`.

use lsmdb::{CompactionMode, Db, DbError, Options, WalSync};
use std::time::{Duration, Instant};

struct Case {
    name: &'static str,
    max_levels: usize,
    level_multiplier: u64,
    compaction: CompactionMode,
    wal_sync: WalSync,
    /// Inter-put spacing in microseconds; 0 = unthrottled (saturating).
    /// Paced cases model a real ingest client running below the engine's
    /// sustainable rate, which is where write-path latency (not
    /// backpressure) is the observable.
    pace_us: u64,
}

const CASES: &[Case] = &[
    Case {
        name: "L3_background",
        max_levels: 3,
        level_multiplier: 4,
        compaction: CompactionMode::Background,
        wal_sync: WalSync::None,
        pace_us: 0,
    },
    Case {
        name: "L5_background",
        max_levels: 5,
        level_multiplier: 4,
        compaction: CompactionMode::Background,
        wal_sync: WalSync::None,
        pace_us: 0,
    },
    Case {
        name: "L5_inline",
        max_levels: 5,
        level_multiplier: 4,
        compaction: CompactionMode::Inline,
        wal_sync: WalSync::None,
        pace_us: 0,
    },
    Case {
        name: "L5_background_group_wal",
        max_levels: 5,
        level_multiplier: 4,
        compaction: CompactionMode::Background,
        wal_sync: WalSync::Group,
        pace_us: 0,
    },
    Case {
        name: "L5_inline_paced",
        max_levels: 5,
        level_multiplier: 4,
        compaction: CompactionMode::Inline,
        wal_sync: WalSync::None,
        pace_us: 150,
    },
    Case {
        name: "L5_background_paced",
        max_levels: 5,
        level_multiplier: 4,
        compaction: CompactionMode::Background,
        wal_sync: WalSync::None,
        pace_us: 150,
    },
];

fn opts(case: &Case) -> Options {
    Options {
        memtable_bytes: 16 << 10,
        l0_compaction_trigger: 4,
        l0_slowdown_trigger: 24,
        l0_stop_trigger: 48,
        max_levels: case.max_levels,
        level_base_bytes: 256 << 10,
        level_multiplier: case.level_multiplier,
        table_target_bytes: 64 << 10,
        grandparent_limit_bytes: 640 << 10,
        compaction: case.compaction,
        wal_sync: case.wal_sync,
        max_stall: Duration::from_millis(5),
        retry_after_hint: Duration::from_millis(2),
        ..Options::default()
    }
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_puts: u64 = if smoke { 4_000 } else { 60_000 };
    let key_space: u64 = n_puts / 2; // every key written ~2x: real churn
    let n_gets: u64 = if smoke { 1_000 } else { 10_000 };
    let value_len: usize = 200;

    for case in CASES {
        let dir = std::env::temp_dir().join(format!(
            "lsm-amp-{}-{}-{}",
            std::process::id(),
            case.name,
            if smoke { "smoke" } else { "full" }
        ));
        std::fs::remove_dir_all(&dir).ok();
        let db = Db::open(&dir, opts(case)).unwrap();

        let mut rng = Lcg(0x5eed ^ n_puts);
        let mut user_bytes = 0u64;
        let mut lat_us: Vec<u64> = Vec::with_capacity(n_puts as usize);
        let mut client_retries = 0u64;
        let ingest_t0 = Instant::now();
        for i in 0..n_puts {
            let k = format!("key{:012}", rng.next() % key_space).into_bytes();
            let v = vec![(i % 251) as u8; value_len];
            if case.pace_us > 0 {
                let target = Duration::from_micros(i * case.pace_us);
                let elapsed = ingest_t0.elapsed();
                if elapsed < target {
                    std::thread::sleep(target - elapsed);
                }
            }
            let t0 = Instant::now();
            loop {
                match db.put(&k, &v) {
                    Ok(()) => break,
                    Err(DbError::Busy { retry_after }) => {
                        client_retries += 1;
                        std::thread::sleep(retry_after);
                    }
                    Err(e) => panic!("put failed: {e}"),
                }
            }
            lat_us.push(t0.elapsed().as_micros() as u64);
            user_bytes += (k.len() + v.len()) as u64;
        }
        let ingest_elapsed = ingest_t0.elapsed();
        db.wait_idle().unwrap();

        // Live payload for space amplification: what a perfect store would
        // keep (every unique key once, at its final value size).
        let live = db.scan(b"", None, 0).unwrap();
        let live_bytes: u64 = live.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum();

        // Point-read phase over the same key distribution (some keys were
        // never written: bloom filters should absorb most of those).
        let before = db.stats();
        let mut rng = Lcg(0xbeef);
        let mut hits = 0u64;
        let read_t0 = Instant::now();
        for _ in 0..n_gets {
            let k = format!("key{:012}", rng.next() % (key_space * 2)).into_bytes();
            if db.get(&k).unwrap().is_some() {
                hits += 1;
            }
        }
        let read_elapsed = read_t0.elapsed();
        let stats = db.stats();
        let sst_reads = stats.sst_point_reads - before.sst_point_reads;
        let bloom_negatives = stats.bloom_negatives - before.bloom_negatives;

        let mut sorted = lat_us.clone();
        sorted.sort_unstable();
        let write_amp = stats.storage_write_bytes() as f64 / user_bytes as f64;
        let space_amp = stats.disk_bytes() as f64 / live_bytes.max(1) as f64;
        let read_amp = sst_reads as f64 / n_gets as f64;

        println!(
            "{{\"case\":\"{}\",\"levels\":{},\"mode\":\"{}\",\"wal_sync\":\"{:?}\",\
             \"puts\":{},\"pace_us\":{},\"ingest_ops_per_s\":{:.0},\"put_p50_us\":{},\"put_p99_us\":{},\
             \"put_p999_us\":{},\"put_max_us\":{},\"client_busy_retries\":{},\"write_amp\":{:.2},\
             \"space_amp\":{:.2},\"read_amp_sst_reads_per_get\":{:.2},\"bloom_negatives\":{},\
             \"read_hit_rate\":{:.2},\"gets_per_s\":{:.0},\"flushes\":{},\"compactions\":{},\
             \"trivial_moves\":{},\"tombstones_dropped\":{},\"write_stalls\":{},\
             \"stall_ms\":{},\"write_sheds\":{},\"wal_syncs\":{},\"level_tables\":{:?},\
             \"disk_bytes\":{}}}",
            case.name,
            case.max_levels,
            match case.compaction {
                CompactionMode::Inline => "inline",
                CompactionMode::Background => "background",
            },
            case.wal_sync,
            n_puts,
            case.pace_us,
            n_puts as f64 / ingest_elapsed.as_secs_f64(),
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
            percentile(&sorted, 0.999),
            sorted.last().copied().unwrap_or(0),
            client_retries,
            write_amp,
            space_amp,
            read_amp,
            bloom_negatives,
            hits as f64 / n_gets as f64,
            n_gets as f64 / read_elapsed.as_secs_f64(),
            stats.flushes,
            stats.compactions,
            stats.trivial_moves,
            stats.tombstones_dropped,
            stats.write_stalls,
            stats.stall_micros / 1000,
            stats.write_sheds,
            stats.wal_syncs,
            stats.level_tables,
            stats.disk_bytes(),
        );

        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
}
