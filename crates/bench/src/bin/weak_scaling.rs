//! Weak scaling: the paper's §I promises to "demonstrate the reading speed
//! and scalability (both weak and strong) of HEPnOS"; the figures show the
//! strong-scaling and dataset-size sweeps, so this harness completes the
//! pair: the dataset grows proportionally with the allocation (constant
//! work per node), and ideal behaviour is constant per-node throughput.
//!
//! The file-based workflow degrades at scale even here, because the
//! parallel file system's aggregate bandwidth and metadata service are
//! shared global resources, while HEPnOS's servers grow with the
//! allocation.
//!
//! Run: `cargo run --release -p hepnos-bench --bin weak_scaling`

use cluster::{
    Backend, CostModel, DatasetSpec, FileWorkflowModel, HepnosWorkflowModel, ThetaMachine,
};
use hepnos_bench::fmt_throughput;

fn main() {
    let costs = CostModel::default();
    let machine = ThetaMachine::default();
    println!("# Weak scaling — dataset grows with the allocation (1929 files per 16 nodes)");
    println!("# per-node throughput in slices/second/node");
    println!(
        "{:>6} {:>8} {:>16} {:>16} {:>16}",
        "nodes", "files", "file-based", "hepnos-rocksdb", "hepnos-memory"
    );
    let mut first: Option<(f64, f64, f64)> = None;
    let mut last = (0.0, 0.0, 0.0);
    for k in [1u64, 2, 4, 8, 16] {
        let n_nodes = (16 * k) as usize;
        let dataset = DatasetSpec::nova_replicated(k);
        let file = FileWorkflowModel {
            n_nodes,
            machine: machine.clone(),
            dataset,
            costs: costs.clone(),
        }
        .simulate()
        .throughput
            / n_nodes as f64;
        let lsm = HepnosWorkflowModel {
            n_nodes,
            machine: machine.clone(),
            dataset,
            costs: costs.clone(),
            backend: Backend::Lsm,
        }
        .simulate()
        .throughput
            / n_nodes as f64;
        let mem = HepnosWorkflowModel {
            n_nodes,
            machine: machine.clone(),
            dataset,
            costs: costs.clone(),
            backend: Backend::Memory,
        }
        .simulate()
        .throughput
            / n_nodes as f64;
        println!(
            "{:>6} {:>8} {:>16} {:>16} {:>16}",
            n_nodes,
            dataset.n_files,
            fmt_throughput(file),
            fmt_throughput(lsm),
            fmt_throughput(mem)
        );
        if first.is_none() {
            first = Some((file, lsm, mem));
        }
        last = (file, lsm, mem);
    }
    let first = first.expect("at least one row");
    println!("\n# weak-scaling efficiency (per-node throughput retained, 16 -> 256 nodes):");
    println!("#   file-based:     {:>5.1}%", last.0 / first.0 * 100.0);
    println!("#   hepnos-rocksdb: {:>5.1}%", last.1 / first.1 * 100.0);
    println!("#   hepnos-memory:  {:>5.1}%", last.2 / first.2 * 100.0);
}
