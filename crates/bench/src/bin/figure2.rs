//! Regenerates **Figure 2** of the paper: strong scaling of the three
//! workflows over the largest (7716-file, 17,437,656-event) sample.
//!
//! Throughput (slices/second) as a function of total allocated nodes for
//! the traditional file-based workflow, HEPnOS with the LSM (RocksDB
//! stand-in) backend, and HEPnOS with the in-memory backend. Node counts
//! beyond this machine run in the virtual-time cluster simulator (see
//! `cluster` crate and DESIGN.md §5). Like the paper, each configuration is
//! run several times (cost-perturbed replicas standing in for run-to-run
//! noise — "the dots have been jittered"); the table reports mean and
//! spread.
//!
//! Run: `cargo run --release -p hepnos-bench --bin figure2`
//! Set `HEPNOS_BENCH_CALIBRATE=1` to also print this machine's measured
//! costs from the real implementation.

use cluster::{
    Backend, CostModel, DatasetSpec, FileWorkflowModel, HepnosWorkflowModel, ThetaMachine,
};
use hepnos_bench::{calibrate_slice_cost, fmt_throughput};

const N_TRIALS: u64 = 5;
const NOISE: f64 = 0.04;

fn trials(f: impl Fn(&CostModel) -> f64) -> (f64, f64, f64) {
    let base = CostModel::default();
    let mut values: Vec<f64> = (0..N_TRIALS)
        .map(|t| f(&base.perturbed(t + 1, NOISE)))
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are not NaN"));
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    (mean, values[0], values[values.len() - 1])
}

fn fmt_cell(mean: f64, lo: f64, hi: f64) -> String {
    format!(
        "{} ±{:.0}%",
        fmt_throughput(mean),
        (hi - lo) / 2.0 / mean * 100.0
    )
}

fn main() {
    let dataset = DatasetSpec::nova_replicated(4);
    let machine = ThetaMachine::default();
    println!(
        "# Figure 2 — strong scaling, {} files / {} events / {} slices",
        dataset.n_files, dataset.n_events, dataset.n_slices
    );
    println!("# throughput in slices/second (virtual-time cluster model, Theta-shaped)");
    println!("# {N_TRIALS} cost-perturbed trials per point (the paper's jittered dots)");
    if std::env::var("HEPNOS_BENCH_CALIBRATE").is_ok() {
        let c = calibrate_slice_cost();
        println!(
            "# calibration: real selection cost on this machine = {:.2} us/slice \
             (model uses {:.0} us for KNL cores)",
            c * 1e6,
            CostModel::default().slice_compute * 1e6
        );
    }
    println!(
        "{:>6} {:>22} {:>22} {:>22}",
        "nodes", "file-based", "hepnos-rocksdb", "hepnos-memory"
    );
    let mut rows = Vec::new();
    for n_nodes in [16usize, 32, 64, 128, 256] {
        let file = trials(|costs| {
            FileWorkflowModel {
                n_nodes,
                machine: machine.clone(),
                dataset,
                costs: costs.clone(),
            }
            .simulate()
            .throughput
        });
        let lsm = trials(|costs| {
            HepnosWorkflowModel {
                n_nodes,
                machine: machine.clone(),
                dataset,
                costs: costs.clone(),
                backend: Backend::Lsm,
            }
            .simulate()
            .throughput
        });
        let mem = trials(|costs| {
            HepnosWorkflowModel {
                n_nodes,
                machine: machine.clone(),
                dataset,
                costs: costs.clone(),
                backend: Backend::Memory,
            }
            .simulate()
            .throughput
        });
        println!(
            "{:>6} {:>22} {:>22} {:>22}",
            n_nodes,
            fmt_cell(file.0, file.1, file.2),
            fmt_cell(lsm.0, lsm.1, lsm.2),
            fmt_cell(mem.0, mem.1, mem.2)
        );
        rows.push((n_nodes, file.0, lsm.0, mem.0));
    }
    // The claims checklist the paper's text makes about this figure.
    println!("\n# claims check:");
    let all_win = rows.iter().all(|&(_, f, l, m)| l > f && m > f);
    println!(
        "#  - HEPnOS superior at every node count: {}",
        yesno(all_win)
    );
    let (_, _, l16, m16) = rows[0];
    let gap16 = m16 / l16;
    let last = rows.last().expect("rows not empty");
    let gap256 = last.3 / last.2;
    println!(
        "#  - backends comparable at 16 nodes (mem/lsm = {gap16:.2}), \
         diverging to {gap256:.2}x at 256 nodes: {}",
        yesno(gap16 < 1.25 && gap256 > 1.5)
    );
    let t16 = rows[0].3;
    let t128 = rows[3].3;
    let eff = t128 / (t16 * 8.0);
    println!(
        "#  - in-memory strong-scaling efficiency at 128 nodes = {:.0}% (paper: 85%): {}",
        eff * 100.0,
        yesno((0.75..0.95).contains(&eff))
    );
    let f64n = rows[2].1;
    let f256 = rows[4].1;
    println!(
        "#  - file-based scaling collapses past 64 nodes (x{:.2} from 64->256): {}",
        f256 / f64n,
        yesno(f256 / f64n < 1.6)
    );
}

fn yesno(b: bool) -> &'static str {
    if b {
        "PASS"
    } else {
        "FAIL"
    }
}
