//! Goodput under overload: hot writers vs a deliberately tiny service,
//! with overload protection on (2-deep admission queues + soft/hard memory
//! watermarks + AIMD client windows) and off (the pre-PR-5 behaviour:
//! unbounded queues, accept everything).
//!
//! Every writer eventually lands every pair in both modes (local transport,
//! patient retries), so the interesting outputs are goodput — acknowledged
//! pairs per second — versus offered load, how much work the service shed
//! to stay inside its bounds, and how far the clients' AIMD windows backed
//! off. Results are logged into `BENCH_overload.json`.
//!
//! Run: `cargo run --release -p hepnos-bench --bin goodput_overload`

use bedrock::{BackendKind, DbCounts, OverloadConfig};
use hepnos::testing::{local_deployment_tuned, LocalDeployment};
use hepnos::{AsyncWriteBatch, BatchStats, ProductLabel};
use mercurio::NetworkModel;
use std::time::{Duration, Instant};

const EVENTS_PER_WRITER: u64 = 200;
const WINDOW: usize = 8;
const WRITER_COUNTS: [u64; 4] = [1, 2, 4, 8];

fn tiny_counts() -> DbCounts {
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 1,
        products: 1,
    }
}

fn patient_retry(seed: u64) -> yokan::RetryPolicy {
    yokan::RetryPolicy {
        max_attempts: 400,
        rpc_timeout: Duration::from_secs(5),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(8),
        jitter_seed: seed,
    }
}

fn deployment(protected: bool) -> LocalDeployment {
    local_deployment_tuned(
        1,
        tiny_counts(),
        BackendKind::Map,
        None,
        NetworkModel::default(),
        move |cfg| {
            if protected {
                cfg.overload = Some(OverloadConfig {
                    max_queued_per_provider: 2,
                    soft_watermark_bytes: 256 << 10,
                    hard_watermark_bytes: 64 << 20,
                    max_stall_ms: 1,
                    retry_after_ms: 1,
                    ..Default::default()
                });
            }
        },
    )
}

struct CaseResult {
    elapsed: Duration,
    total: BatchStats,
    shed: u64,
    admitted: u64,
    queue_depth_hwm: u64,
    soft_stalls: u64,
}

fn run_case(writers: u64, protected: bool) -> CaseResult {
    let dep = deployment(protected);
    let setup = dep.datastore();
    let ds = setup.root().create_dataset("bench").unwrap();
    for w in 0..writers {
        ds.create_run(w).unwrap().create_subrun(0).unwrap();
    }
    let label = ProductLabel::new("payload").unwrap();
    let t0 = Instant::now();
    let mut threads = Vec::new();
    for w in 0..writers {
        let store = dep.connect_client_with_retry(&format!("w{w}"), patient_retry(w));
        let label = label.clone();
        threads.push(std::thread::spawn(move || {
            let ds = store.dataset("bench").unwrap();
            let sr = ds.run(w).unwrap().subrun(0).unwrap();
            let uuid = ds.uuid().unwrap();
            let rt = argos::Runtime::simple(2);
            let payload = vec![w as u8; 512];
            let mut batch = AsyncWriteBatch::new(&store, rt.default_pool().unwrap())
                .with_per_db_limit(8)
                .with_inflight_window(WINDOW);
            for e in 0..EVENTS_PER_WRITER {
                let ev = batch.create_event(&sr, &uuid, e).unwrap();
                batch.store(&ev, &label, &payload).unwrap();
            }
            batch.wait().expect("lost acks");
            let stats = batch.stats();
            drop(batch);
            rt.shutdown();
            stats
        }));
    }
    let mut total = BatchStats::default();
    for t in threads {
        total.merge(&t.join().expect("writer panicked"));
    }
    let elapsed = t0.elapsed();
    let overload = dep.overload_stats();
    let soft_stalls = dep.backend_stats().iter().map(|(_, s)| s.soft_stalls).sum();
    dep.shutdown();
    assert_eq!(total.acked_pairs, total.shipped_pairs, "lost acks");
    CaseResult {
        elapsed,
        total,
        shed: overload.shed(),
        admitted: overload.admitted,
        queue_depth_hwm: overload.queue_depth_hwm,
        soft_stalls,
    }
}

fn main() {
    println!("# Goodput under overload: {EVENTS_PER_WRITER} events/writer, window {WINDOW}, 1-provider service");
    println!("# protected = 2-deep admission queue + watermarks; open = no overload section");
    for writers in WRITER_COUNTS {
        for protected in [false, true] {
            let r = run_case(writers, protected);
            let goodput = r.total.acked_pairs as f64 / r.elapsed.as_secs_f64();
            let mode = if protected { "protected" } else { "open" };
            println!(
                "{{ \"case\": \"{mode}\", \"writers\": {writers}, \"goodput_pairs_per_s\": {:.0}, \
                 \"elapsed_ms\": {}, \"acked_pairs\": {}, \"shed\": {}, \"admitted\": {}, \
                 \"queue_depth_hwm\": {}, \"soft_stalls\": {}, \"busy_pushbacks\": {}, \
                 \"window_shrinks\": {}, \"window_grows\": {}, \"window_min\": {} }}",
                goodput,
                r.elapsed.as_millis(),
                r.total.acked_pairs,
                r.shed,
                r.admitted,
                r.queue_depth_hwm,
                r.soft_stalls,
                r.total.retry.busy_pushbacks,
                r.total.window_shrinks,
                r.total.window_grows,
                r.total.window_min,
            );
        }
    }
}
