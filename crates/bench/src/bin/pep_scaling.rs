//! PEP read-path scaling: the pipelined asynchronous reader vs the serial
//! baseline over a real TCP deployment, sweeping {readers, workers,
//! read_ahead, prefetch on/off}.
//!
//! Every configuration runs the same CAFAna-style selection over the same
//! generated NOvA dataset, and the bench asserts byte-identical per-event
//! products and exactly-once callback invocation against the serial
//! reference before reporting a single number. The interesting columns are
//! events/s, blocked-on-RPC milliseconds per reader, overlap ratio (RPC
//! latency hidden behind pipeline work), steal counts and load imbalance.
//! On a single-core host absolute events/s flattens (client and servers
//! share the core), so the pipeline's effect shows up as the drop in
//! blocked_ms_per_reader at equal results. Results are logged into
//! `BENCH_pep.json`.
//!
//! Run: `cargo run --release -p hepnos-bench --bin pep_scaling [-- --smoke]`

use bedrock::{BackendKind, ConnectionDescriptor, DbCounts, ServiceConfig};
use hepnos::{DataStore, ParallelEventProcessor, PepOptions};
use mercurio::tcp::TcpEndpoint;
use nova::loader::{slice_label, slice_type_name, DataLoader};
use nova::{select_slices, EventRecord, NovaGenerator, SelectionCuts, SliceQuantities};
use parking_lot::Mutex;
use std::collections::BTreeMap;

const NODES: usize = 2;

fn node_counts() -> DbCounts {
    // Per node: 2 event dbs and 4 product dbs, so the 2-node deployment
    // serves 4 event databases (readers) fanning out over 8 product dbs.
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 2,
        events: 2,
        products: 4,
    }
}

struct Case {
    name: &'static str,
    pipeline: bool,
    read_ahead: usize,
    readers: usize,
    workers: usize,
    prefetch: bool,
}

fn cases(smoke: bool) -> Vec<Case> {
    let mut v = vec![
        Case {
            name: "serial",
            pipeline: false,
            read_ahead: 1,
            readers: 0,
            workers: 4,
            prefetch: true,
        },
        Case {
            name: "pipelined-ra4",
            pipeline: true,
            read_ahead: 4,
            readers: 0,
            workers: 4,
            prefetch: true,
        },
    ];
    if !smoke {
        v.extend([
            Case {
                name: "pipelined-ra2",
                pipeline: true,
                read_ahead: 2,
                readers: 0,
                workers: 4,
                prefetch: true,
            },
            Case {
                name: "pipelined-ra8",
                pipeline: true,
                read_ahead: 8,
                readers: 0,
                workers: 4,
                prefetch: true,
            },
            Case {
                name: "serial-1reader",
                pipeline: false,
                read_ahead: 1,
                readers: 1,
                workers: 4,
                prefetch: true,
            },
            Case {
                name: "pipelined-1reader",
                pipeline: true,
                read_ahead: 4,
                readers: 1,
                workers: 4,
                prefetch: true,
            },
            Case {
                name: "pipelined-2workers",
                pipeline: true,
                read_ahead: 4,
                readers: 0,
                workers: 2,
                prefetch: true,
            },
            Case {
                name: "serial-noprefetch",
                pipeline: false,
                read_ahead: 1,
                readers: 0,
                workers: 4,
                prefetch: false,
            },
            Case {
                name: "pipelined-noprefetch",
                pipeline: true,
                read_ahead: 4,
                readers: 0,
                workers: 4,
                prefetch: false,
            },
        ]);
    }
    v
}

/// Per-event raw slice bytes plus the selected slice ids — the unit of the
/// equal-results assertion.
type Digest = BTreeMap<(u64, u64, u64), (Option<Vec<u8>>, Vec<u64>)>;

fn run_case(
    store: &DataStore,
    ds: &hepnos::DataSet,
    case: &Case,
) -> (Digest, hepnos::PepStatistics) {
    let label = slice_label();
    let ty = slice_type_name();
    let cuts = SelectionCuts::default();
    let digest: Mutex<Digest> = Mutex::new(BTreeMap::new());
    let pep = ParallelEventProcessor::new(
        store.clone(),
        PepOptions {
            load_batch_size: 512,
            dispatch_batch_size: 32,
            num_readers: case.readers,
            num_workers: case.workers,
            prefetch: if case.prefetch {
                vec![(label.clone(), ty.clone())]
            } else {
                Vec::new()
            },
            read_ahead_pages: case.read_ahead,
            pipeline: case.pipeline,
            ..Default::default()
        },
    );
    let stats = pep
        .process(ds, |_w, pe| {
            let bytes = pe.load_raw(&label, &ty).unwrap().map(|b| b.to_vec());
            let slices: Vec<SliceQuantities> = pe.load(&label).unwrap().unwrap_or_default();
            let (run, subrun, event) = pe.event().coordinates();
            let rec = EventRecord {
                run,
                subrun,
                event,
                slices,
            };
            let ids = select_slices(&rec, &cuts);
            let prev = digest.lock().insert((run, subrun, event), (bytes, ids));
            assert!(
                prev.is_none(),
                "event delivered twice in case {}",
                case.name
            );
        })
        .unwrap_or_else(|e| panic!("case {} failed: {e}", case.name));
    (digest.into_inner(), stats)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_events, repeats) = if smoke { (600u64, 1) } else { (4000u64, 2) };

    // ---------------------------------------------------- TCP deployment
    let cfg = ServiceConfig::hepnos_topology(node_counts(), BackendKind::Map, None);
    let servers: Vec<_> = (0..NODES)
        .map(|_| bedrock::launch(TcpEndpoint::bind(0).expect("bind server"), &cfg).unwrap())
        .collect();
    let descriptors: Vec<ConnectionDescriptor> =
        servers.iter().map(|s| s.descriptor().clone()).collect();
    let store = DataStore::connect(TcpEndpoint::bind(0).expect("bind client"), &descriptors)
        .expect("datastore connect");

    // ---------------------------------------------------- ingest
    let gen = NovaGenerator::new(7);
    let mut events = Vec::with_capacity(n_events as usize);
    for r in 0..2u64 {
        for s in 0..4u64 {
            for e in 0..n_events / 8 {
                events.push(gen.generate(r, s, e));
            }
        }
    }
    let total_events = events.len() as u64;
    let ds = store.root().create_dataset("pep-scaling").unwrap();
    DataLoader::new(store.clone(), ds.clone())
        .ingest_events(&events)
        .unwrap();

    println!(
        "# PEP read-path scaling: {NODES}-node TCP deployment, {} event dbs / {} product dbs, \
         {total_events} events, CAFAna selection per event",
        store.num_event_databases(),
        store.num_product_databases(),
    );
    println!(
        "# equal-results: every case's per-event product bytes and selected slice ids are \
         asserted byte-identical to the serial reference; exactly-once asserted per callback"
    );

    let mut reference: Option<Digest> = None;
    let mut serial_blocked_per_reader = 0.0f64;
    for case in cases(smoke) {
        // Repeat and keep the best run (first run warms connections).
        let mut best: Option<(Digest, hepnos::PepStatistics)> = None;
        for _ in 0..repeats.max(1) {
            let (digest, stats) = run_case(&store, &ds, &case);
            if best
                .as_ref()
                .is_none_or(|(_, b)| stats.wall_time < b.wall_time)
            {
                best = Some((digest, stats));
            }
        }
        let (digest, stats) = best.expect("at least one run");
        assert_eq!(
            stats.total_events, total_events,
            "case {}: not every event was processed",
            case.name
        );
        match &reference {
            None => reference = Some(digest),
            Some(want) => assert_eq!(
                &digest, want,
                "case {}: results diverged from the serial reference",
                case.name
            ),
        }
        let n_readers = stats.readers.len().max(1);
        let blocked_ms_per_reader = stats.blocked_time().as_secs_f64() * 1e3 / n_readers as f64;
        if case.name == "serial" {
            serial_blocked_per_reader = blocked_ms_per_reader;
        }
        println!(
            "{{ \"case\": \"{}\", \"pipeline\": {}, \"read_ahead\": {}, \"readers\": {}, \
             \"workers\": {}, \"prefetch\": {}, \"events\": {}, \"elapsed_ms\": {}, \
             \"events_per_s\": {:.0}, \"blocked_ms_per_reader\": {:.1}, \"overlap_ratio\": {:.3}, \
             \"rpc_ms_total\": {:.1}, \"steals\": {}, \"load_imbalance\": {:.2}, \
             \"read_ahead_hwm\": {} }}",
            case.name,
            case.pipeline,
            case.read_ahead,
            n_readers,
            stats.workers.len(),
            case.prefetch,
            stats.total_events,
            stats.wall_time.as_millis(),
            stats.throughput(),
            blocked_ms_per_reader,
            stats.overlap_ratio(),
            stats
                .readers
                .iter()
                .map(|r| r.rpc_time.as_secs_f64() * 1e3)
                .sum::<f64>(),
            stats.total_steals(),
            stats.load_imbalance(),
            stats.read_ahead_hwm(),
        );
        if case.name == "pipelined-ra4" && serial_blocked_per_reader > 0.0 {
            println!(
                "# pipelined-ra4 vs serial: {:.1}x fewer blocked-on-RPC ms per reader",
                serial_blocked_per_reader / blocked_ms_per_reader.max(1e-9)
            );
        }
    }

    drop(store);
    for s in servers {
        s.shutdown();
    }
}
