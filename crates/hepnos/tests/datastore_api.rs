//! End-to-end tests of the HEPnOS client API over in-process deployments.

use bedrock::DbCounts;
use hepnos::testing::local_deployment;
use hepnos::{HepnosError, ProductLabel};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct Particle {
    x: f32,
    y: f32,
    z: f32,
}

fn small_counts() -> DbCounts {
    DbCounts {
        datasets: 2,
        runs: 2,
        subruns: 2,
        events: 4,
        products: 4,
    }
}

#[test]
fn listing1_full_flow() {
    // The paper's Listing 1, line by line.
    let dep = local_deployment(1, small_counts());
    let datastore = dep.datastore();
    let _ds = datastore.root().create_dataset("path/to/dataset").unwrap();
    let ds = datastore.dataset("path/to/dataset").unwrap().full_path();
    assert_eq!(ds, "path/to/dataset");
    let ds = datastore.dataset("path/to/dataset").unwrap();
    let run = ds.create_run(43).unwrap();
    let subrun = run.create_subrun(56).unwrap();
    let ev = subrun.create_event(25).unwrap();
    let vp1 = vec![
        Particle {
            x: 1.0,
            y: 2.0,
            z: 3.0,
        },
        Particle {
            x: 4.0,
            y: 5.0,
            z: 6.0,
        },
    ];
    ev.store(&ProductLabel::new("vp").unwrap(), &vp1).unwrap();
    let vp2: Vec<Particle> = ev.load(&ProductLabel::new("vp").unwrap()).unwrap().unwrap();
    assert_eq!(vp1, vp2);
    // "iterate over the subruns in a run"
    let numbers: Vec<u64> = run.subruns().unwrap().iter().map(|s| s.number()).collect();
    assert_eq!(numbers, vec![56]);
    dep.shutdown();
}

#[test]
fn nested_datasets_and_listing() {
    let dep = local_deployment(2, small_counts());
    let store = dep.datastore();
    let root = store.root();
    root.create_dataset("fermilab/nova").unwrap();
    root.create_dataset("fermilab/dune").unwrap();
    root.create_dataset("cern/atlas").unwrap();
    let top: Vec<String> = root.datasets().unwrap().iter().map(|d| d.name()).collect();
    assert_eq!(top, vec!["cern", "fermilab"]);
    let fermilab = store.dataset("fermilab").unwrap();
    let subs: Vec<String> = fermilab
        .datasets()
        .unwrap()
        .iter()
        .map(|d| d.name())
        .collect();
    assert_eq!(subs, vec!["dune", "nova"]);
    // Nested datasets do not leak into the parent's listing.
    store
        .dataset("fermilab/nova")
        .unwrap()
        .create_dataset("mc")
        .unwrap();
    assert_eq!(root.datasets().unwrap().len(), 2);
    dep.shutdown();
}

#[test]
fn open_missing_containers_errors() {
    let dep = local_deployment(1, small_counts());
    let store = dep.datastore();
    assert!(matches!(
        store.dataset("ghost"),
        Err(HepnosError::NoSuchDataset(_))
    ));
    let ds = store.root().create_dataset("d").unwrap();
    assert!(matches!(ds.run(5), Err(HepnosError::NoSuchContainer(_))));
    let run = ds.create_run(5).unwrap();
    assert!(matches!(
        run.subrun(1),
        Err(HepnosError::NoSuchContainer(_))
    ));
    let sr = run.create_subrun(1).unwrap();
    assert!(matches!(sr.event(0), Err(HepnosError::NoSuchContainer(_))));
    dep.shutdown();
}

#[test]
fn create_is_idempotent() {
    let dep = local_deployment(1, small_counts());
    let store = dep.datastore();
    let d1 = store.root().create_dataset("a/b").unwrap();
    let d2 = store.root().create_dataset("a/b").unwrap();
    assert_eq!(d1.uuid(), d2.uuid());
    let ds = store.dataset("a/b").unwrap();
    ds.create_run(1).unwrap();
    ds.create_run(1).unwrap();
    assert_eq!(ds.runs().unwrap().len(), 1);
    dep.shutdown();
}

#[test]
fn runs_iterate_in_numeric_order_across_magnitudes() {
    let dep = local_deployment(2, small_counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("ordered").unwrap();
    for n in [300u64, 2, 1000, 0, 255, 256, 65536] {
        ds.create_run(n).unwrap();
    }
    let numbers: Vec<u64> = ds.runs().unwrap().iter().map(|r| r.number()).collect();
    assert_eq!(numbers, vec![0, 2, 255, 256, 300, 1000, 65536]);
    dep.shutdown();
}

#[test]
fn events_iterate_in_order_and_are_isolated_per_subrun() {
    let dep = local_deployment(2, small_counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("d").unwrap();
    let run = ds.create_run(1).unwrap();
    let sr1 = run.create_subrun(1).unwrap();
    let sr2 = run.create_subrun(2).unwrap();
    for e in (0..20u64).rev() {
        sr1.create_event(e).unwrap();
    }
    sr2.create_event(100).unwrap();
    let evs: Vec<u64> = sr1.events().unwrap().iter().map(|e| e.number()).collect();
    assert_eq!(evs, (0..20).collect::<Vec<_>>());
    assert_eq!(sr2.events().unwrap().len(), 1);
    dep.shutdown();
}

#[test]
fn products_on_all_container_levels() {
    let dep = local_deployment(1, small_counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("d").unwrap();
    let run = ds.create_run(1).unwrap();
    let sr = run.create_subrun(2).unwrap();
    let ev = sr.create_event(3).unwrap();
    let label = ProductLabel::new("calib").unwrap();
    run.store(&label, &vec![1u32, 2]).unwrap();
    sr.store(&label, &vec![3u32]).unwrap();
    ev.store(&label, &vec![4u32, 5, 6]).unwrap();
    assert_eq!(run.load::<Vec<u32>>(&label).unwrap().unwrap(), vec![1, 2]);
    assert_eq!(sr.load::<Vec<u32>>(&label).unwrap().unwrap(), vec![3]);
    assert_eq!(ev.load::<Vec<u32>>(&label).unwrap().unwrap(), vec![4, 5, 6]);
    dep.shutdown();
}

#[test]
fn products_are_type_and_label_keyed() {
    let dep = local_deployment(1, small_counts());
    let store = dep.datastore();
    let ev = store
        .root()
        .create_dataset("d")
        .unwrap()
        .create_run(1)
        .unwrap()
        .create_subrun(1)
        .unwrap()
        .create_event(1)
        .unwrap();
    let l1 = ProductLabel::new("a").unwrap();
    let l2 = ProductLabel::new("b").unwrap();
    ev.store(&l1, &42u64).unwrap();
    ev.store(&l2, &43u64).unwrap();
    ev.store(&l1, &String::from("same label, different type"))
        .unwrap();
    assert_eq!(ev.load::<u64>(&l1).unwrap(), Some(42));
    assert_eq!(ev.load::<u64>(&l2).unwrap(), Some(43));
    assert_eq!(
        ev.load::<String>(&l1).unwrap().as_deref(),
        Some("same label, different type")
    );
    // Absent (label, type) pairs come back as None, not an error.
    assert_eq!(ev.load::<f64>(&l1).unwrap(), None);
    assert_eq!(
        ev.load::<u64>(&ProductLabel::new("ghost").unwrap())
            .unwrap(),
        None
    );
    dep.shutdown();
}

#[test]
fn two_clients_see_each_others_writes() {
    let dep = local_deployment(2, small_counts());
    let store_a = dep.datastore();
    let store_b = dep.connect_client("second-client");
    let ds = store_a.root().create_dataset("shared").unwrap();
    let ev = ds
        .create_run(7)
        .unwrap()
        .create_subrun(0)
        .unwrap()
        .create_event(99)
        .unwrap();
    ev.store(&ProductLabel::new("p").unwrap(), &vec![1.5f64])
        .unwrap();
    // Client B navigates independently (placement must agree).
    let ds_b = store_b.dataset("shared").unwrap();
    assert_eq!(ds_b.uuid(), ds.uuid());
    let ev_b = ds_b.run(7).unwrap().subrun(0).unwrap().event(99).unwrap();
    assert_eq!(
        ev_b.load::<Vec<f64>>(&ProductLabel::new("p").unwrap())
            .unwrap()
            .unwrap(),
        vec![1.5]
    );
    dep.shutdown();
}

#[test]
fn events_spread_across_databases_but_subrun_stays_in_one() {
    // Placement invariant (§II-C3): all events of one subrun are in one
    // database; different subruns spread across databases.
    let dep = local_deployment(2, small_counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("spread").unwrap();
    let run = ds.create_run(1).unwrap();
    for sr in 0..32u64 {
        let subrun = run.create_subrun(sr).unwrap();
        for e in 0..4u64 {
            subrun.create_event(e).unwrap();
        }
    }
    // Every subrun iterates its own 4 events (single-db scans).
    for sr in run.subruns().unwrap() {
        assert_eq!(sr.events().unwrap().len(), 4);
    }
    dep.shutdown();
}

#[test]
fn dataset_events_covers_all_runs_and_subruns_in_order() {
    let dep = local_deployment(2, small_counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("allevents").unwrap();
    let mut expected = Vec::new();
    for r in [1u64, 3] {
        let run = ds.create_run(r).unwrap();
        for s in [0u64, 2, 7] {
            let sr = run.create_subrun(s).unwrap();
            for e in 0..5u64 {
                sr.create_event(e).unwrap();
                expected.push((r, s, e));
            }
        }
    }
    expected.sort();
    let got: Vec<_> = ds
        .events()
        .unwrap()
        .iter()
        .map(|e| e.coordinates())
        .collect();
    assert_eq!(got, expected);
    // Another dataset's events do not leak in.
    let other = store.root().create_dataset("other").unwrap();
    other
        .create_run(1)
        .unwrap()
        .create_subrun(0)
        .unwrap()
        .create_event(99)
        .unwrap();
    assert_eq!(ds.events().unwrap().len(), expected.len());
    dep.shutdown();
}

#[test]
fn root_cannot_hold_runs() {
    let dep = local_deployment(1, small_counts());
    let store = dep.datastore();
    assert!(store.root().create_run(1).is_err());
    dep.shutdown();
}

#[test]
fn large_products_round_trip() {
    let dep = local_deployment(1, small_counts());
    let store = dep.datastore();
    let ev = store
        .root()
        .create_dataset("big")
        .unwrap()
        .create_run(1)
        .unwrap()
        .create_subrun(1)
        .unwrap()
        .create_event(1)
        .unwrap();
    // "a few megabytes" — the upper end of the paper's product sizes.
    let big: Vec<f64> = (0..400_000).map(|i| i as f64 * 0.5).collect();
    ev.store(&ProductLabel::new("waveform").unwrap(), &big)
        .unwrap();
    let back: Vec<f64> = ev
        .load(&ProductLabel::new("waveform").unwrap())
        .unwrap()
        .unwrap();
    assert_eq!(back.len(), big.len());
    assert_eq!(back[399_999], big[399_999]);
    dep.shutdown();
}

#[test]
fn connect_from_json_config_file() {
    use bedrock::ConnectionDescriptor;
    // The paper's Listing-1 entry point: connect("config.json"). Write the
    // deployment descriptors to a file, read it back, connect.
    let dep = local_deployment(2, small_counts());
    let json = ConnectionDescriptor::deployment_to_json(dep.descriptors());
    let path = std::env::temp_dir().join(format!("hepnos-config-{}.json", std::process::id()));
    std::fs::write(&path, &json).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let store =
        hepnos::DataStore::connect_from_json(dep.fabric().endpoint("json-client"), &text).unwrap();
    let ds = store.root().create_dataset("from-config").unwrap();
    ds.create_run(1).unwrap();
    assert_eq!(
        store.dataset("from-config").unwrap().runs().unwrap().len(),
        1
    );

    // Garbage config errors cleanly.
    assert!(hepnos::DataStore::connect_from_json(
        dep.fabric().endpoint("json-client2"),
        "{not json",
    )
    .is_err());
    std::fs::remove_file(&path).ok();
    dep.shutdown();
}

#[test]
fn topology_without_required_database_kinds_is_rejected() {
    use bedrock::ConnectionDescriptor;
    let dep = local_deployment(1, small_counts());
    // Strip all product databases from the descriptors.
    let crippled: Vec<ConnectionDescriptor> = dep
        .descriptors()
        .iter()
        .map(|d| {
            let mut d = d.clone();
            for p in &mut d.providers {
                p.databases.retain(|n| !n.starts_with("products"));
            }
            d
        })
        .collect();
    let err = hepnos::DataStore::connect(dep.fabric().endpoint("crippled"), &crippled).unwrap_err();
    assert!(matches!(err, HepnosError::Topology(_)), "{err}");
    assert!(err.to_string().contains("products"));
    dep.shutdown();
}

#[test]
fn events_range_is_a_bounded_scan() {
    let dep = local_deployment(1, small_counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("ranged").unwrap();
    let sr = ds.create_run(1).unwrap().create_subrun(0).unwrap();
    // Sparse event numbers to exercise gaps.
    for e in [0u64, 3, 4, 7, 10, 100, 101, 5000] {
        sr.create_event(e).unwrap();
    }
    let nums = |lo, hi| -> Vec<u64> {
        sr.events_range(lo, hi)
            .unwrap()
            .iter()
            .map(|e| e.number())
            .collect()
    };
    assert_eq!(nums(0, 5), vec![0, 3, 4]);
    assert_eq!(nums(3, 11), vec![3, 4, 7, 10]);
    assert_eq!(nums(4, 4), Vec::<u64>::new());
    assert_eq!(nums(8, 8), Vec::<u64>::new());
    assert_eq!(nums(101, u64::MAX), vec![101, 5000]);
    assert_eq!(nums(0, u64::MAX), vec![0, 3, 4, 7, 10, 100, 101, 5000]);
    // Reading a bounded range never touches other subruns.
    let sr2 = ds.run(1).unwrap().create_subrun(1).unwrap();
    sr2.create_event(2).unwrap();
    assert_eq!(nums(0, 5), vec![0, 3, 4]);
    dep.shutdown();
}

#[test]
fn run_events_spans_subruns_in_order() {
    let dep = local_deployment(2, small_counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("runevents").unwrap();
    let run = ds.create_run(5).unwrap();
    let mut expected = Vec::new();
    for s in [0u64, 3, 9] {
        let sr = run.create_subrun(s).unwrap();
        for e in 0..4u64 {
            sr.create_event(e).unwrap();
            expected.push((5u64, s, e));
        }
    }
    // Another run's events must not appear.
    ds.create_run(6)
        .unwrap()
        .create_subrun(0)
        .unwrap()
        .create_event(77)
        .unwrap();
    let got: Vec<_> = run
        .events()
        .unwrap()
        .iter()
        .map(|e| e.coordinates())
        .collect();
    assert_eq!(got, expected);
    dep.shutdown();
}
