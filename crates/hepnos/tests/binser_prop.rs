//! Property tests for the binary product serializer: arbitrary nested
//! values must round-trip exactly, and truncated or extended payloads must
//! error rather than decode silently.

use hepnos::binser::{from_bytes, to_bytes};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FlatQuantities {
    a: u8,
    b: i16,
    c: u32,
    d: i64,
    e: f32,
    f: f64,
    g: bool,
}

fn flat_strategy() -> impl Strategy<Value = FlatQuantities> {
    (
        any::<u8>(),
        any::<i16>(),
        any::<u32>(),
        any::<i64>(),
        any::<f32>(),
        any::<f64>(),
        any::<bool>(),
    )
        .prop_map(|(a, b, c, d, e, f, g)| FlatQuantities {
            a,
            b,
            c,
            d,
            e,
            f,
            g,
        })
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum RecoObject {
    Nothing,
    Track { length: f64, hits: u32 },
    Shower(f32),
    Pair(u8, i8),
    Labeled(String),
}

fn reco_strategy() -> impl Strategy<Value = RecoObject> {
    prop_oneof![
        Just(RecoObject::Nothing),
        (any::<f64>(), any::<u32>()).prop_map(|(length, hits)| RecoObject::Track { length, hits }),
        any::<f32>().prop_map(RecoObject::Shower),
        (any::<u8>(), any::<i8>()).prop_map(|(a, b)| RecoObject::Pair(a, b)),
        ".{0,24}".prop_map(RecoObject::Labeled),
    ]
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EventLike {
    run: u64,
    subrun: u64,
    event: u64,
    quantities: Vec<FlatQuantities>,
    objects: Vec<RecoObject>,
    tags: BTreeMap<String, u32>,
    note: Option<String>,
    blob: Vec<u8>,
}

fn event_strategy() -> impl Strategy<Value = EventLike> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(flat_strategy(), 0..6),
        proptest::collection::vec(reco_strategy(), 0..6),
        proptest::collection::btree_map(".{0,8}", any::<u32>(), 0..4),
        proptest::option::of(".{0,16}"),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(
            |(run, subrun, event, quantities, objects, tags, note, blob)| EventLike {
                run,
                subrun,
                event,
                quantities,
                objects,
                tags,
                note,
                blob,
            },
        )
}

proptest! {
    #[test]
    fn scalars_round_trip(x in any::<u64>(), y in any::<i32>(), s in ".*") {
        prop_assert_eq!(from_bytes::<u64>(&to_bytes(&x).unwrap()).unwrap(), x);
        prop_assert_eq!(from_bytes::<i32>(&to_bytes(&y).unwrap()).unwrap(), y);
        prop_assert_eq!(from_bytes::<String>(&to_bytes(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn floats_round_trip_bit_exact(x in any::<f32>(), y in any::<f64>()) {
        let bx: f32 = from_bytes(&to_bytes(&x).unwrap()).unwrap();
        let by: f64 = from_bytes(&to_bytes(&y).unwrap()).unwrap();
        prop_assert_eq!(bx.to_bits(), x.to_bits());
        prop_assert_eq!(by.to_bits(), y.to_bits());
    }

    #[test]
    fn nested_structures_round_trip(ev in event_strategy()) {
        let bytes = to_bytes(&ev).unwrap();
        let back: EventLike = from_bytes(&bytes).unwrap();
        // Re-encoding the decoded value must give identical bytes (covers
        // NaN fields, which PartialEq would reject).
        prop_assert_eq!(to_bytes(&back).unwrap(), bytes);
    }

    #[test]
    fn vectors_and_options(v in proptest::collection::vec(
        proptest::option::of(proptest::collection::vec(any::<u16>(), 0..8)), 0..20)
    ) {
        let bytes = to_bytes(&v).unwrap();
        prop_assert_eq!(from_bytes::<Vec<Option<Vec<u16>>>>(&bytes).unwrap(), v);
    }

    #[test]
    fn truncation_and_extension_always_error(
        ev in event_strategy(),
        cut in 1usize..16,
    ) {
        let bytes = to_bytes(&ev).unwrap();
        if bytes.len() > cut {
            prop_assert!(from_bytes::<EventLike>(&bytes[..bytes.len()-cut]).is_err());
        }
        let mut longer = bytes.clone();
        longer.extend(std::iter::repeat_n(0u8, cut));
        prop_assert!(from_bytes::<EventLike>(&longer).is_err());
    }

    #[test]
    fn encoding_is_deterministic(ev in event_strategy()) {
        prop_assert_eq!(to_bytes(&ev).unwrap(), to_bytes(&ev.clone()).unwrap());
    }
}
