//! Property tests for the key encoding and placement invariants the
//! HEPnOS design rests on (paper §II-C).

use hepnos::keys;
use hepnos::placement::{ModuloPlacement, Placement, RingPlacement};
use hepnos::Uuid;
use proptest::prelude::*;

fn uuid_strategy() -> impl Strategy<Value = Uuid> {
    any::<[u8; 16]>().prop_map(Uuid::from_bytes)
}

proptest! {
    /// Lexicographic order of encoded keys equals numeric order of the
    /// trailing container number — the invariant that makes sorted-database
    /// iteration yield runs/subruns/events in ascending order.
    #[test]
    fn key_order_equals_numeric_order(
        u in uuid_strategy(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        prop_assert_eq!(keys::run_key(&u, a).cmp(&keys::run_key(&u, b)), a.cmp(&b));
        prop_assert_eq!(
            keys::subrun_key(&u, 7, a).cmp(&keys::subrun_key(&u, 7, b)),
            a.cmp(&b)
        );
        prop_assert_eq!(
            keys::event_key(&u, 7, 9, a).cmp(&keys::event_key(&u, 7, 9, b)),
            a.cmp(&b)
        );
    }

    /// Every child key starts with its parent's key (prefix-scan iteration).
    #[test]
    fn child_keys_extend_parent_prefix(
        u in uuid_strategy(),
        run in any::<u64>(),
        subrun in any::<u64>(),
        event in any::<u64>(),
    ) {
        let rk = keys::run_key(&u, run);
        let sk = keys::subrun_key(&u, run, subrun);
        let ek = keys::event_key(&u, run, subrun, event);
        prop_assert!(sk.starts_with(&rk));
        prop_assert!(ek.starts_with(&sk));
        prop_assert_eq!(keys::trailing_number(&ek), Some(event));
        prop_assert_eq!(keys::parse_event_key(&ek), Some((u, run, subrun, event)));
    }

    /// Sibling events always land on the same database under both
    /// placement strategies (they share the parent key), for any database
    /// count — the single-database-iteration property.
    #[test]
    fn siblings_colocate(
        u in uuid_strategy(),
        run in any::<u64>(),
        subrun in any::<u64>(),
        n_dbs in 1usize..64,
    ) {
        let parent = keys::subrun_key(&u, run, subrun);
        let modulo = ModuloPlacement.place(&parent, n_dbs);
        prop_assert!(modulo < n_dbs);
        let ring = RingPlacement::new(32).place(&parent, n_dbs);
        prop_assert!(ring < n_dbs);
        // Placement depends only on the parent key, so re-evaluating for
        // any event of the subrun is the same computation; assert stability.
        prop_assert_eq!(ModuloPlacement.place(&parent, n_dbs), modulo);
        prop_assert_eq!(RingPlacement::new(32).place(&parent, n_dbs), ring);
    }

    /// Product keys preserve their container prefix and never collide
    /// across distinct (label, type) pairs.
    #[test]
    fn product_keys_distinct_per_label_type(
        u in uuid_strategy(),
        l1 in "[a-z]{1,12}",
        l2 in "[a-z]{1,12}",
        t1 in "[A-Za-z<>]{1,16}",
        t2 in "[A-Za-z<>]{1,16}",
    ) {
        let ck = keys::event_key(&u, 1, 2, 3);
        let p1 = keys::product_key(&ck, &l1, &t1);
        let p2 = keys::product_key(&ck, &l2, &t2);
        prop_assert!(p1.starts_with(&ck) && p2.starts_with(&ck));
        if (l1.clone(), t1.clone()) != (l2.clone(), t2.clone()) {
            // '#' cannot appear in labels, so framing is unambiguous.
            prop_assert_ne!(p1, p2);
        } else {
            prop_assert_eq!(p1, p2);
        }
    }

    /// Dataset path parsing is idempotent and children list under their
    /// parent's prefix only.
    #[test]
    fn dataset_paths_normalize(comps in proptest::collection::vec("[a-zA-Z0-9_.-]{1,10}", 1..5)) {
        let raw = format!("/{}/", comps.join("/"));
        let p = keys::DatasetPath::parse(&raw).unwrap();
        prop_assert_eq!(p.full(), comps.join("/"));
        let reparsed = keys::DatasetPath::parse(&p.full()).unwrap();
        prop_assert_eq!(reparsed.components(), p.components());
        // Key of the leaf lists under its parent's children prefix.
        let parent_full = p.parent().map(|q| q.full()).unwrap_or_default();
        let key = keys::dataset_key(&parent_full, p.name());
        prop_assert!(key.starts_with(&keys::dataset_children_prefix(&parent_full)));
        prop_assert_eq!(keys::dataset_key_name(&key), Some(p.name()));
    }
}
