//! Tests for the pipelined asynchronous PEP read path: exactly-once
//! delivery under fault injection, work stealing under a slow callback,
//! byte-identical pipelined-vs-serial results, and honest partial-progress
//! reporting on the error path.

use bedrock::DbCounts;
use hepnos::testing::local_deployment;
use hepnos::{
    DataSet, DataStore, ParallelEventProcessor, PepOptions, ProductLabel, RetryPolicy, WriteBatch,
};
use mercurio::{FaultConfig, FaultPlan};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct Hit {
    channel: u32,
    adc: u16,
}

fn counts() -> DbCounts {
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 2,
        events: 4,
        products: 4,
    }
}

fn hit_label() -> ProductLabel {
    ProductLabel::new("hits").unwrap()
}

fn hit_type() -> String {
    hepnos::keys::short_type_name::<Vec<Hit>>()
}

/// Seeded, structured workload: `n_subruns * n_events` events across two
/// runs, each with a deterministic `Vec<Hit>` product whose shape depends
/// on the coordinates.
fn ingest(store: &DataStore, name: &str, n_subruns: u64, n_events: u64) -> DataSet {
    let ds = store.root().create_dataset(name).unwrap();
    let uuid = ds.uuid().unwrap();
    let label = hit_label();
    for r in 0..2u64 {
        let run = ds.create_run(r).unwrap();
        for s in 0..n_subruns {
            let sr = run.create_subrun(s).unwrap();
            let mut batch = WriteBatch::new(store);
            for e in 0..n_events {
                let ev = batch.create_event(&sr, &uuid, e).unwrap();
                let hits: Vec<Hit> = (0..(e % 7 + 1))
                    .map(|i| Hit {
                        channel: (r * 1000 + s * 100 + e + i) as u32,
                        adc: (e * 31 + i) as u16,
                    })
                    .collect();
                batch.store(&ev, &label, &hits).unwrap();
            }
        }
    }
    ds
}

/// Per-event raw product bytes keyed by coordinates, as observed by the
/// PEP callbacks — the unit of the byte-identity comparisons.
type Digest = BTreeMap<(u64, u64, u64), Option<Vec<u8>>>;

fn run_pep(store: &DataStore, ds: &DataSet, opts: PepOptions) -> (Digest, hepnos::PepStatistics) {
    let label = hit_label();
    let ty = hit_type();
    let digest: Mutex<Digest> = Mutex::new(BTreeMap::new());
    let pep = ParallelEventProcessor::new(store.clone(), opts);
    let stats = pep
        .process(ds, |_w, pe| {
            let bytes = pe.load_raw(&label, &ty).unwrap().map(|b| b.to_vec());
            let prev = digest.lock().insert(pe.event().coordinates(), bytes);
            assert!(prev.is_none(), "an event was delivered twice");
        })
        .unwrap();
    (digest.into_inner(), stats)
}

fn pipeline_opts(num_workers: usize) -> PepOptions {
    PepOptions {
        load_batch_size: 64,
        dispatch_batch_size: 8,
        num_workers,
        prefetch: vec![(hit_label(), hit_type())],
        read_ahead_pages: 3,
        ..Default::default()
    }
}

/// Retry aggressively enough that a plan's worst-case streak of drops
/// cannot exhaust the budget; `rpc_timeout` stays far above `delay_max` so
/// injected delays never masquerade as lost frames.
fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        rpc_timeout: Duration::from_millis(250),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        jitter_seed: seed,
    }
}

fn fault_config(seed: u64) -> FaultConfig {
    let mut cfg = FaultConfig::new(seed);
    cfg.drop_request = 0.03;
    cfg.drop_response = 0.02;
    cfg.duplicate_request = 0.02;
    cfg.duplicate_response = 0.02;
    cfg.delay_probability = 0.10;
    cfg.delay_min = Duration::from_millis(1);
    cfg.delay_max = Duration::from_millis(10);
    cfg.disconnect_probability = 0.01;
    cfg
}

/// 8 workers over 4 event databases with an active fault plan on every
/// read RPC: each event's callback must run exactly once and the observed
/// product bytes must match a fault-free run, with no RPC giving up.
#[test]
fn pipelined_read_is_exactly_once_under_faults() {
    let dep = local_deployment(2, counts());
    let ds = ingest(&dep.datastore(), "faulty", 3, 30);
    let (clean, _) = run_pep(&dep.datastore(), &ds, pipeline_opts(8));
    assert_eq!(clean.len(), 2 * 3 * 30);

    for seed in [7u64, 1042] {
        let store = dep.connect_client_with_retry(&format!("retry-{seed}"), retry_policy(seed));
        let plan = Arc::new(FaultPlan::new(fault_config(seed)));
        dep.fabric().install_fault_plan(plan.clone());
        let (faulty, stats) = run_pep(&store, &ds, pipeline_opts(8));
        dep.fabric().clear_fault_plan();
        let retry = store.retry_stats();
        assert_eq!(
            retry.gave_up, 0,
            "seed {seed}: {} read RPC(s) exhausted their retry budget ({retry:?})",
            retry.gave_up
        );
        assert_eq!(
            faulty,
            clean,
            "seed {seed}: results diverged under faults (injected: {:?})",
            plan.counts()
        );
        assert_eq!(stats.total_events, stats.events_loaded);
    }
    dep.shutdown();
}

/// One worker sleeps in its callback while the rest are fast: the fast
/// workers must steal the slow worker's backlog, keeping delivery
/// exactly-once and the slow worker's share well under round-robin's 1/N.
#[test]
fn work_stealing_rescues_a_slow_worker() {
    let dep = local_deployment(1, counts());
    let store = dep.datastore();
    let ds = ingest(&store, "steal", 4, 60);
    let total = 2 * 4 * 60u64;
    let seen = Mutex::new(HashSet::new());
    let pep = ParallelEventProcessor::new(
        store.clone(),
        PepOptions {
            load_batch_size: 64,
            dispatch_batch_size: 4,
            num_workers: 4,
            ..Default::default()
        },
    );
    let stats = pep
        .process(&ds, |worker, pe| {
            assert!(
                seen.lock().insert(pe.event().coordinates()),
                "an event was delivered twice"
            );
            if worker == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
        })
        .unwrap();
    assert_eq!(stats.total_events, total);
    assert_eq!(seen.into_inner().len(), total as usize);
    assert!(
        stats.total_steals() > 0,
        "no batches were stolen despite a slow worker"
    );
    // Round-robin alone would leave worker 0 with 1/4 of the events; with
    // stealing the fast workers drain its deque instead.
    let slow = stats.workers[0].events_processed;
    assert!(
        slow < total / 4,
        "slow worker processed {slow} of {total} events — its backlog was not stolen \
         (per-worker: {:?})",
        stats
            .workers
            .iter()
            .map(|w| w.events_processed)
            .collect::<Vec<_>>()
    );
    dep.shutdown();
}

/// The pipelined reader must produce byte-identical per-event products to
/// the serial baseline, and actually pipeline (read-ahead observed).
#[test]
fn pipelined_matches_serial_byte_for_byte() {
    let dep = local_deployment(2, counts());
    let store = dep.datastore();
    let ds = ingest(&store, "ab", 3, 50);

    let mut serial_opts = pipeline_opts(4);
    serial_opts.pipeline = false;
    let (serial, serial_stats) = run_pep(&store, &ds, serial_opts);

    let (pipelined, stats) = run_pep(&store, &ds, pipeline_opts(4));

    assert_eq!(serial.len(), 2 * 3 * 50);
    assert_eq!(pipelined, serial, "pipelined products diverged from serial");
    assert_eq!(stats.total_events, serial_stats.total_events);
    assert_eq!(stats.events_loaded, stats.total_events);
    assert!(
        stats.read_ahead_hwm() >= 1,
        "pipelined run never had a page in flight"
    );
    // Every event has a product, so prefetch must have served them all.
    assert!(pipelined.values().all(|v| v.is_some()));
    dep.shutdown();
}

/// Mid-run failure: a fault plan dropping every frame is installed after
/// the first callback, with a small retry budget. `process_partial` must
/// return the error *and* honest statistics — every dispatched event's
/// callback ran exactly once, and events loaded before the failure are
/// reported even though some were never dispatched.
#[test]
fn error_path_reports_partial_progress() {
    let dep = local_deployment(1, counts());
    let policy = RetryPolicy {
        max_attempts: 2,
        rpc_timeout: Duration::from_millis(50),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        jitter_seed: 1,
    };
    let store = dep.connect_client_with_retry("partial", policy);
    let ds = ingest(&store, "partial", 2, 100);
    let total = 2 * 2 * 100u64;

    let blackout = {
        let mut cfg = FaultConfig::new(99);
        cfg.drop_request = 1.0;
        cfg
    };
    let tripped = std::sync::atomic::AtomicBool::new(false);
    let calls = Mutex::new(HashSet::new());
    let pep = ParallelEventProcessor::new(
        store.clone(),
        PepOptions {
            load_batch_size: 16,
            dispatch_batch_size: 4,
            num_workers: 2,
            read_ahead_pages: 2,
            ..Default::default()
        },
    );
    let (stats, err) = pep.process_partial(&ds, |_w, pe| {
        if !tripped.swap(true, std::sync::atomic::Ordering::SeqCst) {
            dep.fabric()
                .install_fault_plan(Arc::new(FaultPlan::new(blackout.clone())));
        }
        assert!(
            calls.lock().insert(pe.event().coordinates()),
            "an event was delivered twice on the error path"
        );
    });
    dep.fabric().clear_fault_plan();

    assert!(err.is_some(), "blackout did not surface as an error");
    let processed = calls.into_inner().len() as u64;
    assert_eq!(
        stats.total_events, processed,
        "statistics disagree with the callbacks that actually ran"
    );
    assert!(
        stats.total_events < total,
        "blackout struck too late to interrupt the run"
    );
    assert!(
        stats.events_loaded >= stats.total_events,
        "loaded {} < processed {}",
        stats.events_loaded,
        stats.total_events
    );
    assert_eq!(stats.workers.len(), 2, "worker stats lost on error path");
    dep.shutdown();
}
