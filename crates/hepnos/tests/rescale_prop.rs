//! Property tests pinning [`hepnos::rescale::product_parent`]: the
//! longest-candidate tie-break must recover the *true* container key of a
//! product even for adversarial keys where every candidate prefix length
//! (24, 32 and 40 bytes) is followed by a [`hepnos::keys::PRODUCT_SEP`]
//! somewhere — the ambiguity that makes the tie-break load-bearing — and
//! the recovered parent must keep re-homing the key consistently across
//! successive topology epochs (each rescale classifies with the *previous*
//! epoch's database count).

use hepnos::keys;
use hepnos::placement::{ModuloPlacement, Placement, RingPlacement};
use hepnos::rescale::product_parent;
use hepnos::Uuid;
use proptest::prelude::*;

/// Build a product key whose label/type are salted with `#` bytes so that
/// the 24-, 32- and 40-byte prefixes are *all* followed by a separator —
/// every candidate length looks plausible to a naive parser.
fn ambiguous_product_key(container_key: &[u8], label: &str, type_name: &str) -> Vec<u8> {
    let key = keys::product_key(container_key, label, type_name);
    assert!(
        [40usize, 32, 24]
            .iter()
            .all(|&len| key.len() > len && key[len..].contains(&keys::PRODUCT_SEP)),
        "test key failed to be ambiguous: {key:?}"
    );
    key
}

/// Labels guaranteed to contain `#` early, so shorter (wrong) prefix
/// candidates still see a separator in their suffix.
fn salted_label() -> impl Strategy<Value = String> {
    // `#` is legal inside these tests (we construct keys directly); real
    // ProductLabels forbid it, which makes these keys the worst case.
    "[a-z]{0,3}"
        .prop_flat_map(|s| ("[a-z]{0,3}", Just(s)))
        .prop_map(|(a, b)| format!("{b}#x#{a}"))
}

fn uuid_from(seed: [u8; 16]) -> Uuid {
    Uuid::from_bytes(seed)
}

proptest! {
    /// For event-level products (40-byte container), all three candidate
    /// lengths contain a separator in their suffix, yet the recovered
    /// parent is exactly the event key — under both placements and any
    /// old-topology size.
    #[test]
    fn recovers_event_parent_despite_ambiguity(
        seed in any::<[u8; 16]>(),
        run in 0u64..1000,
        subrun in 0u64..1000,
        event in 0u64..1000,
        label in salted_label(),
        n_old in 1usize..9,
        ring in any::<bool>(),
    ) {
        let uuid = uuid_from(seed);
        let container = keys::event_key(&uuid, run, subrun, event);
        prop_assert_eq!(container.len(), 40);
        let key = ambiguous_product_key(&container, &label, "Vec<Hit>");
        let modulo = ModuloPlacement;
        let ringp = RingPlacement::new(64);
        let placement: &dyn Placement = if ring { &ringp } else { &modulo };
        let current_db = placement.place(&container, n_old);
        let parent = product_parent(&key, current_db, n_old, placement)
            .expect("parent must be recoverable");
        prop_assert_eq!(parent, container.as_slice());
    }

    /// For run-level products (24-byte container) the longer candidates
    /// (32/40) are *wrong* — they would swallow part of the label — and
    /// they only survive the longest-first order if placement coincides.
    /// The recovered parent must still place the key onto its current
    /// database, so a rescale moves it with its siblings, never onto a
    /// third database.
    #[test]
    fn run_parent_keeps_placement_consistent(
        seed in any::<[u8; 16]>(),
        run in 0u64..1000,
        label in salted_label(),
        n_old in 1usize..9,
    ) {
        let uuid = uuid_from(seed);
        let container = keys::run_key(&uuid, run);
        prop_assert_eq!(container.len(), 24);
        // The type name is salted so even the 40-byte candidate (inside the
        // type's tail for a 24-byte container) sees a separator after it.
        let key = ambiguous_product_key(&container, &label, "Vec<Track>#t#x#");
        let placement = ModuloPlacement;
        let current_db = placement.place(&container, n_old);
        let parent = product_parent(&key, current_db, n_old, &placement)
            .expect("parent must be recoverable");
        // A longer candidate may win the tie only when it places the same
        // way — so the *placement* (what rescale acts on) is always right.
        prop_assert!(
            placement.place(parent, n_old) == current_db,
            "recovered parent places away from the key's home"
        );
    }

    /// Re-homing across epochs: place with n1 databases, rescale to n2,
    /// then to n3. At each step the parent recovered against the *current*
    /// database count must land the product on the same database as its
    /// true container — products and containers never separate, no matter
    /// how many times the topology changes.
    #[test]
    fn rehoming_across_epochs_tracks_the_container(
        seed in any::<[u8; 16]>(),
        run in 0u64..1000,
        subrun in 0u64..1000,
        event in 0u64..1000,
        label in salted_label(),
        sizes in proptest::collection::vec(1usize..9, 2..5),
        ring in any::<bool>(),
    ) {
        let uuid = uuid_from(seed);
        let container = keys::event_key(&uuid, run, subrun, event);
        let key = ambiguous_product_key(&container, &label, "Vec<Shower>");
        let modulo = ModuloPlacement;
        let ringp = RingPlacement::new(64);
        let placement: &dyn Placement = if ring { &ringp } else { &modulo };
        // Epoch 0: initial placement by the true container.
        let mut current_db = placement.place(&container, sizes[0]);
        let mut n_current = sizes[0];
        // Each subsequent epoch rescales from n_current to n_next: the
        // migrator recovers the parent under the *old* count and places it
        // under the *new* count.
        for &n_next in &sizes[1..] {
            let parent = product_parent(&key, current_db, n_current, placement)
                .expect("parent must be recoverable at every epoch");
            let product_home = placement.place(parent, n_next);
            let container_home = placement.place(&container, n_next);
            prop_assert!(
                product_home == container_home,
                "epoch {n_current}->{n_next}: product separated from its container"
            );
            current_db = product_home;
            n_current = n_next;
        }
    }
}
