//! Read-from-replica consistency pin: a routed read must never observe a
//! value whose acknowledgement the chain head still withholds.
//!
//! The chain protocol acks a mutation only after forwarding it down the
//! chain, and routed reads are served tail-first — the tail is the commit
//! point. The dangerous window is *during* forwarding: the head has applied
//! the value locally but not yet forwarded it, so a read answered by the
//! head would return data whose ack could still be lost with the head. The
//! service's `set_forward_delay` test hook holds a mutation in exactly that
//! window so the pin can be checked deterministically.

use bedrock::DbCounts;
use hepnos::testing::local_deployment_replicated;
use yokan::YokanClient;

fn counts() -> DbCounts {
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 2,
        products: 2,
    }
}

#[test]
fn read_never_observes_unacked_write() {
    let dep = local_deployment_replicated(2, counts(), 2);
    let chains = bedrock::deployment_chains(dep.descriptors());
    let chain = chains
        .iter()
        .find(|c| c.len() == 2 && c[0].db.starts_with("events"))
        .expect("an events chain with two replicas")
        .clone();
    let (head, tail) = (&chain[0], &chain[1]);

    // Hold every forward on the head's node for 300 ms: mutations sit
    // applied-but-unacked at the head for that long.
    let head_node = (0..dep.num_servers())
        .find(|&n| dep.server(n).is_some_and(|s| s.address() == head.addr))
        .expect("head's node is live");
    let delay = std::time::Duration::from_millis(300);
    dep.server(head_node)
        .unwrap()
        .yokan()
        .set_forward_delay(delay);

    // A routed client (reads tail-first, mutations to the head) and a raw
    // one (reads physical replicas directly).
    let routed = YokanClient::new(dep.fabric().endpoint("routed"));
    routed.install_replica_routes(std::slice::from_ref(&chain));
    let raw = YokanClient::new(dep.fabric().endpoint("raw"));

    // Issue the put asynchronously; it will not be acknowledged until the
    // forward delay elapses and the tail applies the value.
    let t0 = std::time::Instant::now();
    let pending = routed
        .put_multi_async(head, &[(b"k".to_vec(), b"unacked".to_vec())])
        .expect("issue async put");
    std::thread::sleep(delay / 3);

    // Mid-forward: a routed read must not see the value (the ack is still
    // withheld at the head), and the tail — the commit point the routed
    // read is served from — must not hold it yet. The head is NOT read
    // here: its provider stream is occupied by the delayed mutation, so a
    // head read would block past the window and turn the pin vacuous.
    assert_eq!(
        routed.get(head, b"k").unwrap(),
        None,
        "routed read observed a value the head has not acked"
    );
    assert_eq!(raw.get(tail, b"k").unwrap(), None, "tail ahead of the ack");
    assert!(
        t0.elapsed() < delay,
        "window reads outlasted the forward delay; pin checked nothing"
    );

    // This head read queues behind the held mutation, so it returning the
    // value proves the head applied it before acking (apply-then-forward).
    assert_eq!(raw.get(head, b"k").unwrap(), Some(b"unacked".to_vec()));

    // Once the put acks, the value is on every replica and reads see it.
    pending.wait().expect("replicated put failed");
    assert_eq!(routed.get(head, b"k").unwrap(), Some(b"unacked".to_vec()));
    assert_eq!(raw.get(tail, b"k").unwrap(), Some(b"unacked".to_vec()));

    dep.server(head_node)
        .unwrap()
        .yokan()
        .set_forward_delay(std::time::Duration::ZERO);
    dep.shutdown();
}

/// Sanity companion: with no forward delay, a burst of routed writes is
/// immediately readable through the routed client (read-your-acked-writes),
/// and both replicas converge byte-identically.
#[test]
fn acked_writes_are_readable_and_replicated() {
    let dep = local_deployment_replicated(2, counts(), 2);
    let chains = bedrock::deployment_chains(dep.descriptors());
    let chain = chains
        .iter()
        .find(|c| c.len() == 2 && c[0].db.starts_with("products"))
        .expect("a products chain with two replicas")
        .clone();
    let routed = YokanClient::new(dep.fabric().endpoint("routed2"));
    routed.install_replica_routes(std::slice::from_ref(&chain));
    let head = &chain[0];
    for i in 0u32..64 {
        let k = format!("key-{i:03}").into_bytes();
        routed.put(head, &k, &i.to_be_bytes()).unwrap();
        assert_eq!(
            routed.get(head, &k).unwrap(),
            Some(i.to_be_bytes().to_vec()),
            "acked write {i} not readable through the chain"
        );
    }
    let raw = YokanClient::new(dep.fabric().endpoint("raw2"));
    let a = raw.list_keyvals(&chain[0], &[], &[], 0).unwrap();
    let b = raw.list_keyvals(&chain[1], &[], &[], 0).unwrap();
    assert_eq!(a.len(), 64);
    assert_eq!(a, b, "replicas diverged");
    dep.shutdown();
}
