//! Tests for batched writes and the ParallelEventProcessor.

use bedrock::DbCounts;
use hepnos::testing::local_deployment;
use hepnos::{AsyncWriteBatch, ParallelEventProcessor, PepOptions, ProductLabel, WriteBatch};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct Hit {
    channel: u32,
    adc: u16,
}

fn counts() -> DbCounts {
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 2,
        events: 4,
        products: 4,
    }
}

#[test]
fn write_batch_groups_by_database_and_flushes_on_drop() {
    let dep = local_deployment(1, counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("batched").unwrap();
    let run = ds.create_run(1).unwrap();
    let sr = run.create_subrun(0).unwrap();
    let uuid = ds.uuid().unwrap();
    let label = ProductLabel::new("hits").unwrap();
    {
        let mut batch = WriteBatch::new(&store);
        for e in 0..100u64 {
            let ev = batch.create_event(&sr, &uuid, e).unwrap();
            batch
                .store(
                    &ev,
                    &label,
                    &vec![Hit {
                        channel: e as u32,
                        adc: 7,
                    }],
                )
                .unwrap();
        }
        assert!(batch.queued() > 0);
        // Dropped here: must flush everything.
    }
    let evs = sr.events().unwrap();
    assert_eq!(evs.len(), 100);
    for ev in &evs {
        let hits: Vec<Hit> = ev.load(&label).unwrap().unwrap();
        assert_eq!(hits[0].channel, ev.number() as u32);
    }
    dep.shutdown();
}

#[test]
fn write_batch_uses_fewer_rpcs_than_direct_writes() {
    let dep = local_deployment(1, counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("rpccount").unwrap();
    let sr = ds.create_run(1).unwrap().create_subrun(0).unwrap();
    let uuid = ds.uuid().unwrap();
    let mut batch = WriteBatch::new(&store);
    for e in 0..1000u64 {
        batch.create_event(&sr, &uuid, e).unwrap();
    }
    batch.flush().unwrap();
    // 1000 creations over 4 event dbs; but one subrun maps to ONE db, so a
    // single put_multi must have carried all 1000 keys.
    assert_eq!(batch.flush_rpcs(), 1);
    assert_eq!(batch.flushed_pairs(), 1000);
    dep.shutdown();
}

#[test]
fn write_batch_eager_flush_at_limit() {
    let dep = local_deployment(1, counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("eager").unwrap();
    let sr = ds.create_run(1).unwrap().create_subrun(0).unwrap();
    let uuid = ds.uuid().unwrap();
    let mut batch = WriteBatch::new(&store).with_per_db_limit(64);
    for e in 0..256u64 {
        batch.create_event(&sr, &uuid, e).unwrap();
    }
    assert_eq!(batch.flush_rpcs(), 4); // 256 / 64
    assert_eq!(batch.queued(), 0);
    dep.shutdown();
}

#[test]
fn async_write_batch_overlaps_and_completes() {
    let dep = local_deployment(1, counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("async").unwrap();
    let sr = ds.create_run(1).unwrap().create_subrun(0).unwrap();
    let uuid = ds.uuid().unwrap();
    let rt = argos::Runtime::simple(2);
    let label = ProductLabel::new("hits").unwrap();
    {
        let mut batch =
            AsyncWriteBatch::new(&store, rt.default_pool().unwrap()).with_per_db_limit(32);
        for e in 0..200u64 {
            let ev = batch.create_event(&sr, &uuid, e).unwrap();
            batch
                .store(
                    &ev,
                    &label,
                    &vec![Hit {
                        channel: 1,
                        adc: e as u16,
                    }],
                )
                .unwrap();
        }
        batch.wait().unwrap();
        assert_eq!(batch.flushed_pairs(), 400);
    }
    assert_eq!(sr.events().unwrap().len(), 200);
    rt.shutdown();
    dep.shutdown();
}

#[test]
fn pep_processes_every_event_exactly_once() {
    let dep = local_deployment(2, counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("pep").unwrap();
    let mut expected = HashSet::new();
    for r in 0..3u64 {
        let run = ds.create_run(r).unwrap();
        for s in 0..5u64 {
            let sr = run.create_subrun(s).unwrap();
            let mut batch = WriteBatch::new(&store);
            for e in 0..40u64 {
                batch.create_event(&sr, &ds.uuid().unwrap(), e).unwrap();
                expected.insert((r, s, e));
            }
        }
    }
    let seen = Arc::new(Mutex::new(Vec::new()));
    let seen2 = Arc::clone(&seen);
    let pep = ParallelEventProcessor::new(
        store.clone(),
        PepOptions {
            load_batch_size: 64,
            dispatch_batch_size: 8,
            num_workers: 4,
            ..Default::default()
        },
    );
    let stats = pep
        .process(&ds, move |_wid, pe| {
            seen2.lock().push(pe.event().coordinates());
        })
        .unwrap();
    let seen = seen.lock();
    assert_eq!(seen.len(), expected.len());
    let seen_set: HashSet<_> = seen.iter().cloned().collect();
    assert_eq!(seen_set.len(), seen.len(), "an event was processed twice");
    assert_eq!(seen_set, expected.iter().cloned().collect::<HashSet<_>>());
    assert_eq!(stats.total_events, 600);
    assert_eq!(stats.workers.len(), 4);
    dep.shutdown();
}

#[test]
fn pep_load_balances_across_workers() {
    let dep = local_deployment(1, counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("balance").unwrap();
    let run = ds.create_run(1).unwrap();
    for s in 0..8u64 {
        let sr = run.create_subrun(s).unwrap();
        let mut batch = WriteBatch::new(&store);
        for e in 0..250u64 {
            batch.create_event(&sr, &ds.uuid().unwrap(), e).unwrap();
        }
    }
    let pep = ParallelEventProcessor::new(
        store.clone(),
        PepOptions {
            load_batch_size: 128,
            dispatch_batch_size: 16,
            num_workers: 4,
            ..Default::default()
        },
    );
    let stats = pep
        .process(&ds, |_wid, _pe| {
            // A realistic per-event cost (~20us) so that queue draining is
            // not over before the last worker thread even starts.
            let t = std::time::Instant::now();
            while t.elapsed() < std::time::Duration::from_micros(20) {
                std::hint::black_box(0u64);
            }
        })
        .unwrap();
    assert_eq!(stats.total_events, 2000);
    // With 2000 events in batches of 16 over 4 workers, no worker should
    // hog the queue.
    assert!(
        stats.load_imbalance() < 1.5,
        "imbalance {} too high; per-worker: {:?}",
        stats.load_imbalance(),
        stats
            .workers
            .iter()
            .map(|w| w.events_processed)
            .collect::<Vec<_>>()
    );
    dep.shutdown();
}

#[test]
fn pep_prefetches_products() {
    let dep = local_deployment(1, counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("prefetch").unwrap();
    let sr = ds.create_run(1).unwrap().create_subrun(0).unwrap();
    let label = ProductLabel::new("hits").unwrap();
    let mut batch = WriteBatch::new(&store);
    for e in 0..100u64 {
        let ev = batch.create_event(&sr, &ds.uuid().unwrap(), e).unwrap();
        batch
            .store(
                &ev,
                &label,
                &vec![Hit {
                    channel: e as u32,
                    adc: 1,
                }],
            )
            .unwrap();
    }
    batch.flush().unwrap();
    let type_name = "Vec<Hit>";
    let pep = ParallelEventProcessor::new(
        store.clone(),
        PepOptions {
            prefetch: vec![(label.clone(), type_name.to_string())],
            num_workers: 2,
            ..Default::default()
        },
    );
    let loaded = Arc::new(Mutex::new(0usize));
    let loaded2 = Arc::clone(&loaded);
    let label2 = label.clone();
    let stats = pep
        .process(&ds, move |_wid, pe| {
            let hits: Vec<Hit> = pe.load(&label2).unwrap().unwrap();
            assert_eq!(hits[0].channel, pe.event().number() as u32);
            *loaded2.lock() += 1;
        })
        .unwrap();
    assert_eq!(*loaded.lock(), 100);
    assert_eq!(stats.total_events, 100);
    // Readers did the product fetching (prefetch), so reader load_time > 0.
    assert!(stats.readers.iter().any(|r| r.events_loaded > 0));
    dep.shutdown();
}

#[test]
fn pep_on_empty_dataset_is_a_noop() {
    let dep = local_deployment(1, counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("empty").unwrap();
    let pep = ParallelEventProcessor::new(store.clone(), PepOptions::default());
    let stats = pep
        .process(&ds, |_w, _e| panic!("no events expected"))
        .unwrap();
    assert_eq!(stats.total_events, 0);
    dep.shutdown();
}

#[test]
fn pep_respects_reader_count() {
    let dep = local_deployment(1, counts());
    let store = dep.datastore();
    let ds = store.root().create_dataset("readers").unwrap();
    let run = ds.create_run(1).unwrap();
    for s in 0..4u64 {
        let sr = run.create_subrun(s).unwrap();
        for e in 0..10u64 {
            sr.create_event(e).unwrap();
        }
    }
    let pep = ParallelEventProcessor::new(
        store.clone(),
        PepOptions {
            num_readers: 2,
            num_workers: 2,
            ..Default::default()
        },
    );
    let stats = pep.process(&ds, |_w, _e| {}).unwrap();
    assert_eq!(stats.readers.len(), 2);
    assert_eq!(stats.total_events, 40);
    dep.shutdown();
}
