//! Tests for storage rescaling (the Pufferscale-style extension): after
//! growing or shrinking the event/product database groups, every key must
//! be reachable at its new home, and ring placement must move only a small
//! fraction of keys.

use bedrock::{ConnectionDescriptor, DbCounts};
use hepnos::placement::{ModuloPlacement, RingPlacement};
use hepnos::rescale::{rescale_events, rescale_products};
use hepnos::testing::local_deployment;
use hepnos::{DataStore, ProductLabel, WriteBatch};
use yokan::{DbTarget, YokanClient};

/// Restrict descriptors to the databases a "smaller" deployment would see:
/// only events_/products_ indices below the given bounds.
fn shrink_descriptors(
    full: &[ConnectionDescriptor],
    max_events: usize,
    max_products: usize,
) -> Vec<ConnectionDescriptor> {
    full.iter()
        .map(|d| {
            let mut d = d.clone();
            for p in &mut d.providers {
                p.databases.retain(|name| {
                    let keep = |prefix: &str, max: usize| {
                        name.strip_prefix(prefix)
                            .and_then(|s| s.strip_prefix('_'))
                            .and_then(|s| s.parse::<usize>().ok())
                            .map(|i| i < max)
                    };
                    if name.starts_with("events") {
                        keep("events", max_events).unwrap_or(false)
                    } else if name.starts_with("products") {
                        keep("products", max_products).unwrap_or(false)
                    } else {
                        true
                    }
                });
            }
            d.providers.retain(|p| !p.databases.is_empty());
            d
        })
        .collect()
}

fn event_targets(descriptors: &[ConnectionDescriptor], prefix: &str) -> Vec<DbTarget> {
    let mut v: Vec<DbTarget> = descriptors
        .iter()
        .flat_map(|d| {
            d.providers.iter().flat_map(|p| {
                p.databases
                    .iter()
                    .filter(|n| n.starts_with(prefix))
                    .map(|n| DbTarget::new(d.address.clone(), p.provider_id, n))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    v.sort();
    v
}

#[test]
fn growth_keeps_every_event_and_product_reachable() {
    // Deploy with 4 event + 4 product dbs, but initially *use* only 2+2.
    let dep = local_deployment(
        1,
        DbCounts {
            datasets: 1,
            runs: 1,
            subruns: 1,
            events: 4,
            products: 4,
        },
    );
    let full = dep.descriptors().to_vec();
    let small = shrink_descriptors(&full, 2, 2);
    let store_small = DataStore::connect(dep.fabric().endpoint("small-client"), &small).unwrap();
    assert_eq!(store_small.num_event_databases(), 2);

    // Populate through the small topology.
    let ds = store_small.root().create_dataset("rescale").unwrap();
    let uuid = ds.uuid().unwrap();
    let label = ProductLabel::new("payload").unwrap();
    let run = ds.create_run(1).unwrap();
    for s in 0..10u64 {
        let sr = run.create_subrun(s).unwrap();
        let mut batch = WriteBatch::new(&store_small);
        for e in 0..30u64 {
            let ev = batch.create_event(&sr, &uuid, e).unwrap();
            batch
                .store(&ev, &label, &vec![(s * 100 + e) as u32; 4])
                .unwrap();
        }
        batch.flush().unwrap();
    }

    // Grow to the full 4+4 topology and migrate.
    let client = YokanClient::new(dep.fabric().endpoint("rescale-client"));
    let placement = ModuloPlacement;
    let ev_stats = rescale_events(
        &client,
        &event_targets(&small, "events"),
        &event_targets(&full, "events"),
        &placement,
    )
    .unwrap();
    let pr_stats = rescale_products(
        &client,
        &event_targets(&small, "products"),
        &event_targets(&full, "products"),
        &placement,
    )
    .unwrap();
    assert_eq!(ev_stats.keys_scanned, 300);
    assert!(
        ev_stats.keys_moved > 0,
        "growth moved nothing: {ev_stats:?}"
    );
    assert_eq!(pr_stats.keys_scanned, 300);
    assert!(pr_stats.keys_moved > 0);

    // A client of the NEW topology must see everything in the right place.
    let store_full = DataStore::connect(dep.fabric().endpoint("full-client"), &full).unwrap();
    let ds2 = store_full.dataset("rescale").unwrap();
    let run2 = ds2.run(1).unwrap();
    let mut total = 0u64;
    for sr in run2.subruns().unwrap() {
        let events = sr.events().unwrap();
        assert_eq!(events.len(), 30, "subrun {} lost events", sr.number());
        for ev in events {
            let v: Vec<u32> = ev.load(&label).unwrap().expect("product survived");
            assert_eq!(v, vec![(sr.number() * 100 + ev.number()) as u32; 4]);
            total += 1;
        }
    }
    assert_eq!(total, 300);
    dep.shutdown();
}

#[test]
fn shrink_consolidates_back() {
    let dep = local_deployment(
        1,
        DbCounts {
            datasets: 1,
            runs: 1,
            subruns: 1,
            events: 3,
            products: 1,
        },
    );
    let full = dep.descriptors().to_vec();
    let small = shrink_descriptors(&full, 1, 1);
    let store_full = dep.datastore();
    let ds = store_full.root().create_dataset("shrink").unwrap();
    let run = ds.create_run(1).unwrap();
    for s in 0..9u64 {
        run.create_subrun(s).unwrap().create_event(0).unwrap();
    }
    let client = YokanClient::new(dep.fabric().endpoint("shrink-client"));
    let stats = rescale_events(
        &client,
        &event_targets(&full, "events"),
        &event_targets(&small, "events"),
        &ModuloPlacement,
    )
    .unwrap();
    assert_eq!(stats.keys_scanned, 9);
    // Everything now lives in the single surviving db.
    let store_small = DataStore::connect(dep.fabric().endpoint("small-client"), &small).unwrap();
    let run2 = store_small.dataset("shrink").unwrap().run(1).unwrap();
    let mut n = 0;
    for sr in run2.subruns().unwrap() {
        n += sr.events().unwrap().len();
    }
    assert_eq!(n, 9);
    dep.shutdown();
}

#[test]
fn ring_placement_moves_fewer_keys_than_modulo() {
    // The Pufferscale motivation: under consistent hashing, growth by one
    // database moves ~1/n of the keys; modulo reshuffles most of them.
    for (name, fraction_limit, use_ring) in [("ring", 0.55, true), ("modulo", 1.0, false)] {
        let dep = local_deployment(
            1,
            DbCounts {
                datasets: 1,
                runs: 1,
                subruns: 1,
                events: 8,
                products: 1,
            },
        );
        let full = dep.descriptors().to_vec();
        let small = shrink_descriptors(&full, 7, 1);
        let ring = RingPlacement::new(128);
        let modulo = ModuloPlacement;
        let placement: &dyn hepnos::placement::Placement = if use_ring { &ring } else { &modulo };
        let store_small = DataStore::connect_with_placement(
            dep.fabric().endpoint("client-a"),
            &small,
            if use_ring {
                Box::new(RingPlacement::new(128))
            } else {
                Box::new(ModuloPlacement)
            },
        )
        .unwrap();
        let ds = store_small.root().create_dataset("frac").unwrap();
        let run = ds.create_run(1).unwrap();
        for s in 0..200u64 {
            run.create_subrun(s).unwrap().create_event(0).unwrap();
        }
        let client = YokanClient::new(dep.fabric().endpoint("client-b"));
        let stats = rescale_events(
            &client,
            &event_targets(&small, "events"),
            &event_targets(&full, "events"),
            placement,
        )
        .unwrap();
        assert_eq!(stats.keys_scanned, 200);
        let frac = stats.moved_fraction();
        assert!(
            frac <= fraction_limit,
            "{name} moved {frac:.2} of keys (limit {fraction_limit})"
        );
        if use_ring {
            assert!(
                frac < 0.45,
                "ring should move ~1/8 of keys, moved {frac:.2}"
            );
        } else {
            assert!(
                frac > 0.5,
                "modulo should reshuffle most keys, moved {frac:.2}"
            );
        }
        dep.shutdown();
    }
}

/// Replica-chain rescaling: growing a *replicated* event group must move
/// every copy of a re-homed key — each new chain ends byte-identical
/// across its members (replication factor preserved) and no stale copy
/// survives on the old chains.
#[test]
fn replicated_rescale_preserves_replication_factor() {
    use hepnos::rescale::{rescale_group_replicated, PlacementInput};
    use hepnos::testing::local_deployment_replicated;

    let dep = local_deployment_replicated(
        2,
        DbCounts {
            datasets: 1,
            runs: 1,
            subruns: 1,
            events: 4,
            products: 1,
        },
        2,
    );
    let full = dep.descriptors().to_vec();
    let small = shrink_descriptors(&full, 2, 1);
    let event_chains = |descriptors: &[ConnectionDescriptor]| -> Vec<Vec<DbTarget>> {
        bedrock::deployment_chains(descriptors)
            .into_iter()
            .filter(|c| c[0].db.starts_with("events"))
            .collect()
    };
    let (old_chains, new_chains) = (event_chains(&small), event_chains(&full));
    assert_eq!(old_chains.len(), 2);
    assert_eq!(new_chains.len(), 4);
    assert!(new_chains.iter().all(|c| c.len() == 2));

    // Populate through the small replicated topology: every write lands on
    // both members of its chain via chain forwarding.
    let store_small = DataStore::connect(dep.fabric().endpoint("repl-small"), &small).unwrap();
    assert_eq!(store_small.replication_factor(), 2);
    let ds = store_small.root().create_dataset("repl-rescale").unwrap();
    let run = ds.create_run(1).unwrap();
    for s in 0..12u64 {
        let sr = run.create_subrun(s).unwrap();
        for e in 0..25u64 {
            sr.create_event(e).unwrap();
        }
    }

    // Rescale with a raw (un-routed) client, as the API requires.
    let client = YokanClient::new(dep.fabric().endpoint("repl-rescale-client"));
    let stats = rescale_group_replicated(
        &client,
        &old_chains,
        &new_chains,
        &ModuloPlacement,
        PlacementInput::Prefix(32),
    )
    .unwrap();
    assert_eq!(stats.keys_scanned, 300);
    assert!(stats.keys_moved > 0, "growth moved nothing: {stats:?}");
    // bytes_moved counts bytes per chain member actually written: with
    // factor-2 destination chains every batch lands twice, so the total is
    // even and at least twice the payload of any single moved key.
    assert!(stats.bytes_moved > 0);
    assert_eq!(
        stats.bytes_moved % 2,
        0,
        "2-replica chains must count every byte twice: {stats:?}"
    );

    // Replication factor preserved: each chain's members are byte-identical
    // (a move that wrote one replica, or an erase that missed one, shows up
    // here), and chain totals sum to the full population (a stale copy
    // surviving on *both* members of an old chain would inflate this).
    let mut total = 0usize;
    let mut populated = 0usize;
    for chain in &new_chains {
        let a = client.list_keyvals(&chain[0], &[], &[], 0).unwrap();
        let b = client.list_keyvals(&chain[1], &[], &[], 0).unwrap();
        assert_eq!(a, b, "replicas of {} diverged after rescale", chain[0].db);
        total += a.len();
        populated += usize::from(!a.is_empty());
    }
    assert_eq!(total, 300, "stale or missing copies after rescale");
    assert_eq!(populated, 4, "rescale left a grown chain empty");

    // A client of the grown replicated topology reads everything back.
    let store_full = DataStore::connect(dep.fabric().endpoint("repl-full"), &full).unwrap();
    let run2 = store_full.dataset("repl-rescale").unwrap().run(1).unwrap();
    let mut n = 0;
    for sr in run2.subruns().unwrap() {
        n += sr.events().unwrap().len();
    }
    assert_eq!(n, 300);
    dep.shutdown();
}

/// A client with replica routes installed must be rejected: it would
/// forward every rescale write down the chain a second time and scan
/// through tails instead of the addressed member.
#[test]
fn routed_client_is_rejected() {
    use hepnos::rescale::{rescale_group_replicated, PlacementInput};
    use hepnos::testing::local_deployment_replicated;

    let dep = local_deployment_replicated(
        2,
        DbCounts {
            datasets: 1,
            runs: 1,
            subruns: 1,
            events: 4,
            products: 1,
        },
        2,
    );
    let full = dep.descriptors().to_vec();
    let small = shrink_descriptors(&full, 2, 1);
    let event_chains = |descriptors: &[ConnectionDescriptor]| -> Vec<Vec<DbTarget>> {
        bedrock::deployment_chains(descriptors)
            .into_iter()
            .filter(|c| c[0].db.starts_with("events"))
            .collect()
    };
    let (old_chains, new_chains) = (event_chains(&small), event_chains(&full));

    let routed = YokanClient::new(dep.fabric().endpoint("routed-client"));
    routed.install_replica_routes(&bedrock::deployment_chains(&full));
    let err = rescale_group_replicated(
        &routed,
        &old_chains,
        &new_chains,
        &ModuloPlacement,
        PlacementInput::Prefix(32),
    )
    .unwrap_err();
    assert!(
        matches!(err, hepnos::HepnosError::Topology(_)),
        "routed client must fail with Topology, got {err:?}"
    );
    // The live Migrator enforces the same contract at construction.
    let routed2 = {
        let c = YokanClient::new(dep.fabric().endpoint("routed-client-2"));
        c.install_replica_routes(&bedrock::deployment_chains(&full));
        c
    };
    let err = hepnos::rescale::Migrator::new(
        routed2,
        old_chains,
        new_chains,
        std::sync::Arc::new(ModuloPlacement),
        PlacementInput::Prefix(32),
        Default::default(),
    )
    .err()
    .expect("Migrator must reject a routed client");
    assert!(matches!(err, hepnos::HepnosError::Topology(_)));
    dep.shutdown();
}
