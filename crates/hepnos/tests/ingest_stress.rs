//! Ingestion pipeline stress tests (paper §IV-C: batching + async writes).
//!
//! Exercises the bounded [`AsyncWriteBatch`] window end to end over the
//! **tcp** transport — many concurrent writers, real sockets, a killed
//! service — plus the backpressure path under an artificially slowed
//! (latency-modeled) local deployment.

use bedrock::{BackendKind, DbCounts, ServiceConfig};
use hepnos::testing::local_deployment_with;
use hepnos::{AsyncWriteBatch, DataStore, ProductLabel};
use mercurio::tcp::TcpEndpoint;
use mercurio::NetworkModel;

fn counts() -> DbCounts {
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 2,
        products: 2,
    }
}

const WINDOW: usize = 4;
const EVENTS_PER_WRITER: u64 = 150;
const WRITERS: u64 = 8;

/// (a) every queued pair is readable afterwards and (b) `inflight_hwm`
/// never exceeds the configured window, with 8 concurrent writers pushing
/// through real sockets.
#[test]
fn eight_tcp_writers_bounded_window_no_loss() {
    let server_ep = TcpEndpoint::bind(0).expect("bind server");
    let config = ServiceConfig::hepnos_topology(counts(), BackendKind::Map, None);
    let server = bedrock::launch(server_ep, &config).expect("server bootstrap");
    let descriptor = server.descriptor().clone();

    // Containers are created synchronously up front; the concurrent part
    // under test is the product ingest.
    let setup_ep = TcpEndpoint::bind(0).expect("bind setup client");
    let setup = DataStore::connect(setup_ep, std::slice::from_ref(&descriptor)).expect("connect");
    let ds = setup.root().create_dataset("stress").unwrap();
    for w in 0..WRITERS {
        ds.create_run(w).unwrap().create_subrun(0).unwrap();
    }

    let label = ProductLabel::new("payload").unwrap();
    let mut threads = Vec::new();
    for w in 0..WRITERS {
        let descriptor = descriptor.clone();
        let label = label.clone();
        threads.push(std::thread::spawn(move || {
            let ep = TcpEndpoint::bind(0).expect("bind writer");
            let store = DataStore::connect(ep, &[descriptor]).expect("connect writer");
            let ds = store.dataset("stress").unwrap();
            let sr = ds.run(w).unwrap().subrun(0).unwrap();
            let uuid = ds.uuid().unwrap();
            let rt = argos::Runtime::simple(2);
            let mut batch = AsyncWriteBatch::new(&store, rt.default_pool().unwrap())
                .with_per_db_limit(16)
                .with_inflight_window(WINDOW);
            for e in 0..EVENTS_PER_WRITER {
                let ev = batch.create_event(&sr, &uuid, e).unwrap();
                batch.store(&ev, &label, &((w << 32) | e)).unwrap();
            }
            batch.wait().unwrap();
            let stats = batch.stats();
            drop(batch);
            rt.shutdown();
            stats
        }));
    }
    for t in threads {
        let stats = t.join().expect("writer thread panicked");
        assert!(
            stats.inflight_hwm <= WINDOW,
            "inflight_hwm {} exceeds window {WINDOW}",
            stats.inflight_hwm
        );
        // After a clean wait() every shipped pair must be acknowledged.
        assert_eq!(stats.acked_pairs, stats.shipped_pairs);
        assert_eq!(stats.acked_rpcs, stats.flush_rpcs);
        assert_eq!(stats.shipped_pairs, 2 * EVENTS_PER_WRITER);
    }

    // Every queued pair is readable afterwards.
    for w in 0..WRITERS {
        let sr = ds.run(w).unwrap().subrun(0).unwrap();
        let events = sr.events().unwrap();
        assert_eq!(events.len(), EVENTS_PER_WRITER as usize, "writer {w}");
        for ev in events {
            let (_, _, e) = ev.coordinates();
            let got: u64 = ev.load(&label).unwrap().expect("product missing");
            assert_eq!(got, (w << 32) | e);
        }
    }
    server.shutdown();
}

/// (c) a killed service yields an error from `wait()` — not a hang, not
/// silent loss.
#[test]
fn killed_service_surfaces_error_from_wait() {
    let server_ep = TcpEndpoint::bind(0).expect("bind server");
    let config = ServiceConfig::hepnos_topology(counts(), BackendKind::Map, None);
    let server = bedrock::launch(server_ep, &config).expect("server bootstrap");
    let descriptor = server.descriptor().clone();

    let ep = TcpEndpoint::bind(0).expect("bind client");
    let store = DataStore::connect(ep, &[descriptor]).expect("connect");
    let ds = store.root().create_dataset("doomed").unwrap();
    let sr = ds.create_run(0).unwrap().create_subrun(0).unwrap();
    let uuid = ds.uuid().unwrap();

    let rt = argos::Runtime::simple(2);
    let label = ProductLabel::new("payload").unwrap();
    let mut batch = AsyncWriteBatch::new(&store, rt.default_pool().unwrap())
        .with_per_db_limit(8)
        .with_inflight_window(2);
    for e in 0..32u64 {
        let ev = batch.create_event(&sr, &uuid, e).unwrap();
        batch.store(&ev, &label, &e).unwrap();
    }
    // Kill the service with work still buffered; the remaining groups are
    // shipped by wait() into a dead socket.
    server.shutdown();
    std::thread::sleep(std::time::Duration::from_millis(100));
    for e in 32..48u64 {
        let ev = batch.create_event(&sr, &uuid, e).unwrap();
        batch.store(&ev, &label, &e).unwrap();
    }
    let err = batch.wait();
    assert!(err.is_err(), "wait() must report the dead service");
    let stats = batch.stats();
    assert!(
        stats.acked_pairs < stats.shipped_pairs,
        "acked {} must lag shipped {} after a failure",
        stats.acked_pairs,
        stats.shipped_pairs
    );
    // Drop after a consumed error must not panic (wait is idempotent).
    drop(batch);
    rt.shutdown();
}

/// Under an artificially slowed service the window fills and `ship()` must
/// stall (backpressure), while never exceeding the window.
#[test]
fn slow_service_causes_backpressure_stalls() {
    let dep = local_deployment_with(
        1,
        counts(),
        BackendKind::Map,
        None,
        NetworkModel {
            latency: std::time::Duration::from_millis(2),
            ..Default::default()
        },
    );
    let store = dep.datastore();
    let ds = store.root().create_dataset("slow").unwrap();
    let sr = ds.create_run(0).unwrap().create_subrun(0).unwrap();
    let uuid = ds.uuid().unwrap();

    let rt = argos::Runtime::simple(2);
    let label = ProductLabel::new("payload").unwrap();
    let mut batch = AsyncWriteBatch::new(&store, rt.default_pool().unwrap())
        .with_per_db_limit(8)
        .with_inflight_window(2);
    for e in 0..200u64 {
        let ev = batch.create_event(&sr, &uuid, e).unwrap();
        batch.store(&ev, &label, &e).unwrap();
    }
    batch.wait().unwrap();
    let stats = batch.stats();
    assert!(stats.inflight_hwm <= 2);
    assert!(
        stats.backpressure_stalls > 0,
        "a 4ms-RTT service with a window of 2 must stall the producer"
    );
    assert!(stats.stall_time > std::time::Duration::ZERO);
    assert_eq!(stats.acked_pairs, stats.shipped_pairs);
    drop(batch);
    rt.shutdown();
    assert_eq!(sr.events().unwrap().len(), 200);
    dep.shutdown();
}
