//! Overload-protection stress tests: many hot writers against a
//! deliberately tiny service must degrade gracefully — explicit `Busy`
//! pushback, bounded memory, AIMD window adaptation — never crash, hang,
//! or silently lose acknowledged writes.

use bedrock::{BackendKind, DbCounts, OverloadConfig};
use hepnos::testing::local_deployment_tuned;
use hepnos::{AsyncWriteBatch, BatchStats, HepnosError, ProductLabel};
use mercurio::NetworkModel;
use std::time::Duration;

/// The smallest topology: one provider per container kind, so all eight
/// writers hammer the same event and product providers.
fn tiny_counts() -> DbCounts {
    DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 1,
        products: 1,
    }
}

fn patient_retry(seed: u64) -> yokan::RetryPolicy {
    yokan::RetryPolicy {
        max_attempts: 200,
        rpc_timeout: Duration::from_secs(5),
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(8),
        jitter_seed: seed,
    }
}

const WRITERS: u64 = 8;
const EVENTS_PER_WRITER: u64 = 100;
const WINDOW: usize = 8;

/// Eight writers vs a one-pool service with a 2-deep admission queue:
/// every write is eventually acknowledged (shed means *retry*, not *lose*),
/// the service sheds visibly, and the client AIMD windows shrink under
/// pushback and re-grow on clean acks.
#[test]
fn eight_writers_vs_tiny_queue_no_lost_acks() {
    let dep = local_deployment_tuned(
        1,
        tiny_counts(),
        BackendKind::Map,
        None,
        NetworkModel::default(),
        |cfg| {
            cfg.overload = Some(OverloadConfig {
                max_queued_per_provider: 2,
                retry_after_ms: 1,
                ..Default::default()
            });
        },
    );
    let setup = dep.datastore();
    let ds = setup.root().create_dataset("overload").unwrap();
    for w in 0..WRITERS {
        ds.create_run(w).unwrap().create_subrun(0).unwrap();
    }

    let label = ProductLabel::new("payload").unwrap();
    let mut threads = Vec::new();
    for w in 0..WRITERS {
        let store = dep.connect_client_with_retry(&format!("writer{w}"), patient_retry(w));
        let label = label.clone();
        threads.push(std::thread::spawn(move || {
            let ds = store.dataset("overload").unwrap();
            let sr = ds.run(w).unwrap().subrun(0).unwrap();
            let uuid = ds.uuid().unwrap();
            let rt = argos::Runtime::simple(2);
            let mut batch = AsyncWriteBatch::new(&store, rt.default_pool().unwrap())
                .with_per_db_limit(8)
                .with_inflight_window(WINDOW);
            for e in 0..EVENTS_PER_WRITER {
                let ev = batch.create_event(&sr, &uuid, e).unwrap();
                batch.store(&ev, &label, &((w << 32) | e)).unwrap();
            }
            batch.wait().unwrap();
            let stats = batch.stats();
            drop(batch);
            rt.shutdown();
            stats
        }));
    }
    let mut total = BatchStats::default();
    for t in threads {
        let stats = t.join().expect("writer thread panicked");
        // Zero lost acks: a clean wait() means everything shipped was
        // acknowledged, despite the shedding along the way.
        assert_eq!(stats.acked_pairs, stats.shipped_pairs);
        assert_eq!(stats.acked_rpcs, stats.flush_rpcs);
        assert_eq!(stats.shipped_pairs, 2 * EVENTS_PER_WRITER);
        assert!(stats.window_final >= 1 && stats.window_final <= WINDOW);
        total.merge(&stats);
    }

    // The service visibly shed work instead of queueing without bound...
    let overload = dep.overload_stats();
    assert!(
        overload.shed() > 0,
        "a 2-deep queue must shed under 8 writers"
    );
    assert!(overload.admitted > 0, "goodput must stay nonzero");
    // ...the clients saw the pushback as Busy (not as transport errors)...
    assert!(total.retry.busy_pushbacks > 0);
    // ...and reacted by shrinking their AIMD windows, then re-growing them
    // on clean acknowledgements.
    assert!(total.window_shrinks > 0, "pushback must shrink some window");
    assert!(total.window_grows > 0, "clean acks must re-grow windows");
    assert!(total.window_min < WINDOW);

    // Every write that was acknowledged is readable.
    for w in 0..WRITERS {
        let sr = ds.run(w).unwrap().subrun(0).unwrap();
        let events = sr.events().unwrap();
        assert_eq!(events.len(), EVENTS_PER_WRITER as usize, "writer {w}");
        for ev in events {
            let (_, _, e) = ev.coordinates();
            let got: u64 = ev.load(&label).unwrap().expect("product missing");
            assert_eq!(got, (w << 32) | e);
        }
    }
    dep.shutdown();
}

/// Writers pushing more bytes than the hard watermark: the backend stays
/// under the bound (no OOM path), excess writes surface as `Busy` after the
/// retry budget, and what was accepted remains readable.
#[test]
fn hard_watermark_bounds_memory_under_hot_writers() {
    const HARD: usize = 16 << 10;
    let dep = local_deployment_tuned(
        1,
        tiny_counts(),
        BackendKind::Map,
        None,
        NetworkModel::default(),
        |cfg| {
            cfg.overload = Some(OverloadConfig {
                soft_watermark_bytes: HARD / 2,
                hard_watermark_bytes: HARD,
                max_stall_ms: 2,
                retry_after_ms: 1,
                ..Default::default()
            });
        },
    );
    let setup = dep.datastore();
    let ds = setup.root().create_dataset("wm").unwrap();
    let sr = ds.create_run(0).unwrap().create_subrun(0).unwrap();
    let label = ProductLabel::new("blob").unwrap();

    // A short retry budget: against a full backend, Busy must eventually
    // reach the caller instead of retrying forever.
    let store = dep.connect_client_with_retry(
        "hot",
        yokan::RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            ..Default::default()
        },
    );
    let ds2 = store.dataset("wm").unwrap();
    let sr2 = ds2.run(0).unwrap().subrun(0).unwrap();
    let payload = vec![0xabu8; 1024];
    let (mut stored, mut shed) = (0u64, 0u64);
    // 64 KiB of payload against a 16 KiB hard watermark.
    for e in 0..64u64 {
        let ev = sr2.create_event(e).unwrap();
        match ev.store(&label, &payload) {
            Ok(()) => stored += 1,
            Err(HepnosError::Storage(yokan::YokanError::Rpc(mercurio::RpcError::Busy {
                ..
            }))) => shed += 1,
            Err(other) => panic!("expected Busy or success, got {other:?}"),
        }
    }
    assert!(stored > 0, "goodput must be nonzero below the watermark");
    assert!(shed > 0, "64 KiB into a 16 KiB watermark must shed");

    // The accounted bytes never exceeded the hard watermark on any backend.
    let mut saw_sheds = 0;
    for (name, stats) in dep.backend_stats() {
        assert!(
            stats.mem_bytes <= HARD as u64,
            "{name}: resident {} exceeds hard watermark {HARD}",
            stats.mem_bytes
        );
        saw_sheds += stats.hard_sheds;
    }
    assert!(saw_sheds > 0, "the product backend must report hard sheds");

    // What was acknowledged is readable.
    let mut readable = 0;
    for ev in sr.events().unwrap() {
        if let Some(got) = ev.load::<Vec<u8>>(&label).unwrap() {
            assert_eq!(got, payload);
            readable += 1;
        }
    }
    assert!(readable >= 1);
    dep.shutdown();
}
