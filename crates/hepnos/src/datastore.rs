//! The client-facing object store API: [`DataStore`], [`DataSet`], [`Run`],
//! [`SubRun`], [`Event`] and typed products.
//!
//! The API shape follows the paper's Listing 1: navigating the hierarchy
//! looks like indexing C++ containers, products are stored/loaded by label
//! with the concrete type recorded in the key, and every container kind is
//! iterable in sorted order.

use crate::batch::WriteTarget;
use crate::binser;
use crate::error::HepnosError;
use crate::keys::{self, DatasetPath, EventNumber, RunNumber, SubRunNumber};
use crate::placement::{ModuloPlacement, Placement};
use crate::uuid::Uuid;
use bedrock::ConnectionDescriptor;
use mercurio::Endpoint;
use parking_lot::RwLock;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use yokan::{DbTarget, YokanClient};

/// Number of keys fetched per `list_keys` RPC while iterating containers.
const ITER_PAGE: usize = 1024;

/// A validated product label (must not contain `#`, the label/type
/// separator in product keys).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProductLabel(String);

impl ProductLabel {
    /// Create a label. Errors if the label contains `#` — the character is
    /// reserved by the key format (paper §II-C2). A bad label is a client
    /// mistake, so it surfaces as a client-side [`HepnosError`] rather than
    /// a panic on a service thread.
    pub fn new(label: impl Into<String>) -> Result<ProductLabel, HepnosError> {
        let label = label.into();
        if label.contains('#') {
            return Err(HepnosError::InvalidLabel(label));
        }
        Ok(ProductLabel(label))
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for ProductLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The five database groups of a HEPnOS deployment, each sorted identically
/// on every client so placement agrees everywhere.
///
/// When any server advertises replication, same-named databases on
/// different servers are *copies* of one logical database: each group then
/// holds one chain-head target per logical database (placement indexes
/// logical databases, not physical copies) and `chains` carries the full
/// replica sets the client routes through.
#[derive(Debug, Clone)]
pub(crate) struct Topology {
    pub(crate) dataset_dbs: Vec<DbTarget>,
    pub(crate) run_dbs: Vec<DbTarget>,
    pub(crate) subrun_dbs: Vec<DbTarget>,
    pub(crate) event_dbs: Vec<DbTarget>,
    pub(crate) product_dbs: Vec<DbTarget>,
    /// Replica chains (empty when the deployment is unreplicated).
    pub(crate) chains: Vec<Vec<DbTarget>>,
    /// Advertised replication factor (1 = single-copy).
    pub(crate) replication_factor: usize,
}

impl Topology {
    fn classify(descriptors: &[ConnectionDescriptor]) -> Result<Topology, HepnosError> {
        let mut topo = Topology {
            dataset_dbs: Vec::new(),
            run_dbs: Vec::new(),
            subrun_dbs: Vec::new(),
            event_dbs: Vec::new(),
            product_dbs: Vec::new(),
            chains: Vec::new(),
            replication_factor: 1,
        };
        topo.replication_factor = descriptors
            .iter()
            .filter_map(|d| d.replication.as_ref().map(|r| r.factor))
            .max()
            .unwrap_or(1)
            .max(1);
        // One addressable target per *logical* database: every physical
        // target when unreplicated, each chain's head when replicated (the
        // routed client fans reads/mutations over the rest of the chain).
        let mut targets: Vec<DbTarget> = Vec::new();
        if topo.replication_factor > 1 {
            topo.chains = bedrock::deployment_chains(descriptors);
            targets.extend(topo.chains.iter().map(|c| c[0].clone()));
        } else {
            for server in descriptors {
                for prov in &server.providers {
                    for db in &prov.databases {
                        targets.push(DbTarget::new(server.address.clone(), prov.provider_id, db));
                    }
                }
            }
        }
        for target in targets {
            let db = &target.db;
            if db.starts_with("datasets") {
                topo.dataset_dbs.push(target);
            } else if db.starts_with("runs") {
                topo.run_dbs.push(target);
            } else if db.starts_with("subruns") {
                topo.subrun_dbs.push(target);
            } else if db.starts_with("events") {
                topo.event_dbs.push(target);
            } else if db.starts_with("products") {
                topo.product_dbs.push(target);
            }
            // Unknown databases are simply not part of the HEPnOS
            // namespace; ignore them.
        }
        // A deterministic global order: every client must agree on the index
        // of each database or placement breaks.
        for group in [
            &mut topo.dataset_dbs,
            &mut topo.run_dbs,
            &mut topo.subrun_dbs,
            &mut topo.event_dbs,
            &mut topo.product_dbs,
        ] {
            group.sort();
        }
        for (name, group) in [
            ("datasets", &topo.dataset_dbs),
            ("runs", &topo.run_dbs),
            ("subruns", &topo.subrun_dbs),
            ("events", &topo.event_dbs),
            ("products", &topo.product_dbs),
        ] {
            if group.is_empty() {
                return Err(HepnosError::Topology(format!(
                    "deployment has no {name} databases"
                )));
            }
        }
        Ok(topo)
    }
}

pub(crate) struct DataStoreInner {
    pub(crate) client: YokanClient,
    pub(crate) topo: Topology,
    pub(crate) placement: Box<dyn Placement>,
    uuid_cache: RwLock<HashMap<String, Uuid>>,
}

impl DataStoreInner {
    pub(crate) fn dataset_db(&self, parent_full: &str) -> &DbTarget {
        let idx = self.placement.place(
            &keys::dataset_parent_bytes(parent_full),
            self.topo.dataset_dbs.len(),
        );
        &self.topo.dataset_dbs[idx]
    }

    pub(crate) fn run_db(&self, dataset: &Uuid) -> &DbTarget {
        let idx = self
            .placement
            .place(dataset.as_bytes(), self.topo.run_dbs.len());
        &self.topo.run_dbs[idx]
    }

    pub(crate) fn subrun_db(&self, run_key: &[u8]) -> &DbTarget {
        let idx = self.placement.place(run_key, self.topo.subrun_dbs.len());
        &self.topo.subrun_dbs[idx]
    }

    pub(crate) fn event_db(&self, subrun_key: &[u8]) -> &DbTarget {
        let idx = self.placement.place(subrun_key, self.topo.event_dbs.len());
        &self.topo.event_dbs[idx]
    }

    pub(crate) fn product_db(&self, container_key: &[u8]) -> &DbTarget {
        &self.topo.product_dbs[self.product_db_index(container_key)]
    }

    /// Index of the product database owning `container_key`'s products.
    /// The PEP readers group per-page prefetch batches in a `Vec` indexed by
    /// this value, avoiding a fresh `HashMap<DbTarget, _>` per page.
    pub(crate) fn product_db_index(&self, container_key: &[u8]) -> usize {
        self.placement
            .place(container_key, self.topo.product_dbs.len())
    }
}

/// A handle to a HEPnOS deployment: the analogue of
/// `hepnos::DataStore::connect("config.json")`.
///
/// Cloning is cheap (shared `Arc`).
#[derive(Clone)]
pub struct DataStore {
    pub(crate) inner: Arc<DataStoreInner>,
}

impl DataStore {
    /// Connect through `endpoint` to the servers described by
    /// `descriptors` (one [`ConnectionDescriptor`] per server node, as
    /// produced by [`bedrock::BedrockServer::descriptor`]).
    pub fn connect(
        endpoint: Arc<dyn Endpoint>,
        descriptors: &[ConnectionDescriptor],
    ) -> Result<DataStore, HepnosError> {
        Self::connect_with_placement(endpoint, descriptors, Box::new(ModuloPlacement))
    }

    /// Connect from a connection file's JSON contents — the direct analogue
    /// of the paper's `DataStore::connect("config.json")` (Listing 1). The
    /// file holds the JSON array of per-server descriptors a deployment
    /// script gathers at server startup.
    pub fn connect_from_json(
        endpoint: Arc<dyn Endpoint>,
        json: &str,
    ) -> Result<DataStore, HepnosError> {
        let descriptors = ConnectionDescriptor::parse_deployment(json)
            .map_err(|e| HepnosError::Topology(e.to_string()))?;
        Self::connect(endpoint, &descriptors)
    }

    /// Connect with an explicit placement strategy (see [`crate::placement`]).
    pub fn connect_with_placement(
        endpoint: Arc<dyn Endpoint>,
        descriptors: &[ConnectionDescriptor],
        placement: Box<dyn Placement>,
    ) -> Result<DataStore, HepnosError> {
        Self::connect_full(endpoint, descriptors, placement, None)
    }

    /// [`DataStore::connect`] with a [`yokan::RetryPolicy`]: every RPC runs
    /// under the policy's per-attempt deadline and transient transport
    /// failures (timeouts, disconnects, saturation) are retried with
    /// deterministic backoff. Retried mutations are applied at-most-once by
    /// the service's dedup window, so a flaky transport cannot duplicate
    /// ingested data.
    pub fn connect_with_retry(
        endpoint: Arc<dyn Endpoint>,
        descriptors: &[ConnectionDescriptor],
        policy: yokan::RetryPolicy,
    ) -> Result<DataStore, HepnosError> {
        Self::connect_full(
            endpoint,
            descriptors,
            Box::new(ModuloPlacement),
            Some(policy),
        )
    }

    fn connect_full(
        endpoint: Arc<dyn Endpoint>,
        descriptors: &[ConnectionDescriptor],
        placement: Box<dyn Placement>,
        retry: Option<yokan::RetryPolicy>,
    ) -> Result<DataStore, HepnosError> {
        let topo = Topology::classify(descriptors)?;
        let mut client = YokanClient::new(endpoint);
        if let Some(policy) = retry {
            client = client.with_retry(policy);
        }
        // Replicated deployments: route every chained database through its
        // replica set (tail-first reads, head mutations, failover). A no-op
        // when `chains` is empty.
        client.install_replica_routes(&topo.chains);
        let store = DataStore {
            inner: Arc::new(DataStoreInner {
                client,
                topo,
                placement,
                uuid_cache: RwLock::new(HashMap::new()),
            }),
        };
        // Learn the deployment's topology epoch so every mutation this
        // store issues is fenced: a rescale that completes behind our back
        // bumps the service epoch and our stale writes are rejected with
        // `WrongEpoch` instead of landing on the wrong owner. A failed
        // fetch leaves the client unfenced (epoch 0) — the pre-rescale
        // behaviour — so connecting to old servers still works.
        let _ = store.refresh_topology_epoch();
        Ok(store)
    }

    /// The topology epoch this store stamps into its mutations (0 =
    /// unfenced; see [`yokan::YokanError::WrongEpoch`]).
    pub fn topology_epoch(&self) -> u64 {
        self.inner.client.topology_epoch()
    }

    /// Re-fetch the topology epoch from the deployment and adopt the
    /// maximum across every reachable node. Probing all nodes — not just
    /// the first — matters after a rescale with casualties: a node that
    /// restarted or was skipped by finalize may still answer a stale
    /// epoch, and adopting it would get this store fenced by the rest of
    /// the deployment. Errors only if *no* node answers; the max is
    /// adopted and returned otherwise.
    pub fn refresh_topology_epoch(&self) -> Result<u64, HepnosError> {
        let topo = &self.inner.topo;
        let mut nodes: std::collections::BTreeMap<String, u16> = std::collections::BTreeMap::new();
        for t in topo
            .dataset_dbs
            .iter()
            .chain(topo.run_dbs.iter())
            .chain(topo.subrun_dbs.iter())
            .chain(topo.event_dbs.iter())
            .chain(topo.product_dbs.iter())
        {
            nodes.entry(t.addr.clone()).or_insert(t.provider_id);
        }
        if nodes.is_empty() {
            return Err(HepnosError::Topology("deployment has no databases".into()));
        }
        let mut best: Option<u64> = None;
        let mut last_err: Option<HepnosError> = None;
        for (addr, pid) in &nodes {
            match self.inner.client.service_epoch(addr, *pid) {
                Ok(e) => best = Some(best.map_or(e, |b| b.max(e))),
                Err(e) => last_err = Some(e.into()),
            }
        }
        let Some(epoch) = best else {
            return Err(last_err.expect("at least one node probed"));
        };
        self.inner.client.set_topology_epoch(epoch);
        Ok(epoch)
    }

    /// Install a dual-read fallback for `db`: point reads and listings that
    /// miss on the current owner also consult `candidates` (the database's
    /// *old* replica chain) while a live rescale is in flight. An empty
    /// `candidates` removes the fallback; see
    /// [`yokan::YokanClient::install_dual_read`].
    pub fn install_dual_read(&self, db: &str, candidates: Vec<DbTarget>) {
        self.inner.client.install_dual_read(db, candidates);
    }

    /// Drop every dual-read fallback (the migration finished).
    pub fn clear_dual_read(&self) {
        self.inner.client.clear_dual_read();
    }

    /// Retry counters of this store's client: attempts issued, logical
    /// requests that retried, replays answered from the service dedup
    /// window, and requests that gave up. All zero unless the store was
    /// connected with [`DataStore::connect_with_retry`].
    pub fn retry_stats(&self) -> yokan::RetryStats {
        self.inner.client.retry_stats()
    }

    /// The virtual root dataset (it always exists and holds the top-level
    /// datasets).
    pub fn root(&self) -> DataSet {
        DataSet {
            store: Arc::clone(&self.inner),
            path: None,
            uuid: None,
        }
    }

    /// Open an existing dataset by full path — `datastore["path/to/ds"]` in
    /// the paper's Listing 1.
    pub fn dataset(&self, path: &str) -> Result<DataSet, HepnosError> {
        let path = DatasetPath::parse(path)?;
        let uuid = self.resolve(&path)?;
        Ok(DataSet {
            store: Arc::clone(&self.inner),
            path: Some(path),
            uuid: Some(uuid),
        })
    }

    /// Number of event databases in the deployment (drives the default
    /// reader count of the [`crate::ParallelEventProcessor`]).
    pub fn num_event_databases(&self) -> usize {
        self.inner.topo.event_dbs.len()
    }

    /// Network counters of this client's endpoint (requests sent, bytes
    /// moved) — the monitoring surface used to verify batching behaviour.
    pub fn endpoint_stats(&self) -> mercurio::EndpointStats {
        self.inner.client.endpoint().stats()
    }

    /// Number of product databases in the deployment.
    pub fn num_product_databases(&self) -> usize {
        self.inner.topo.product_dbs.len()
    }

    /// Advertised replication factor (1 when the deployment is
    /// single-copy).
    pub fn replication_factor(&self) -> usize {
        self.inner.topo.replication_factor
    }

    /// The deployment's replica chains, head first (empty when
    /// unreplicated). The ordered replica set of a given container's
    /// database is recovered with
    /// [`crate::placement::place_replica_set`].
    pub fn replica_chains(&self) -> &[Vec<DbTarget>] {
        &self.inner.topo.chains
    }

    /// Resolve a dataset path to its UUID, using the client-side cache.
    fn resolve(&self, path: &DatasetPath) -> Result<Uuid, HepnosError> {
        if let Some(u) = self.inner.uuid_cache.read().get(&path.full()) {
            return Ok(*u);
        }
        let parent_full = path.parent().map(|p| p.full()).unwrap_or_default();
        let key = keys::dataset_key(&parent_full, path.name());
        let db = self.inner.dataset_db(&parent_full);
        let value = self
            .inner
            .client
            .get(db, &key)?
            .ok_or_else(|| HepnosError::NoSuchDataset(path.full()))?;
        let uuid = Uuid::from_slice(&value).ok_or_else(|| {
            HepnosError::Storage(yokan::YokanError::Protocol(
                "dataset value is not a UUID".into(),
            ))
        })?;
        self.inner.uuid_cache.write().insert(path.full(), uuid);
        Ok(uuid)
    }
}

impl std::fmt::Debug for DataStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataStore")
            .field("event_dbs", &self.inner.topo.event_dbs.len())
            .field("product_dbs", &self.inner.topo.product_dbs.len())
            .finish()
    }
}

/// Shared implementation of typed product storage for any container.
fn store_product<T: Serialize>(
    store: &DataStoreInner,
    container_key: &[u8],
    label: &ProductLabel,
    value: &T,
) -> Result<(), HepnosError> {
    let bytes = binser::to_bytes(value).map_err(|e| HepnosError::Serialization(e.to_string()))?;
    let type_name = keys::short_type_name::<T>();
    let pk = keys::product_key(container_key, label.as_str(), &type_name);
    let db = store.product_db(container_key);
    store.client.put(db, &pk, &bytes)?;
    Ok(())
}

fn load_product<T: DeserializeOwned>(
    store: &DataStoreInner,
    container_key: &[u8],
    label: &ProductLabel,
) -> Result<Option<T>, HepnosError> {
    let type_name = keys::short_type_name::<T>();
    let pk = keys::product_key(container_key, label.as_str(), &type_name);
    let db = store.product_db(container_key);
    match store.client.get(db, &pk)? {
        None => Ok(None),
        Some(bytes) => {
            let v = binser::from_bytes(&bytes)
                .map_err(|e| HepnosError::Serialization(e.to_string()))?;
            Ok(Some(v))
        }
    }
}

/// A dataset: a named container of datasets and runs.
#[derive(Clone)]
pub struct DataSet {
    store: Arc<DataStoreInner>,
    /// `None` for the virtual root.
    path: Option<DatasetPath>,
    uuid: Option<Uuid>,
}

impl DataSet {
    /// This dataset's full path (`""` for the root).
    pub fn full_path(&self) -> String {
        self.path.as_ref().map(|p| p.full()).unwrap_or_default()
    }

    /// This dataset's name (`""` for the root).
    pub fn name(&self) -> String {
        self.path
            .as_ref()
            .map(|p| p.name().to_string())
            .unwrap_or_default()
    }

    /// The dataset's UUID (`None` for the root, which needs none).
    pub fn uuid(&self) -> Option<Uuid> {
        self.uuid
    }

    /// Create a child dataset (`mkdir -p` semantics: missing intermediate
    /// datasets are created, existing ones are reused).
    pub fn create_dataset(&self, rel_path: &str) -> Result<DataSet, HepnosError> {
        let rel = DatasetPath::parse(rel_path)?;
        let mut current_full = self.full_path();
        let mut current_uuid = self.uuid;
        let mut current_path = self.path.clone();
        for comp in rel.components() {
            let key = keys::dataset_key(&current_full, comp);
            let db = self.store.dataset_db(&current_full).clone();
            // Concurrent creators race on the UUID registration: the
            // server-side put-if-absent makes exactly one of them win and
            // hands the winning UUID to everyone else (a plain get-then-put
            // would orphan the loser's children under a dangling UUID).
            let fresh = Uuid::generate();
            let uuid = match self
                .store
                .client
                .put_if_absent(&db, &key, fresh.as_bytes())?
            {
                None => fresh,
                Some(v) => Uuid::from_slice(&v).ok_or_else(|| {
                    HepnosError::Storage(yokan::YokanError::Protocol(
                        "dataset value is not a UUID".into(),
                    ))
                })?,
            };
            current_path = Some(match &current_path {
                Some(p) => p.child(comp)?,
                None => DatasetPath::parse(comp)?,
            });
            current_full = current_path.as_ref().expect("path was just set").full();
            self.store
                .uuid_cache
                .write()
                .insert(current_full.clone(), uuid);
            current_uuid = Some(uuid);
        }
        Ok(DataSet {
            store: Arc::clone(&self.store),
            path: current_path,
            uuid: current_uuid,
        })
    }

    /// Open an existing child dataset; errors if it does not exist.
    pub fn dataset(&self, rel_path: &str) -> Result<DataSet, HepnosError> {
        let rel = DatasetPath::parse(rel_path)?;
        let full = match &self.path {
            Some(p) => {
                let mut c = p.components().to_vec();
                c.extend(rel.components().iter().cloned());
                DatasetPath::from_components(c)?
            }
            None => rel,
        };
        let ds = DataStore {
            inner: Arc::clone(&self.store),
        };
        ds.dataset(&full.full())
    }

    /// List the names of direct child datasets, sorted.
    pub fn datasets(&self) -> Result<Vec<DataSet>, HepnosError> {
        let full = self.full_path();
        let prefix = keys::dataset_children_prefix(&full);
        let db = self.store.dataset_db(&full).clone();
        let mut out = Vec::new();
        let mut from = prefix.clone();
        loop {
            let page = self
                .store
                .client
                .list_keyvals(&db, &from, &prefix, ITER_PAGE)?;
            if page.is_empty() {
                break;
            }
            from.clone_from(&page.last().expect("page is non-empty").0);
            for (k, v) in page {
                let name = keys::dataset_key_name(&k).ok_or_else(|| {
                    HepnosError::Storage(yokan::YokanError::Protocol(
                        "malformed dataset key".into(),
                    ))
                })?;
                let uuid = Uuid::from_slice(&v).ok_or_else(|| {
                    HepnosError::Storage(yokan::YokanError::Protocol(
                        "dataset value is not a UUID".into(),
                    ))
                })?;
                let child_path = match &self.path {
                    Some(p) => p.child(name)?,
                    None => DatasetPath::parse(name)?,
                };
                out.push(DataSet {
                    store: Arc::clone(&self.store),
                    path: Some(child_path),
                    uuid: Some(uuid),
                });
            }
        }
        Ok(out)
    }

    /// All events of this dataset, across every run and subrun, in key
    /// order (dataset UUID, then run/subrun/event numerically).
    ///
    /// This is the sequential counterpart of the
    /// [`crate::ParallelEventProcessor`]: each event database is paged with
    /// the dataset-UUID prefix and the per-database results are merged.
    pub fn events(&self) -> Result<Vec<Event>, HepnosError> {
        let uuid = self.require_uuid()?;
        let prefix: Vec<u8> = uuid.as_bytes().to_vec();
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for db in &self.store.topo.event_dbs {
            let mut from = prefix.clone();
            loop {
                let page = self.store.client.list_keys(db, &from, &prefix, ITER_PAGE)?;
                if page.is_empty() {
                    break;
                }
                from.clone_from(page.last().expect("page is non-empty"));
                keys.extend(page);
            }
        }
        keys.sort();
        keys.into_iter()
            .map(|k| {
                let (u, run, subrun, number) = keys::parse_event_key(&k).ok_or_else(|| {
                    HepnosError::Storage(yokan::YokanError::Protocol("malformed event key".into()))
                })?;
                Ok(Event {
                    store: Arc::clone(&self.store),
                    dataset: u,
                    run,
                    subrun,
                    number,
                    key: k,
                })
            })
            .collect()
    }

    fn require_uuid(&self) -> Result<Uuid, HepnosError> {
        self.uuid
            .ok_or_else(|| HepnosError::InvalidPath("the root dataset cannot hold runs".into()))
    }

    /// Create run `number` (idempotent).
    pub fn create_run(&self, number: RunNumber) -> Result<Run, HepnosError> {
        let uuid = self.require_uuid()?;
        let key = keys::run_key(&uuid, number);
        let db = self.store.run_db(&uuid).clone();
        self.store.client.put(&db, &key, &[])?;
        Ok(Run {
            store: Arc::clone(&self.store),
            dataset: uuid,
            number,
            key,
        })
    }

    /// Open run `number`; errors if absent.
    pub fn run(&self, number: RunNumber) -> Result<Run, HepnosError> {
        let uuid = self.require_uuid()?;
        let key = keys::run_key(&uuid, number);
        let db = self.store.run_db(&uuid).clone();
        if !self.store.client.exists(&db, &key)? {
            return Err(HepnosError::NoSuchContainer(format!(
                "run {number} in {}",
                self.full_path()
            )));
        }
        Ok(Run {
            store: Arc::clone(&self.store),
            dataset: uuid,
            number,
            key,
        })
    }

    /// Iterate all runs in ascending number order.
    pub fn runs(&self) -> Result<Vec<Run>, HepnosError> {
        let uuid = self.require_uuid()?;
        let prefix: Vec<u8> = uuid.as_bytes().to_vec();
        let db = self.store.run_db(&uuid).clone();
        let mut out = Vec::new();
        let mut from = prefix.clone();
        loop {
            let page = self
                .store
                .client
                .list_keys(&db, &from, &prefix, ITER_PAGE)?;
            if page.is_empty() {
                break;
            }
            from.clone_from(page.last().expect("page is non-empty"));
            for k in page {
                let number = keys::trailing_number(&k).ok_or_else(|| {
                    HepnosError::Storage(yokan::YokanError::Protocol("malformed run key".into()))
                })?;
                out.push(Run {
                    store: Arc::clone(&self.store),
                    dataset: uuid,
                    number,
                    key: k,
                });
            }
        }
        Ok(out)
    }

    pub(crate) fn store_inner(&self) -> &Arc<DataStoreInner> {
        &self.store
    }
}

impl std::fmt::Debug for DataSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DataSet({})", self.full_path())
    }
}

/// A run within a dataset.
#[derive(Clone)]
pub struct Run {
    store: Arc<DataStoreInner>,
    dataset: Uuid,
    number: RunNumber,
    key: Vec<u8>,
}

impl Run {
    /// The run number.
    pub fn number(&self) -> RunNumber {
        self.number
    }

    /// The owning dataset's UUID.
    pub fn dataset_uuid(&self) -> Uuid {
        self.dataset
    }

    /// Create subrun `number` (idempotent).
    pub fn create_subrun(&self, number: SubRunNumber) -> Result<SubRun, HepnosError> {
        let key = keys::subrun_key(&self.dataset, self.number, number);
        let db = self.store.subrun_db(&self.key).clone();
        self.store.client.put(&db, &key, &[])?;
        Ok(SubRun {
            store: Arc::clone(&self.store),
            dataset: self.dataset,
            run: self.number,
            number,
            key,
        })
    }

    /// Open subrun `number`; errors if absent.
    pub fn subrun(&self, number: SubRunNumber) -> Result<SubRun, HepnosError> {
        let key = keys::subrun_key(&self.dataset, self.number, number);
        let db = self.store.subrun_db(&self.key).clone();
        if !self.store.client.exists(&db, &key)? {
            return Err(HepnosError::NoSuchContainer(format!(
                "subrun {number} in run {}",
                self.number
            )));
        }
        Ok(SubRun {
            store: Arc::clone(&self.store),
            dataset: self.dataset,
            run: self.number,
            number,
            key,
        })
    }

    /// Iterate all subruns in ascending number order.
    pub fn subruns(&self) -> Result<Vec<SubRun>, HepnosError> {
        let db = self.store.subrun_db(&self.key).clone();
        let prefix = self.key.clone();
        let mut out = Vec::new();
        let mut from = prefix.clone();
        loop {
            let page = self
                .store
                .client
                .list_keys(&db, &from, &prefix, ITER_PAGE)?;
            if page.is_empty() {
                break;
            }
            from.clone_from(page.last().expect("page is non-empty"));
            for k in page {
                let number = keys::trailing_number(&k).ok_or_else(|| {
                    HepnosError::Storage(yokan::YokanError::Protocol("malformed subrun key".into()))
                })?;
                out.push(SubRun {
                    store: Arc::clone(&self.store),
                    dataset: self.dataset,
                    run: self.number,
                    number,
                    key: k,
                });
            }
        }
        Ok(out)
    }

    /// All events of this run across every subrun, in (subrun, event)
    /// order. Subruns hash to different event databases, so each database
    /// is scanned with the run's 24-byte key prefix and the results merged.
    pub fn events(&self) -> Result<Vec<Event>, HepnosError> {
        let prefix = self.key.clone();
        let mut keys_found: Vec<Vec<u8>> = Vec::new();
        for db in &self.store.topo.event_dbs {
            let mut from = prefix.clone();
            loop {
                let page = self.store.client.list_keys(db, &from, &prefix, ITER_PAGE)?;
                if page.is_empty() {
                    break;
                }
                from.clone_from(page.last().expect("page is non-empty"));
                keys_found.extend(page);
            }
        }
        keys_found.sort();
        keys_found
            .into_iter()
            .map(|k| {
                let (u, run, subrun, number) = keys::parse_event_key(&k).ok_or_else(|| {
                    HepnosError::Storage(yokan::YokanError::Protocol("malformed event key".into()))
                })?;
                Ok(Event {
                    store: Arc::clone(&self.store),
                    dataset: u,
                    run,
                    subrun,
                    number,
                    key: k,
                })
            })
            .collect()
    }

    /// Store a typed product on this run.
    pub fn store<T: Serialize>(&self, label: &ProductLabel, value: &T) -> Result<(), HepnosError> {
        store_product(&self.store, &self.key, label, value)
    }

    /// Load a typed product from this run.
    pub fn load<T: DeserializeOwned>(
        &self,
        label: &ProductLabel,
    ) -> Result<Option<T>, HepnosError> {
        load_product(&self.store, &self.key, label)
    }

    /// The run's full storage key.
    pub fn key(&self) -> &[u8] {
        &self.key
    }
}

impl std::fmt::Debug for Run {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Run({})", self.number)
    }
}

/// A subrun within a run.
#[derive(Clone)]
pub struct SubRun {
    store: Arc<DataStoreInner>,
    dataset: Uuid,
    run: RunNumber,
    number: SubRunNumber,
    key: Vec<u8>,
}

impl SubRun {
    /// The subrun number.
    pub fn number(&self) -> SubRunNumber {
        self.number
    }

    /// The owning run number.
    pub fn run_number(&self) -> RunNumber {
        self.run
    }

    /// Create event `number` (idempotent).
    pub fn create_event(&self, number: EventNumber) -> Result<Event, HepnosError> {
        let key = keys::event_key(&self.dataset, self.run, self.number, number);
        let db = self.store.event_db(&self.key).clone();
        self.store.client.put(&db, &key, &[])?;
        Ok(Event {
            store: Arc::clone(&self.store),
            dataset: self.dataset,
            run: self.run,
            subrun: self.number,
            number,
            key,
        })
    }

    /// Open event `number`; errors if absent.
    pub fn event(&self, number: EventNumber) -> Result<Event, HepnosError> {
        let key = keys::event_key(&self.dataset, self.run, self.number, number);
        let db = self.store.event_db(&self.key).clone();
        if !self.store.client.exists(&db, &key)? {
            return Err(HepnosError::NoSuchContainer(format!(
                "event {number} in subrun {}",
                self.number
            )));
        }
        Ok(Event {
            store: Arc::clone(&self.store),
            dataset: self.dataset,
            run: self.run,
            subrun: self.number,
            number,
            key,
        })
    }

    /// Iterate all events in ascending number order.
    pub fn events(&self) -> Result<Vec<Event>, HepnosError> {
        let db = self.store.event_db(&self.key).clone();
        let prefix = self.key.clone();
        let mut out = Vec::new();
        let mut from = prefix.clone();
        loop {
            let page = self
                .store
                .client
                .list_keys(&db, &from, &prefix, ITER_PAGE)?;
            if page.is_empty() {
                break;
            }
            from.clone_from(page.last().expect("page is non-empty"));
            for k in page {
                let number = keys::trailing_number(&k).ok_or_else(|| {
                    HepnosError::Storage(yokan::YokanError::Protocol("malformed event key".into()))
                })?;
                out.push(Event {
                    store: Arc::clone(&self.store),
                    dataset: self.dataset,
                    run: self.run,
                    subrun: self.number,
                    number,
                    key: k,
                });
            }
        }
        Ok(out)
    }

    /// Events with numbers in `[lo, hi)`, in ascending order — a ranged
    /// variant of [`SubRun::events`] exploiting the big-endian key order
    /// (a single bounded scan on one database).
    pub fn events_range(
        &self,
        lo: EventNumber,
        hi: EventNumber,
    ) -> Result<Vec<Event>, HepnosError> {
        if hi <= lo {
            return Ok(Vec::new());
        }
        let db = self.store.event_db(&self.key).clone();
        let prefix = self.key.clone();
        // list_keys' lower bound is exclusive: starting from event `lo-1`'s
        // key admits `lo` itself (even across gaps); for `lo == 0` the
        // subrun prefix sorts below every event key.
        let mut from = if lo == 0 {
            prefix.clone()
        } else {
            keys::event_key(&self.dataset, self.run, self.number, lo - 1)
        };
        let mut out = Vec::new();
        loop {
            let page = self
                .store
                .client
                .list_keys(&db, &from, &prefix, ITER_PAGE)?;
            if page.is_empty() {
                break;
            }
            from.clone_from(page.last().expect("page is non-empty"));
            let mut done = false;
            for k in page {
                let number = keys::trailing_number(&k).ok_or_else(|| {
                    HepnosError::Storage(yokan::YokanError::Protocol("malformed event key".into()))
                })?;
                if number < lo {
                    continue;
                }
                if number >= hi {
                    done = true;
                    break;
                }
                out.push(Event {
                    store: Arc::clone(&self.store),
                    dataset: self.dataset,
                    run: self.run,
                    subrun: self.number,
                    number,
                    key: k,
                });
            }
            if done {
                break;
            }
        }
        Ok(out)
    }

    /// Store a typed product on this subrun.
    pub fn store<T: Serialize>(&self, label: &ProductLabel, value: &T) -> Result<(), HepnosError> {
        store_product(&self.store, &self.key, label, value)
    }

    /// Load a typed product from this subrun.
    pub fn load<T: DeserializeOwned>(
        &self,
        label: &ProductLabel,
    ) -> Result<Option<T>, HepnosError> {
        load_product(&self.store, &self.key, label)
    }

    /// The subrun's full storage key.
    pub fn key(&self) -> &[u8] {
        &self.key
    }
}

impl std::fmt::Debug for SubRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubRun({}/{})", self.run, self.number)
    }
}

/// An event: the natural atomic unit of HEP data (paper §I).
#[derive(Clone)]
pub struct Event {
    store: Arc<DataStoreInner>,
    dataset: Uuid,
    run: RunNumber,
    subrun: SubRunNumber,
    number: EventNumber,
    key: Vec<u8>,
}

impl Event {
    /// The event number.
    pub fn number(&self) -> EventNumber {
        self.number
    }

    /// The owning (run, subrun) numbers.
    pub fn coordinates(&self) -> (RunNumber, SubRunNumber, EventNumber) {
        (self.run, self.subrun, self.number)
    }

    /// Store a typed product (`ev.store(vp1)` in Listing 1, with an explicit
    /// label).
    pub fn store<T: Serialize>(&self, label: &ProductLabel, value: &T) -> Result<(), HepnosError> {
        store_product(&self.store, &self.key, label, value)
    }

    /// Load a typed product (`ev.load(vp2)` in Listing 1).
    pub fn load<T: DeserializeOwned>(
        &self,
        label: &ProductLabel,
    ) -> Result<Option<T>, HepnosError> {
        load_product(&self.store, &self.key, label)
    }

    /// Store pre-serialized bytes under an explicit type name (used by the
    /// batched writers).
    pub fn store_raw(
        &self,
        label: &ProductLabel,
        type_name: &str,
        bytes: &[u8],
    ) -> Result<(), HepnosError> {
        let pk = keys::product_key(&self.key, label.as_str(), type_name);
        let db = self.store.product_db(&self.key);
        self.store.client.put(db, &pk, bytes)?;
        Ok(())
    }

    /// Load raw product bytes under an explicit type name.
    pub fn load_raw(
        &self,
        label: &ProductLabel,
        type_name: &str,
    ) -> Result<Option<Vec<u8>>, HepnosError> {
        let pk = keys::product_key(&self.key, label.as_str(), type_name);
        let db = self.store.product_db(&self.key);
        Ok(self.store.client.get(db, &pk)?)
    }

    /// The event's full storage key.
    pub fn key(&self) -> &[u8] {
        &self.key
    }

    /// A plain-data descriptor for queueing (see
    /// [`crate::ParallelEventProcessor`]).
    pub fn descriptor(&self) -> crate::pep::EventDescriptor {
        crate::pep::EventDescriptor {
            dataset: self.dataset,
            run: self.run,
            subrun: self.subrun,
            event: self.number,
        }
    }

    /// Rebuild an event handle from a descriptor (no RPC).
    pub fn from_descriptor(store: &DataStore, d: &crate::pep::EventDescriptor) -> Event {
        Event {
            store: Arc::clone(&store.inner),
            dataset: d.dataset,
            run: d.run,
            subrun: d.subrun,
            number: d.event,
            key: keys::event_key(&d.dataset, d.run, d.subrun, d.event),
        }
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Event({}/{}/{})", self.run, self.subrun, self.number)
    }
}

impl Run {
    /// Build a handle without an existence check (used by [`crate::WriteBatch`],
    /// which has the creation queued).
    pub(crate) fn unchecked(store: Arc<DataStoreInner>, dataset: Uuid, number: RunNumber) -> Run {
        let key = keys::run_key(&dataset, number);
        Run {
            store,
            dataset,
            number,
            key,
        }
    }
}

impl SubRun {
    pub(crate) fn unchecked(run: &Run, number: SubRunNumber) -> SubRun {
        SubRun {
            store: Arc::clone(&run.store),
            dataset: run.dataset,
            run: run.number,
            number,
            key: keys::subrun_key(&run.dataset, run.number, number),
        }
    }
}

impl Event {
    pub(crate) fn unchecked(subrun: &SubRun, number: EventNumber) -> Event {
        Event {
            store: Arc::clone(&subrun.store),
            dataset: subrun.dataset,
            run: subrun.run,
            subrun: subrun.number,
            number,
            key: keys::event_key(&subrun.dataset, subrun.run, subrun.number, number),
        }
    }
}

/// Maximum product keys per push-down filter RPC; bounds the work one
/// request pins on a provider (the fan-out path parallelizes within it).
const FILTER_BATCH: usize = 1024;

impl DataStore {
    /// Push a serialized predicate [`yokan::Program`] down to the product
    /// databases holding `(label, type_name)` products of the given
    /// container keys, one reply per key in input order.
    ///
    /// Keys are grouped by their product database (same placement walk as
    /// the prefetching reader) and each group is filtered in bounded
    /// batches, so one RPC per `(database, batch)` crosses the wire instead
    /// of one product blob per event.
    pub fn filter_products(
        &self,
        container_keys: &[Vec<u8>],
        label: &ProductLabel,
        type_name: &str,
        program: &yokan::Program,
    ) -> Result<Vec<yokan::FilterReply>, HepnosError> {
        let mut grouped: HashMap<DbTarget, (Vec<usize>, Vec<Vec<u8>>)> = HashMap::new();
        for (slot, ck) in container_keys.iter().enumerate() {
            let db = self.inner.product_db(ck).clone();
            let pk = keys::product_key(ck, label.as_str(), type_name);
            let entry = grouped.entry(db).or_default();
            entry.0.push(slot);
            entry.1.push(pk);
        }
        let mut out: Vec<Option<yokan::FilterReply>> = vec![None; container_keys.len()];
        for (db, (slots, pks)) in grouped {
            for (slot_chunk, pk_chunk) in slots.chunks(FILTER_BATCH).zip(pks.chunks(FILTER_BATCH)) {
                let replies = self.inner.client.filter(&db, program, pk_chunk)?;
                for (&slot, reply) in slot_chunk.iter().zip(replies) {
                    out[slot] = Some(reply);
                }
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every key was grouped into exactly one batch"))
            .collect())
    }
}

/// Internal access for the batching layer.
impl DataStore {
    pub(crate) fn write_target_for_run(
        &self,
        dataset: &Uuid,
        run: RunNumber,
    ) -> (DbTarget, Vec<u8>) {
        let key = keys::run_key(dataset, run);
        (self.inner.run_db(dataset).clone(), key)
    }

    pub(crate) fn write_target_for_subrun(
        &self,
        dataset: &Uuid,
        run: RunNumber,
        subrun: SubRunNumber,
    ) -> (DbTarget, Vec<u8>) {
        let run_key = keys::run_key(dataset, run);
        let key = keys::subrun_key(dataset, run, subrun);
        (self.inner.subrun_db(&run_key).clone(), key)
    }

    pub(crate) fn write_target_for_event(
        &self,
        dataset: &Uuid,
        run: RunNumber,
        subrun: SubRunNumber,
        event: EventNumber,
    ) -> (DbTarget, Vec<u8>) {
        let subrun_key = keys::subrun_key(dataset, run, subrun);
        let key = keys::event_key(dataset, run, subrun, event);
        (self.inner.event_db(&subrun_key).clone(), key)
    }

    pub(crate) fn write_target_for_product(
        &self,
        container_key: &[u8],
        label: &ProductLabel,
        type_name: &str,
    ) -> WriteTarget {
        let key = keys::product_key(container_key, label.as_str(), type_name);
        WriteTarget {
            db: self.inner.product_db(container_key).clone(),
            key,
        }
    }
}
