//! Overload-driven elastic scaling decisions.
//!
//! The autoscaler closes the loop between the service's pushback machinery
//! and the live [`crate::rescale::Migrator`]: it consumes each node's
//! admission-control counters ([`margo::OverloadStats`] — queue-depth
//! high-water mark, queue-full and deadline sheds) and the LSM backend's
//! write-stall counters (soft-watermark stalls and hard-watermark sheds,
//! see [`yokan::BackendStats`]), and turns them into one of three
//! decisions: *add a provider* (the deployment is persistently pushing
//! back), *drain a provider* (the deployment has been idle long enough
//! that shrinking is safe), or *hold*.
//!
//! The scaler is deliberately **deterministic and clockless**: callers
//! feed it sample snapshots plus a logical timestamp, and it works on the
//! *deltas* between consecutive snapshots of the same node. That keeps the
//! policy unit-testable with synthetic samples and keeps decisions
//! reproducible in the chaos suites. Acting on a decision — spinning up a
//! [`bedrock`] node and running the migrator, or draining one — is the
//! caller's job; the scaler only decides.

use std::collections::HashMap;
use std::time::Duration;

/// One node's worth of load counters, sampled cumulatively (the scaler
/// diffs consecutive samples itself).
#[derive(Debug, Clone, Default)]
pub struct NodeSample {
    /// The node's address (stable identity across samples).
    pub node: String,
    /// Admission-control counters from the node's margo instance.
    pub overload: margo::OverloadStats,
    /// Cumulative LSM soft-watermark write stalls across the node's
    /// databases (0 for memory backends).
    pub lsm_write_stalls: u64,
    /// Cumulative LSM hard-watermark write sheds across the node's
    /// databases (0 for memory backends).
    pub lsm_write_sheds: u64,
}

/// What the deployment should do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Sustained pushback: add a provider and migrate data onto it.
    /// Carries the address of the hottest node (highest shed delta, then
    /// highest queue HWM) as a placement hint.
    AddProvider {
        /// The node whose overload triggered the decision.
        hottest: String,
    },
    /// Sustained idleness: drain a provider and migrate its data away.
    /// Carries the address of the coldest node (lowest admitted delta).
    DrainProvider {
        /// The node least missed if removed.
        coldest: String,
    },
    /// Neither trigger fired (or a cooldown is in effect).
    Hold,
}

/// Thresholds and timings for [`AutoScaler`].
#[derive(Debug, Clone)]
pub struct AutoScalePolicy {
    /// Queue-depth high-water mark at or above which a node counts as
    /// overloaded for the interval.
    pub queue_hwm_trigger: u64,
    /// Fraction of requests shed (queue-full + deadline, relative to
    /// admitted + shed) at or above which a node counts as overloaded.
    pub shed_rate_trigger: f64,
    /// LSM write stalls + sheds per interval at or above which a node
    /// counts as overloaded (compaction cannot keep up).
    pub stall_trigger: u64,
    /// Consecutive overloaded intervals before `AddProvider` fires.
    pub sustain_intervals: u32,
    /// Minimum time between two non-`Hold` decisions.
    pub cooldown: Duration,
    /// How long the whole deployment must stay idle (no sheds, no stalls,
    /// queue HWM below the trigger) before `DrainProvider` fires.
    pub drain_idle: Duration,
    /// Never drain below this many nodes.
    pub min_nodes: usize,
}

impl Default for AutoScalePolicy {
    fn default() -> Self {
        AutoScalePolicy {
            queue_hwm_trigger: 16,
            shed_rate_trigger: 0.05,
            stall_trigger: 8,
            sustain_intervals: 2,
            cooldown: Duration::from_secs(30),
            drain_idle: Duration::from_secs(120),
            min_nodes: 1,
        }
    }
}

impl AutoScalePolicy {
    /// Build from a deployment's `migration.autoscale` config section.
    pub fn from_bedrock(cfg: &bedrock::AutoscaleConfig) -> AutoScalePolicy {
        AutoScalePolicy {
            queue_hwm_trigger: cfg.queue_hwm_trigger,
            shed_rate_trigger: cfg.shed_rate_trigger,
            stall_trigger: cfg.stall_trigger,
            sustain_intervals: cfg.sustain_intervals.max(1),
            cooldown: Duration::from_secs(cfg.cooldown_secs),
            drain_idle: Duration::from_secs(cfg.drain_idle_secs),
            min_nodes: cfg.min_nodes.max(1),
        }
    }
}

/// Per-node interval delta, derived from two consecutive samples.
#[derive(Debug, Clone, Copy, Default)]
struct Delta {
    admitted: u64,
    shed: u64,
    queue_hwm: u64,
    stalls: u64,
}

impl Delta {
    fn overloaded(&self, p: &AutoScalePolicy) -> bool {
        if self.queue_hwm >= p.queue_hwm_trigger || self.stalls >= p.stall_trigger {
            return true;
        }
        let total = self.admitted + self.shed;
        total > 0 && self.shed as f64 / total as f64 >= p.shed_rate_trigger
    }

    fn idle(&self, p: &AutoScalePolicy) -> bool {
        self.shed == 0 && self.stalls == 0 && self.queue_hwm < p.queue_hwm_trigger
    }
}

/// Deterministic scaling-decision engine. Feed it one batch of
/// [`NodeSample`]s per observation interval via [`AutoScaler::decide`];
/// it diffs them against the previous batch and applies
/// [`AutoScalePolicy`].
pub struct AutoScaler {
    policy: AutoScalePolicy,
    prev: HashMap<String, NodeSample>,
    hot_streak: u32,
    idle_since: Option<Duration>,
    last_action: Option<Duration>,
}

impl AutoScaler {
    /// Create a scaler with the given policy.
    pub fn new(policy: AutoScalePolicy) -> AutoScaler {
        AutoScaler {
            policy,
            prev: HashMap::new(),
            hot_streak: 0,
            idle_since: None,
            last_action: None,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &AutoScalePolicy {
        &self.policy
    }

    /// Consume one interval's samples (all nodes, cumulative counters) at
    /// logical time `now` and decide. The first sample of any node only
    /// seeds its baseline — a node never triggers on its first appearance.
    pub fn decide(&mut self, now: Duration, samples: &[NodeSample]) -> ScaleDecision {
        let mut deltas: Vec<(String, Delta)> = Vec::with_capacity(samples.len());
        for s in samples {
            if let Some(prev) = self.prev.get(&s.node) {
                deltas.push((
                    s.node.clone(),
                    Delta {
                        admitted: s.overload.admitted.saturating_sub(prev.overload.admitted),
                        shed: s.overload.shed().saturating_sub(prev.overload.shed()),
                        // HWM is itself a high-water mark, not a counter:
                        // compare the level, not the diff.
                        queue_hwm: s.overload.queue_depth_hwm,
                        stalls: (s.lsm_write_stalls + s.lsm_write_sheds)
                            .saturating_sub(prev.lsm_write_stalls + prev.lsm_write_sheds),
                    },
                ));
            }
            self.prev.insert(s.node.clone(), s.clone());
        }
        if deltas.is_empty() {
            return ScaleDecision::Hold;
        }

        let any_hot = deltas.iter().any(|(_, d)| d.overloaded(&self.policy));
        let all_idle = deltas.iter().all(|(_, d)| d.idle(&self.policy));

        if any_hot {
            self.idle_since = None;
            self.hot_streak = self.hot_streak.saturating_add(1);
        } else {
            self.hot_streak = 0;
            if all_idle {
                self.idle_since.get_or_insert(now);
            } else {
                self.idle_since = None;
            }
        }

        if let Some(last) = self.last_action {
            if now.saturating_sub(last) < self.policy.cooldown {
                return ScaleDecision::Hold;
            }
        }

        if self.hot_streak >= self.policy.sustain_intervals {
            let hottest = deltas
                .iter()
                .max_by_key(|(_, d)| (d.shed, d.queue_hwm, d.stalls))
                .map(|(n, _)| n.clone())
                .expect("deltas non-empty");
            self.hot_streak = 0;
            self.last_action = Some(now);
            return ScaleDecision::AddProvider { hottest };
        }

        if samples.len() > self.policy.min_nodes {
            if let Some(since) = self.idle_since {
                if now.saturating_sub(since) >= self.policy.drain_idle {
                    let coldest = deltas
                        .iter()
                        .min_by_key(|(n, d)| (d.admitted, n.clone()))
                        .map(|(n, _)| n.clone())
                        .expect("deltas non-empty");
                    self.idle_since = None;
                    self.last_action = Some(now);
                    return ScaleDecision::DrainProvider { coldest };
                }
            }
        }

        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: &str, admitted: u64, shed_qf: u64, hwm: u64, stalls: u64) -> NodeSample {
        NodeSample {
            node: node.into(),
            overload: margo::OverloadStats {
                admitted,
                shed_queue_full: shed_qf,
                shed_deadline: 0,
                queue_depth_hwm: hwm,
            },
            lsm_write_stalls: stalls,
            lsm_write_sheds: 0,
        }
    }

    fn policy() -> AutoScalePolicy {
        AutoScalePolicy {
            queue_hwm_trigger: 16,
            shed_rate_trigger: 0.05,
            stall_trigger: 8,
            sustain_intervals: 2,
            cooldown: Duration::from_secs(10),
            drain_idle: Duration::from_secs(20),
            min_nodes: 1,
        }
    }

    #[test]
    fn first_sample_only_seeds() {
        let mut sc = AutoScaler::new(policy());
        // Massive counters on the very first observation: no baseline yet.
        let s = vec![sample("a", 1000, 500, 99, 99)];
        assert_eq!(sc.decide(Duration::from_secs(0), &s), ScaleDecision::Hold);
    }

    #[test]
    fn sustained_shedding_adds_a_provider() {
        let mut sc = AutoScaler::new(policy());
        sc.decide(Duration::from_secs(0), &[sample("a", 100, 0, 2, 0)]);
        // Interval 1: 50% shed — hot, but not sustained yet.
        assert_eq!(
            sc.decide(Duration::from_secs(1), &[sample("a", 200, 100, 2, 0)]),
            ScaleDecision::Hold
        );
        // Interval 2: still shedding — fires.
        assert_eq!(
            sc.decide(Duration::from_secs(2), &[sample("a", 300, 200, 2, 0)]),
            ScaleDecision::AddProvider {
                hottest: "a".into()
            }
        );
    }

    #[test]
    fn queue_hwm_and_lsm_stalls_also_trigger() {
        for (hwm, stalls) in [(20u64, 0u64), (0, 10)] {
            let mut sc = AutoScaler::new(policy());
            sc.decide(Duration::from_secs(0), &[sample("a", 10, 0, 0, 0)]);
            sc.decide(Duration::from_secs(1), &[sample("a", 20, 0, hwm, stalls)]);
            let d = sc.decide(
                Duration::from_secs(2),
                &[sample("a", 30, 0, hwm, stalls * 2)],
            );
            assert_eq!(
                d,
                ScaleDecision::AddProvider {
                    hottest: "a".into()
                },
                "hwm={hwm} stalls={stalls}"
            );
        }
    }

    #[test]
    fn hottest_node_is_named() {
        let mut sc = AutoScaler::new(policy());
        sc.decide(
            Duration::from_secs(0),
            &[sample("a", 100, 0, 2, 0), sample("b", 100, 0, 2, 0)],
        );
        sc.decide(
            Duration::from_secs(1),
            &[sample("a", 200, 5, 2, 0), sample("b", 200, 80, 2, 0)],
        );
        let d = sc.decide(
            Duration::from_secs(2),
            &[sample("a", 300, 10, 2, 0), sample("b", 300, 160, 2, 0)],
        );
        assert_eq!(
            d,
            ScaleDecision::AddProvider {
                hottest: "b".into()
            }
        );
    }

    #[test]
    fn cooldown_suppresses_back_to_back_actions() {
        let mut sc = AutoScaler::new(policy());
        sc.decide(Duration::from_secs(0), &[sample("a", 100, 0, 2, 0)]);
        sc.decide(Duration::from_secs(1), &[sample("a", 200, 100, 2, 0)]);
        assert!(matches!(
            sc.decide(Duration::from_secs(2), &[sample("a", 300, 200, 2, 0)]),
            ScaleDecision::AddProvider { .. }
        ));
        // Still shedding hard, but inside the 10 s cooldown.
        sc.decide(Duration::from_secs(3), &[sample("a", 400, 300, 2, 0)]);
        assert_eq!(
            sc.decide(Duration::from_secs(4), &[sample("a", 500, 400, 2, 0)]),
            ScaleDecision::Hold
        );
        // The streak kept building under the cooldown, so the first decide
        // past it fires again.
        assert!(matches!(
            sc.decide(Duration::from_secs(13), &[sample("a", 600, 500, 2, 0)]),
            ScaleDecision::AddProvider { .. }
        ));
    }

    #[test]
    fn sustained_idleness_drains_the_coldest() {
        let mut sc = AutoScaler::new(policy());
        let t = Duration::from_secs;
        sc.decide(t(0), &[sample("a", 100, 0, 2, 0), sample("b", 50, 0, 1, 0)]);
        // Idle from t=1; drain_idle is 20 s.
        for i in 1..=20 {
            let d = sc.decide(
                t(i),
                &[
                    sample("a", 100 + i, 0, 2, 0),
                    sample("b", 50, 0, 1, 0), // b admits nothing: coldest
                ],
            );
            if i < 21 && d != ScaleDecision::Hold {
                assert_eq!(
                    d,
                    ScaleDecision::DrainProvider {
                        coldest: "b".into()
                    },
                    "at t={i}"
                );
                assert!(i >= 20, "drained before drain_idle elapsed (t={i})");
                return;
            }
        }
        let d = sc.decide(
            t(21),
            &[sample("a", 122, 0, 2, 0), sample("b", 50, 0, 1, 0)],
        );
        assert_eq!(
            d,
            ScaleDecision::DrainProvider {
                coldest: "b".into()
            }
        );
    }

    #[test]
    fn never_drains_below_min_nodes() {
        let mut sc = AutoScaler::new(AutoScalePolicy {
            min_nodes: 2,
            ..policy()
        });
        let t = Duration::from_secs;
        let nodes = |adm: u64| vec![sample("a", adm, 0, 0, 0), sample("b", adm, 0, 0, 0)];
        sc.decide(t(0), &nodes(10));
        for i in 1..=60 {
            assert_eq!(sc.decide(t(i), &nodes(10 + i)), ScaleDecision::Hold);
        }
    }

    #[test]
    fn a_burst_resets_the_idle_clock() {
        let mut sc = AutoScaler::new(policy());
        let t = Duration::from_secs;
        sc.decide(t(0), &[sample("a", 100, 0, 2, 0), sample("b", 50, 0, 1, 0)]);
        for i in 1..=15 {
            sc.decide(
                t(i),
                &[sample("a", 100 + i, 0, 2, 0), sample("b", 50, 0, 1, 0)],
            );
        }
        // One shed at t=16 resets idleness; t=25 is only 9 s idle again.
        sc.decide(
            t(16),
            &[sample("a", 120, 1, 2, 0), sample("b", 50, 0, 1, 0)],
        );
        for i in 17..=25 {
            assert_eq!(
                sc.decide(
                    t(i),
                    &[sample("a", 120 + i, 0, 2, 0), sample("b", 50, 0, 1, 0)],
                ),
                ScaleDecision::Hold,
                "at t={i}"
            );
        }
    }
}
