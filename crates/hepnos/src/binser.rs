//! Compact binary serialization for products.
//!
//! The C++ HEPnOS serializes products with **Boost serialization**: a
//! non-self-describing binary format where the reader must know the type.
//! This module is the Rust analogue, built on serde: fixed-width
//! little-endian scalars, `u32`-length-prefixed strings/sequences/maps, one
//! `u8` for `Option` tags and `u32` for enum variant indices. Field names
//! are never written — like Boost, the byte stream is positional.
//!
//! # Example
//!
//! ```
//! use serde::{Serialize, Deserialize};
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Particle { x: f32, y: f32, z: f32 }
//!
//! let p = Particle { x: 1.0, y: 2.0, z: 3.0 };
//! let bytes = hepnos::binser::to_bytes(&p).unwrap();
//! assert_eq!(bytes.len(), 12); // three f32s, nothing else
//! let q: Particle = hepnos::binser::from_bytes(&bytes).unwrap();
//! assert_eq!(p, q);
//! ```

use serde::{de, ser, Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinserError(pub String);

impl fmt::Display for BinserError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "binser: {}", self.0)
    }
}

impl std::error::Error for BinserError {}

impl ser::Error for BinserError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        BinserError(msg.to_string())
    }
}

impl de::Error for BinserError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        BinserError(msg.to_string())
    }
}

/// Serialize `value` to a byte vector.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, BinserError> {
    let mut out = Vec::with_capacity(64);
    value.serialize(&mut Serializer { out: &mut out })?;
    Ok(out)
}

/// Deserialize a `T` from `bytes`; the entire input must be consumed.
pub fn from_bytes<'a, T: Deserialize<'a>>(bytes: &'a [u8]) -> Result<T, BinserError> {
    let mut de = Deserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(BinserError(format!(
            "{} trailing bytes after value",
            de.input.len()
        )));
    }
    Ok(value)
}

struct Serializer<'o> {
    out: &'o mut Vec<u8>,
}

impl<'o> Serializer<'o> {
    fn put_len(&mut self, len: usize) -> Result<(), BinserError> {
        let len32: u32 = len
            .try_into()
            .map_err(|_| BinserError("length exceeds u32".into()))?;
        self.out.extend_from_slice(&len32.to_le_bytes());
        Ok(())
    }
}

macro_rules! ser_scalar {
    ($name:ident, $ty:ty) => {
        fn $name(self, v: $ty) -> Result<(), BinserError> {
            self.out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
    };
}

impl<'a, 'o> ser::Serializer for &'a mut Serializer<'o> {
    type Ok = ();
    type Error = BinserError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), BinserError> {
        self.out.push(v as u8);
        Ok(())
    }

    ser_scalar!(serialize_i8, i8);
    ser_scalar!(serialize_i16, i16);
    ser_scalar!(serialize_i32, i32);
    ser_scalar!(serialize_i64, i64);
    ser_scalar!(serialize_i128, i128);
    ser_scalar!(serialize_u8, u8);
    ser_scalar!(serialize_u16, u16);
    ser_scalar!(serialize_u32, u32);
    ser_scalar!(serialize_u64, u64);
    ser_scalar!(serialize_u128, u128);
    ser_scalar!(serialize_f32, f32);
    ser_scalar!(serialize_f64, f64);

    fn serialize_char(self, v: char) -> Result<(), BinserError> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<(), BinserError> {
        self.put_len(v.len())?;
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), BinserError> {
        self.put_len(v.len())?;
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), BinserError> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), BinserError> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), BinserError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), BinserError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), BinserError> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), BinserError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), BinserError> {
        self.serialize_u32(variant_index)?;
        value.serialize(&mut *self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self, BinserError> {
        let len = len.ok_or_else(|| BinserError("sequences must have a known length".into()))?;
        self.put_len(len)?;
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self, BinserError> {
        Ok(self)
    }

    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, BinserError> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, BinserError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self, BinserError> {
        let len = len.ok_or_else(|| BinserError("maps must have a known length".into()))?;
        self.put_len(len)?;
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, BinserError> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, BinserError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
}

macro_rules! ser_compound {
    ($trait:path, $elem:ident $(, $key:ident)?) => {
        impl<'a, 'o> $trait for &'a mut Serializer<'o> {
            type Ok = ();
            type Error = BinserError;

            fn $elem<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), BinserError> {
                value.serialize(&mut **self)
            }

            $(fn $key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), BinserError> {
                key.serialize(&mut **self)
            })?

            fn end(self) -> Result<(), BinserError> {
                Ok(())
            }
        }
    };
}

ser_compound!(ser::SerializeSeq, serialize_element);
ser_compound!(ser::SerializeTuple, serialize_element);
ser_compound!(ser::SerializeTupleStruct, serialize_field);
ser_compound!(ser::SerializeTupleVariant, serialize_field);
ser_compound!(ser::SerializeMap, serialize_value, serialize_key);

impl<'a, 'o> ser::SerializeStruct for &'a mut Serializer<'o> {
    type Ok = ();
    type Error = BinserError;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), BinserError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), BinserError> {
        Ok(())
    }
}

impl<'a, 'o> ser::SerializeStructVariant for &'a mut Serializer<'o> {
    type Ok = ();
    type Error = BinserError;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), BinserError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), BinserError> {
        Ok(())
    }
}

struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], BinserError> {
        if self.input.len() < n {
            return Err(BinserError(format!(
                "unexpected end of input: wanted {n} bytes, have {}",
                self.input.len()
            )));
        }
        let (head, rest) = self.input.split_at(n);
        self.input = rest;
        Ok(head)
    }

    fn take_len(&mut self) -> Result<usize, BinserError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize)
    }
}

macro_rules! de_scalar {
    ($name:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $name<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, BinserError> {
            let b = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(b.try_into().expect("fixed width")))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = BinserError;

    fn deserialize_any<V: de::Visitor<'de>>(self, _visitor: V) -> Result<V::Value, BinserError> {
        Err(BinserError(
            "binser is not self-describing; deserialize_any unsupported".into(),
        ))
    }

    fn deserialize_bool<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, BinserError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(BinserError(format!("invalid bool byte {b}"))),
        }
    }

    de_scalar!(deserialize_i8, visit_i8, i8, 1);
    de_scalar!(deserialize_i16, visit_i16, i16, 2);
    de_scalar!(deserialize_i32, visit_i32, i32, 4);
    de_scalar!(deserialize_i64, visit_i64, i64, 8);
    de_scalar!(deserialize_i128, visit_i128, i128, 16);
    de_scalar!(deserialize_u8, visit_u8, u8, 1);
    de_scalar!(deserialize_u16, visit_u16, u16, 2);
    de_scalar!(deserialize_u32, visit_u32, u32, 4);
    de_scalar!(deserialize_u64, visit_u64, u64, 8);
    de_scalar!(deserialize_u128, visit_u128, u128, 16);
    de_scalar!(deserialize_f32, visit_f32, f32, 4);
    de_scalar!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_char<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, BinserError> {
        let b = self.take(4)?;
        let code = u32::from_le_bytes(b.try_into().expect("4 bytes"));
        let c =
            char::from_u32(code).ok_or_else(|| BinserError(format!("invalid char code {code}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, BinserError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|e| BinserError(e.to_string()))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, BinserError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, BinserError> {
        let len = self.take_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: de::Visitor<'de>>(
        self,
        visitor: V,
    ) -> Result<V::Value, BinserError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, BinserError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(BinserError(format!("invalid option tag {b}"))),
        }
    }

    fn deserialize_unit<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, BinserError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, BinserError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, BinserError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, BinserError> {
        let len = self.take_len()?;
        visitor.visit_seq(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple<V: de::Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, BinserError> {
        visitor.visit_seq(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, BinserError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, BinserError> {
        let len = self.take_len()?;
        visitor.visit_map(Counted {
            de: self,
            left: len,
        })
    }

    fn deserialize_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, BinserError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, BinserError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: de::Visitor<'de>>(
        self,
        _visitor: V,
    ) -> Result<V::Value, BinserError> {
        Err(BinserError("binser does not encode identifiers".into()))
    }

    fn deserialize_ignored_any<V: de::Visitor<'de>>(
        self,
        _visitor: V,
    ) -> Result<V::Value, BinserError> {
        Err(BinserError(
            "cannot skip values in a non-self-describing format".into(),
        ))
    }
}

struct Counted<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    left: usize,
}

impl<'a, 'de> de::SeqAccess<'de> for Counted<'a, 'de> {
    type Error = BinserError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, BinserError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

impl<'a, 'de> de::MapAccess<'de> for Counted<'a, 'de> {
    type Error = BinserError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, BinserError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, BinserError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = BinserError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), BinserError> {
        let b = self.de.take(4)?;
        let index = u32::from_le_bytes(b.try_into().expect("4 bytes"));
        let value = seed.deserialize(de::value::U32Deserializer::<BinserError>::new(index))?;
        Ok((value, self))
    }
}

impl<'a, 'de> de::VariantAccess<'de> for EnumAccess<'a, 'de> {
    type Error = BinserError;

    fn unit_variant(self) -> Result<(), BinserError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, BinserError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: de::Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, BinserError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: de::Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, BinserError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn round_trip<T: Serialize + for<'a> Deserialize<'a> + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = to_bytes(v).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn scalars() {
        round_trip(&true);
        round_trip(&false);
        round_trip(&42u8);
        round_trip(&-7i64);
        round_trip(&3.5f32);
        round_trip(&f64::MIN_POSITIVE);
        round_trip(&u128::MAX);
        round_trip(&'é');
    }

    #[test]
    fn strings_and_bytes() {
        round_trip(&String::from("neutrino"));
        round_trip(&String::new());
        round_trip(&vec![0u8, 255, 7]);
    }

    #[test]
    fn options_and_units() {
        round_trip(&Some(99u32));
        round_trip(&Option::<u32>::None);
        round_trip(&());
        round_trip(&Some(Some(1u8)));
    }

    #[test]
    fn sequences_and_maps() {
        round_trip(&vec![1u64, 2, 3]);
        round_trip(&Vec::<String>::new());
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1i32, 2]);
        m.insert("b".to_string(), vec![]);
        round_trip(&m);
        round_trip(&(1u8, String::from("two"), 3.0f64));
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Particle {
        x: f32,
        y: f32,
        z: f32,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Slice {
        id: u64,
        hits: Vec<u32>,
        energy: f64,
        label: Option<String>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Reco {
        Empty,
        Track { length: f64, hits: u32 },
        Shower(f64),
        Pair(u8, u8),
    }

    #[test]
    fn structs_like_the_paper_listing() {
        // The paper's Listing 1 stores a std::vector<Particle>.
        let vp = vec![
            Particle {
                x: 1.0,
                y: 2.0,
                z: 3.0,
            },
            Particle {
                x: -1.0,
                y: 0.5,
                z: 9.75,
            },
        ];
        let bytes = to_bytes(&vp).unwrap();
        // 4 (len) + 2 * 12 bytes: as tight as Boost binary archives.
        assert_eq!(bytes.len(), 4 + 24);
        round_trip(&vp);
    }

    #[test]
    fn nested_structs() {
        round_trip(&Slice {
            id: 9,
            hits: vec![1, 2, 3],
            energy: 2.5,
            label: Some("numu".into()),
        });
    }

    #[test]
    fn enums_all_variant_shapes() {
        round_trip(&Reco::Empty);
        round_trip(&Reco::Track {
            length: 1.5,
            hits: 42,
        });
        round_trip(&Reco::Shower(0.25));
        round_trip(&Reco::Pair(1, 2));
        round_trip(&vec![Reco::Empty, Reco::Shower(1.0)]);
    }

    #[test]
    fn truncated_input_fails() {
        let bytes = to_bytes(&vec![1u64, 2, 3]).unwrap();
        let err = from_bytes::<Vec<u64>>(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(err.0.contains("end of input"));
    }

    #[test]
    fn trailing_bytes_fail() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        let err = from_bytes::<u32>(&bytes).unwrap_err();
        assert!(err.0.contains("trailing"));
    }

    #[test]
    fn invalid_bool_and_option_tags_fail() {
        assert!(from_bytes::<bool>(&[2]).is_err());
        assert!(from_bytes::<Option<u8>>(&[9]).is_err());
    }

    #[test]
    fn wrong_type_is_not_silently_accepted() {
        // A 4-byte f32 cannot deserialize as a (length-prefixed) String of
        // matching length unless the bytes happen to be valid — here they
        // declare a huge length and fail.
        let bytes = to_bytes(&f32::MAX).unwrap();
        assert!(from_bytes::<String>(&bytes).is_err());
    }
}
