//! In-process deployments for tests, examples and benchmarks.
//!
//! A [`LocalDeployment`] stands in for the paper's Theta allocation: `n`
//! server "nodes" (Bedrock-bootstrapped endpoints on one shared local
//! fabric) plus a client endpoint, with a configurable network model and
//! backend.

use crate::datastore::DataStore;
use bedrock::{BackendKind, BedrockServer, ConnectionDescriptor, DbCounts, ServiceConfig};
use mercurio::local::Fabric;
use mercurio::NetworkModel;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DEPLOYMENT_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A running in-process HEPnOS deployment.
///
/// Server slots are individually killable ([`LocalDeployment::kill_server`])
/// so chaos tests can take a node down mid-workload and replaceable
/// ([`LocalDeployment::replace_server`]) so they can restore the
/// replication factor afterwards.
pub struct LocalDeployment {
    fabric: Fabric,
    servers: Vec<Option<BedrockServer>>,
    datastore: DataStore,
    descriptors: Vec<ConnectionDescriptor>,
}

/// Start `n_nodes` in-memory server nodes on an ideal network.
pub fn local_deployment(n_nodes: usize, counts: DbCounts) -> LocalDeployment {
    local_deployment_with(
        n_nodes,
        counts,
        BackendKind::Map,
        None,
        NetworkModel::default(),
    )
}

/// Start `n_nodes` in-memory nodes with chain replication: every node
/// serves the same database names, which replication groups into chains of
/// `factor` replicas (forward routes wired, clients routed).
pub fn local_deployment_replicated(
    n_nodes: usize,
    counts: DbCounts,
    factor: usize,
) -> LocalDeployment {
    local_deployment_tuned(
        n_nodes,
        counts,
        BackendKind::Map,
        None,
        NetworkModel::default(),
        |cfg| {
            cfg.replication = Some(bedrock::ReplicationConfig {
                factor,
                ..Default::default()
            });
        },
    )
}

/// Start a deployment with explicit backend, data directory (for
/// [`BackendKind::Lsm`]) and network model.
pub fn local_deployment_with(
    n_nodes: usize,
    counts: DbCounts,
    backend: BackendKind,
    data_dir: Option<PathBuf>,
    model: NetworkModel,
) -> LocalDeployment {
    local_deployment_tuned(n_nodes, counts, backend, data_dir, model, |_| {})
}

/// [`local_deployment_with`] plus a hook to adjust each node's
/// [`ServiceConfig`] before launch — how overload tests install tiny
/// admission queues and watermarks on an otherwise standard topology.
pub fn local_deployment_tuned(
    n_nodes: usize,
    counts: DbCounts,
    backend: BackendKind,
    data_dir: Option<PathBuf>,
    model: NetworkModel,
    tune: impl Fn(&mut ServiceConfig),
) -> LocalDeployment {
    assert!(n_nodes > 0, "deployment needs at least one server node");
    let id = DEPLOYMENT_COUNTER.fetch_add(1, Ordering::Relaxed);
    let fabric = Fabric::new(model);
    let mut servers = Vec::with_capacity(n_nodes);
    let mut descriptors = Vec::with_capacity(n_nodes);
    for node in 0..n_nodes {
        let node_dir = data_dir.as_ref().map(|d| d.join(format!("node{node}")));
        let mut cfg = ServiceConfig::hepnos_topology(counts, backend, node_dir);
        tune(&mut cfg);
        let server = bedrock::launch(fabric.endpoint(&format!("server{id}-{node}")), &cfg)
            .expect("deployment bootstrap failed");
        descriptors.push(server.descriptor().clone());
        servers.push(Some(server));
    }
    // Replicated deployments need their chain-forward routes wired once
    // every server's descriptor is known.
    if descriptors.iter().any(|d| d.replication.is_some()) {
        let refs: Vec<&BedrockServer> = servers.iter().flatten().collect();
        bedrock::wire_replication(&refs);
    }
    let client_ep = fabric.endpoint(&format!("client{id}"));
    let datastore = DataStore::connect(client_ep, &descriptors).expect("datastore connect failed");
    LocalDeployment {
        fabric,
        servers,
        datastore,
        descriptors,
    }
}

impl LocalDeployment {
    /// A handle to the datastore (cheap clone).
    pub fn datastore(&self) -> DataStore {
        self.datastore.clone()
    }

    /// The shared fabric, for creating extra client endpoints.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Connection descriptors of all server nodes.
    pub fn descriptors(&self) -> &[ConnectionDescriptor] {
        &self.descriptors
    }

    /// Number of server nodes (slots, including killed ones).
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// A live server by node index; `None` after [`LocalDeployment::kill_server`].
    pub fn server(&self, node: usize) -> Option<&BedrockServer> {
        self.servers[node].as_ref()
    }

    /// Kill server `node`: its endpoint stops answering (in-flight and
    /// future RPCs fail with dead-node errors), exactly what clients of a
    /// crashed provider observe. Panics if the node was already killed.
    pub fn kill_server(&mut self, node: usize) {
        let server = self.servers[node]
            .take()
            .expect("server was already killed");
        server.shutdown();
    }

    /// Fill a killed server slot with a fresh node launched from `cfg` on a
    /// new endpoint. Its databases start empty — resynchronise them from
    /// the surviving replicas (e.g. [`yokan::resync_replicas`]) and rewire
    /// with [`bedrock::wire_replication`] before routing clients at it. The
    /// replacement's descriptor replaces the dead node's in
    /// [`LocalDeployment::descriptors`]; returns the new descriptor.
    pub fn replace_server(&mut self, node: usize, cfg: &ServiceConfig) -> ConnectionDescriptor {
        assert!(self.servers[node].is_none(), "slot {node} is still live");
        let name = format!("replacement-{node}-{}", self.descriptors.len());
        let server = bedrock::launch(self.fabric.endpoint(&name), cfg)
            .expect("replacement bootstrap failed");
        let descriptor = server.descriptor().clone();
        self.descriptors[node] = descriptor.clone();
        self.servers[node] = Some(server);
        descriptor
    }

    /// Re-wire chain-forward routes on every live server from the current
    /// descriptors (after [`LocalDeployment::replace_server`]).
    pub fn rewire_replication(&self) {
        let refs: Vec<&BedrockServer> = self.servers.iter().flatten().collect();
        for s in &refs {
            bedrock::wire_replication_node(s, &self.descriptors);
        }
    }

    /// Grow the deployment: launch a fresh server node from `cfg` on a new
    /// endpoint and append its descriptor. The new node serves empty
    /// databases — it joins the *topology*, not the data; run a
    /// [`crate::rescale::Migrator`] to move keys onto it. Returns the new
    /// descriptor.
    pub fn add_server(&mut self, cfg: &ServiceConfig) -> ConnectionDescriptor {
        let node = self.servers.len();
        let name = format!("joined-{node}-{}", self.descriptors.len());
        let server =
            bedrock::launch(self.fabric.endpoint(&name), cfg).expect("join bootstrap failed");
        let descriptor = server.descriptor().clone();
        self.descriptors.push(descriptor.clone());
        self.servers.push(Some(server));
        descriptor
    }

    /// One [`crate::autoscale::NodeSample`] per live server node: its
    /// admission-control counters plus LSM write stalls/sheds summed over
    /// its databases — the [`crate::autoscale::AutoScaler`] input.
    pub fn autoscale_samples(&self) -> Vec<crate::autoscale::NodeSample> {
        let mut out = Vec::new();
        for server in self.servers.iter().flatten() {
            let mut stalls = 0u64;
            let mut sheds = 0u64;
            for (_, _, stats) in server.yokan().backend_stats() {
                stalls += stats.soft_stalls;
                sheds += stats.hard_sheds;
            }
            out.push(crate::autoscale::NodeSample {
                node: server.address().to_string(),
                overload: server.overload_stats(),
                lsm_write_stalls: stalls,
                lsm_write_sheds: sheds,
            });
        }
        out
    }

    /// Connect an additional, independent client (its own endpoint).
    pub fn connect_client(&self, name: &str) -> DataStore {
        DataStore::connect(self.fabric.endpoint(name), &self.descriptors)
            .expect("datastore connect failed")
    }

    /// [`LocalDeployment::connect_client`] with a retry policy — the client
    /// used by chaos tests that inject faults into the fabric.
    pub fn connect_client_with_retry(&self, name: &str, policy: yokan::RetryPolicy) -> DataStore {
        DataStore::connect_with_retry(self.fabric.endpoint(name), &self.descriptors, policy)
            .expect("datastore connect failed")
    }

    /// Storage counters of every database on every node, labeled
    /// `node{n}/provider{p}/{db}` — cache hit rates and shard occupancy for
    /// benchmark logging.
    pub fn backend_stats(&self) -> Vec<(String, yokan::BackendStats)> {
        let mut out = Vec::new();
        for (n, server) in self.servers.iter().enumerate() {
            let Some(server) = server else { continue };
            for (pid, name, stats) in server.yokan().backend_stats() {
                out.push((format!("node{n}/provider{pid}/{name}"), stats));
            }
        }
        out
    }

    /// Admission-control counters aggregated across every server node
    /// (all zero unless the deployment was tuned with an `overload`
    /// section).
    pub fn overload_stats(&self) -> margo::OverloadStats {
        let mut total = margo::OverloadStats::default();
        for server in self.servers.iter().flatten() {
            total.merge(&server.overload_stats());
        }
        total
    }

    /// Tear everything down.
    pub fn shutdown(self) {
        for s in self.servers.into_iter().flatten() {
            s.shutdown();
        }
        self.fabric.stop();
    }
}
