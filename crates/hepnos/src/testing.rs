//! In-process deployments for tests, examples and benchmarks.
//!
//! A [`LocalDeployment`] stands in for the paper's Theta allocation: `n`
//! server "nodes" (Bedrock-bootstrapped endpoints on one shared local
//! fabric) plus a client endpoint, with a configurable network model and
//! backend.

use crate::datastore::DataStore;
use bedrock::{BackendKind, BedrockServer, ConnectionDescriptor, DbCounts, ServiceConfig};
use mercurio::local::Fabric;
use mercurio::NetworkModel;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DEPLOYMENT_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A running in-process HEPnOS deployment.
pub struct LocalDeployment {
    fabric: Fabric,
    servers: Vec<BedrockServer>,
    datastore: DataStore,
    descriptors: Vec<ConnectionDescriptor>,
}

/// Start `n_nodes` in-memory server nodes on an ideal network.
pub fn local_deployment(n_nodes: usize, counts: DbCounts) -> LocalDeployment {
    local_deployment_with(
        n_nodes,
        counts,
        BackendKind::Map,
        None,
        NetworkModel::default(),
    )
}

/// Start a deployment with explicit backend, data directory (for
/// [`BackendKind::Lsm`]) and network model.
pub fn local_deployment_with(
    n_nodes: usize,
    counts: DbCounts,
    backend: BackendKind,
    data_dir: Option<PathBuf>,
    model: NetworkModel,
) -> LocalDeployment {
    local_deployment_tuned(n_nodes, counts, backend, data_dir, model, |_| {})
}

/// [`local_deployment_with`] plus a hook to adjust each node's
/// [`ServiceConfig`] before launch — how overload tests install tiny
/// admission queues and watermarks on an otherwise standard topology.
pub fn local_deployment_tuned(
    n_nodes: usize,
    counts: DbCounts,
    backend: BackendKind,
    data_dir: Option<PathBuf>,
    model: NetworkModel,
    tune: impl Fn(&mut ServiceConfig),
) -> LocalDeployment {
    assert!(n_nodes > 0, "deployment needs at least one server node");
    let id = DEPLOYMENT_COUNTER.fetch_add(1, Ordering::Relaxed);
    let fabric = Fabric::new(model);
    let mut servers = Vec::with_capacity(n_nodes);
    let mut descriptors = Vec::with_capacity(n_nodes);
    for node in 0..n_nodes {
        let node_dir = data_dir.as_ref().map(|d| d.join(format!("node{node}")));
        let mut cfg = ServiceConfig::hepnos_topology(counts, backend, node_dir);
        tune(&mut cfg);
        let server = bedrock::launch(fabric.endpoint(&format!("server{id}-{node}")), &cfg)
            .expect("deployment bootstrap failed");
        descriptors.push(server.descriptor().clone());
        servers.push(server);
    }
    let client_ep = fabric.endpoint(&format!("client{id}"));
    let datastore = DataStore::connect(client_ep, &descriptors).expect("datastore connect failed");
    LocalDeployment {
        fabric,
        servers,
        datastore,
        descriptors,
    }
}

impl LocalDeployment {
    /// A handle to the datastore (cheap clone).
    pub fn datastore(&self) -> DataStore {
        self.datastore.clone()
    }

    /// The shared fabric, for creating extra client endpoints.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Connection descriptors of all server nodes.
    pub fn descriptors(&self) -> &[ConnectionDescriptor] {
        &self.descriptors
    }

    /// Number of server nodes.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Connect an additional, independent client (its own endpoint).
    pub fn connect_client(&self, name: &str) -> DataStore {
        DataStore::connect(self.fabric.endpoint(name), &self.descriptors)
            .expect("datastore connect failed")
    }

    /// [`LocalDeployment::connect_client`] with a retry policy — the client
    /// used by chaos tests that inject faults into the fabric.
    pub fn connect_client_with_retry(&self, name: &str, policy: yokan::RetryPolicy) -> DataStore {
        DataStore::connect_with_retry(self.fabric.endpoint(name), &self.descriptors, policy)
            .expect("datastore connect failed")
    }

    /// Storage counters of every database on every node, labeled
    /// `node{n}/provider{p}/{db}` — cache hit rates and shard occupancy for
    /// benchmark logging.
    pub fn backend_stats(&self) -> Vec<(String, yokan::BackendStats)> {
        let mut out = Vec::new();
        for (n, server) in self.servers.iter().enumerate() {
            for (pid, name, stats) in server.yokan().backend_stats() {
                out.push((format!("node{n}/provider{pid}/{name}"), stats));
            }
        }
        out
    }

    /// Admission-control counters aggregated across every server node
    /// (all zero unless the deployment was tuned with an `overload`
    /// section).
    pub fn overload_stats(&self) -> margo::OverloadStats {
        let mut total = margo::OverloadStats::default();
        for server in &self.servers {
            total.merge(&server.overload_stats());
        }
        total
    }

    /// Tear everything down.
    pub fn shutdown(self) {
        for s in self.servers {
            s.shutdown();
        }
        self.fabric.stop();
    }
}
