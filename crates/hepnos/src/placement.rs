//! Placement of container and product keys onto databases (paper §II-C3).
//!
//! HEPnOS selects the database holding a key by *consistent hashing of the
//! parent's key*. Two consequences the paper calls out:
//!
//! 1. all direct children of a container land in one database, so iterating
//!    them needs a single database's sorted scan rather than a
//!    scatter/gather over every server;
//! 2. products of one container land in one database, so multiple products
//!    of the same event can be fetched in one batched RPC.
//!
//! Two strategies are provided: plain modulo hashing ([`ModuloPlacement`],
//! the default) and a consistent-hash ring with virtual nodes
//! ([`RingPlacement`]), which minimizes key movement when databases are
//! added or removed — the property the paper's storage-rescaling companion
//! work (Pufferscale) relies on.

/// 64-bit FNV-1a, the stable hash used for placement. Placement must be
/// identical across every client process, so we fix the algorithm rather
/// than using `DefaultHasher` (whose seeds vary per process).
pub fn stable_hash(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: a cheap, high-quality bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Strategy mapping a parent key to one of `n` databases.
pub trait Placement: Send + Sync {
    /// Index of the database responsible for children of `parent_key`.
    fn place(&self, parent_key: &[u8], n_databases: usize) -> usize;
}

/// `hash(parent) % n` — what the HEPnOS implementation effectively does for
/// a fixed set of databases.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModuloPlacement;

impl Placement for ModuloPlacement {
    fn place(&self, parent_key: &[u8], n_databases: usize) -> usize {
        assert!(n_databases > 0, "placement needs at least one database");
        (stable_hash(parent_key) % n_databases as u64) as usize
    }
}

/// Cached, sorted ring points shared across lookups.
type RingPoints = std::sync::Arc<Vec<(u64, usize)>>;

/// A consistent-hash ring with `vnodes` virtual nodes per database.
///
/// Adding or removing one database moves only ~`1/n` of the keys, unlike
/// modulo placement which reshuffles almost everything. Ring points are
/// cached per database count.
#[derive(Debug)]
pub struct RingPlacement {
    vnodes: usize,
    cache: parking_lot::Mutex<std::collections::HashMap<usize, RingPoints>>,
}

impl Clone for RingPlacement {
    fn clone(&self) -> Self {
        RingPlacement::new(self.vnodes)
    }
}

impl RingPlacement {
    /// Create a ring with the given virtual-node count (64 is a good
    /// default: ±a few percent of balance).
    pub fn new(vnodes: usize) -> RingPlacement {
        assert!(vnodes > 0, "ring needs at least one virtual node");
        RingPlacement {
            vnodes,
            cache: parking_lot::Mutex::new(std::collections::HashMap::new()),
        }
    }

    fn ring_points(&self, n: usize) -> Vec<(u64, usize)> {
        let mut points = Vec::with_capacity(n * self.vnodes);
        for db in 0..n {
            for v in 0..self.vnodes {
                // FNV disperses poorly on short low-entropy inputs, so ring
                // points use a splitmix64 finalizer for uniform placement.
                let tag = (db as u64) << 32 | v as u64;
                points.push((splitmix64(tag), db));
            }
        }
        points.sort_unstable();
        points
    }
}

impl Default for RingPlacement {
    fn default() -> Self {
        RingPlacement::new(64)
    }
}

impl Placement for RingPlacement {
    fn place(&self, parent_key: &[u8], n_databases: usize) -> usize {
        assert!(n_databases > 0, "placement needs at least one database");
        let points = {
            let mut cache = self.cache.lock();
            std::sync::Arc::clone(
                cache
                    .entry(n_databases)
                    .or_insert_with(|| std::sync::Arc::new(self.ring_points(n_databases))),
            )
        };
        let h = splitmix64(stable_hash(parent_key));
        match points.binary_search_by_key(&h, |&(p, _)| p) {
            Ok(i) => points[i].1,
            Err(i) if i == points.len() => points[0].1,
            Err(i) => points[i].1,
        }
    }
}

/// Resolve the ordered replica set responsible for children of
/// `parent_key` among a group of replica chains (one chain per logical
/// database, as built by [`yokan::build_chains`]). The placement strategy
/// picks the chain exactly as it picks a single database — placement is by
/// *logical* database, so turning replication on or off never re-places a
/// key — and the chain lists the replicas in chain order, head first.
pub fn place_replica_set<'a>(
    placement: &dyn Placement,
    parent_key: &[u8],
    chains: &'a [Vec<yokan::DbTarget>],
) -> &'a [yokan::DbTarget] {
    assert!(!chains.is_empty(), "placement needs at least one database");
    &chains[placement.place(parent_key, chains.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_stable() {
        // Fixed expectations guard against accidental algorithm changes,
        // which would silently re-place every key in an existing deployment.
        assert_eq!(stable_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(stable_hash(b"hepnos"), stable_hash(b"hepnos"));
        assert_ne!(stable_hash(b"a"), stable_hash(b"b"));
    }

    #[test]
    fn modulo_is_deterministic_and_in_range() {
        let p = ModuloPlacement;
        for n in [1usize, 2, 7, 16] {
            for key in [b"".as_slice(), b"x", b"some longer parent key"] {
                let i = p.place(key, n);
                assert!(i < n);
                assert_eq!(i, p.place(key, n));
            }
        }
    }

    #[test]
    fn modulo_spreads_keys() {
        let p = ModuloPlacement;
        let n = 8;
        let mut counts = vec![0usize; n];
        for i in 0..8000u32 {
            counts[p.place(&i.to_be_bytes(), n)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn ring_is_deterministic_and_in_range() {
        let p = RingPlacement::default();
        for n in [1usize, 3, 8] {
            for key in [b"a".as_slice(), b"bb", b"ccc"] {
                let i = p.place(key, n);
                assert!(i < n);
                assert_eq!(i, p.place(key, n));
            }
        }
    }

    #[test]
    fn ring_spreads_keys_reasonably() {
        let p = RingPlacement::new(128);
        let n = 8;
        let mut counts = vec![0usize; n];
        for i in 0..8000u32 {
            counts[p.place(&i.to_be_bytes(), n)] += 1;
        }
        for &c in &counts {
            assert!((400..1800).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn ring_moves_few_keys_on_growth() {
        let p = RingPlacement::new(128);
        let keys: Vec<Vec<u8>> = (0..4000u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let before: Vec<usize> = keys.iter().map(|k| p.place(k, 8)).collect();
        let after: Vec<usize> = keys.iter().map(|k| p.place(k, 9)).collect();
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        // Ideal is 1/9 ≈ 11%; allow up to 25%. Modulo placement would move
        // ~8/9 ≈ 89%.
        assert!(
            moved < keys.len() / 4,
            "ring moved {moved}/{} keys",
            keys.len()
        );
        let modulo_moved = keys
            .iter()
            .filter(|k| ModuloPlacement.place(k, 8) != ModuloPlacement.place(k, 9))
            .count();
        assert!(modulo_moved > keys.len() / 2);
    }

    #[test]
    #[should_panic(expected = "at least one database")]
    fn zero_databases_panics() {
        ModuloPlacement.place(b"x", 0);
    }

    #[test]
    fn replica_set_agrees_with_single_database_placement() {
        // 4 logical databases, each a 2-member chain across two nodes.
        let chains: Vec<Vec<yokan::DbTarget>> = (0..4)
            .map(|db| {
                vec![
                    yokan::DbTarget::new("node0", db as u16, format!("events_{db}")),
                    yokan::DbTarget::new("node1", db as u16, format!("events_{db}")),
                ]
            })
            .collect();
        let p = ModuloPlacement;
        for key in [b"a".as_slice(), b"bb", b"some parent key"] {
            let set = place_replica_set(&p, key, &chains);
            assert_eq!(set.len(), 2);
            // Same logical index as unreplicated placement over the heads.
            assert_eq!(set[0], chains[p.place(key, chains.len())][0]);
            // Head first, and every member serves the same logical database.
            assert_eq!(set[0].db, set[1].db);
        }
    }
}
