//! HEPnOS error type.

use std::fmt;
use yokan::YokanError;

/// Errors surfaced by the HEPnOS API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HepnosError {
    /// The referenced dataset does not exist.
    NoSuchDataset(String),
    /// The referenced run/subrun/event does not exist.
    NoSuchContainer(String),
    /// A container with this name/number already exists.
    AlreadyExists(String),
    /// A dataset path was syntactically invalid (empty component, ...).
    InvalidPath(String),
    /// A product label used a reserved character.
    InvalidLabel(String),
    /// Product (de)serialization failed.
    Serialization(String),
    /// The underlying storage service failed.
    Storage(YokanError),
    /// The deployment topology is unusable (no databases of a needed kind).
    Topology(String),
}

impl fmt::Display for HepnosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HepnosError::NoSuchDataset(p) => write!(f, "no such dataset: {p}"),
            HepnosError::NoSuchContainer(c) => write!(f, "no such container: {c}"),
            HepnosError::AlreadyExists(c) => write!(f, "already exists: {c}"),
            HepnosError::InvalidPath(p) => write!(f, "invalid dataset path: {p}"),
            HepnosError::InvalidLabel(l) => {
                write!(f, "invalid product label (must not contain '#'): {l}")
            }
            HepnosError::Serialization(m) => write!(f, "serialization error: {m}"),
            HepnosError::Storage(e) => write!(f, "storage error: {e}"),
            HepnosError::Topology(m) => write!(f, "topology error: {m}"),
        }
    }
}

impl std::error::Error for HepnosError {}

impl From<YokanError> for HepnosError {
    fn from(e: YokanError) -> Self {
        HepnosError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(HepnosError::NoSuchDataset("/a/b".into())
            .to_string()
            .contains("/a/b"));
        assert!(HepnosError::Storage(YokanError::NoSuchProvider(3))
            .to_string()
            .contains("provider"));
    }
}
