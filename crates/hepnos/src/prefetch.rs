//! Standalone product prefetching for sequential iteration (paper §II-D:
//! "The ParallelEventProcessor object also takes care of prefetching
//! products associated with an event if requested by the program" — this
//! module offers the same capability to plain, single-threaded iteration).
//!
//! A [`Prefetcher`] is configured with the `(label, type)` pairs to fetch;
//! given a slice of events it groups the product keys by their home
//! database and issues one batched `get_multi` per database, turning
//! `N_events × N_labels` RPCs into `~N_databases`.

use crate::datastore::{DataStore, Event, ProductLabel};
use crate::error::HepnosError;
use crate::keys;
use crate::pep::PrefetchedEvent;
use std::collections::HashMap;

/// Batched product loader for sequential event iteration.
pub struct Prefetcher {
    store: DataStore,
    labels: Vec<(ProductLabel, String)>,
}

impl Prefetcher {
    /// Create a prefetcher over `store` with no labels (add with
    /// [`Prefetcher::label`]).
    pub fn new(store: &DataStore) -> Prefetcher {
        Prefetcher {
            store: store.clone(),
            labels: Vec::new(),
        }
    }

    /// Add a `(label, type)` pair to prefetch. The type name must match
    /// [`keys::short_type_name`] of the type later loaded.
    pub fn label(mut self, label: ProductLabel, type_name: impl Into<String>) -> Prefetcher {
        self.labels.push((label, type_name.into()));
        self
    }

    /// Convenience: add a label for type `T`.
    pub fn label_for<T>(self, label: ProductLabel) -> Prefetcher {
        let t = keys::short_type_name::<T>();
        self.label(label, t)
    }

    /// The configured `(label, type)` pairs.
    pub fn labels(&self) -> &[(ProductLabel, String)] {
        &self.labels
    }

    /// Fetch all configured products for `events` with batched RPCs,
    /// returning one [`PrefetchedEvent`] per input event (same order).
    pub fn fetch(&self, events: &[Event]) -> Result<Vec<PrefetchedEvent>, HepnosError> {
        let labels = std::sync::Arc::new(self.labels.clone());
        let mut products: Vec<Vec<Option<bytes::Bytes>>> =
            vec![vec![None; self.labels.len()]; events.len()];
        if !self.labels.is_empty() {
            // Group product keys by home database.
            let mut by_db: HashMap<yokan::DbTarget, Vec<(usize, usize, Vec<u8>)>> = HashMap::new();
            for (ev_idx, ev) in events.iter().enumerate() {
                let db = self.store.inner.product_db(ev.key()).clone();
                let entry = by_db.entry(db).or_default();
                for (l_idx, (label, type_name)) in self.labels.iter().enumerate() {
                    let pk = keys::product_key(ev.key(), label.as_str(), type_name);
                    entry.push((ev_idx, l_idx, pk));
                }
            }
            for (db, items) in by_db {
                let keys: Vec<Vec<u8>> = items.iter().map(|(_, _, k)| k.clone()).collect();
                let values = self.store.inner.client.get_multi(&db, &keys)?;
                for ((ev_idx, l_idx, _), value) in items.into_iter().zip(values) {
                    products[ev_idx][l_idx] = value.map(bytes::Bytes::from);
                }
            }
        }
        Ok(events
            .iter()
            .zip(products)
            .map(|(ev, prods)| {
                PrefetchedEvent::assemble(ev.clone(), prods, std::sync::Arc::clone(&labels))
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::local_deployment;
    use crate::WriteBatch;
    use bedrock::DbCounts;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Calo {
        e: f32,
    }

    #[test]
    fn fetch_serves_products_in_order() {
        let dep = local_deployment(1, DbCounts::default());
        let store = dep.datastore();
        let ds = store.root().create_dataset("pf").unwrap();
        let sr = ds.create_run(1).unwrap().create_subrun(0).unwrap();
        let label = ProductLabel::new("calo").unwrap();
        let mut batch = WriteBatch::new(&store);
        for e in 0..50u64 {
            let ev = batch.create_event(&sr, &ds.uuid().unwrap(), e).unwrap();
            batch.store(&ev, &label, &Calo { e: e as f32 }).unwrap();
        }
        batch.flush().unwrap();
        let events = sr.events().unwrap();
        let prefetcher = Prefetcher::new(&store).label_for::<Calo>(label.clone());
        let fetched = prefetcher.fetch(&events).unwrap();
        assert_eq!(fetched.len(), 50);
        for pe in &fetched {
            let c: Calo = pe.load(&label).unwrap().unwrap();
            assert_eq!(c.e, pe.event().number() as f32);
        }
        dep.shutdown();
    }

    #[test]
    fn fetch_uses_batched_rpcs() {
        let dep = local_deployment(1, DbCounts::default());
        let store = dep.datastore();
        let ds = store.root().create_dataset("pf2").unwrap();
        let sr = ds.create_run(1).unwrap().create_subrun(0).unwrap();
        let label = ProductLabel::new("calo").unwrap();
        let mut batch = WriteBatch::new(&store);
        for e in 0..200u64 {
            let ev = batch.create_event(&sr, &ds.uuid().unwrap(), e).unwrap();
            batch.store(&ev, &label, &Calo { e: 0.0 }).unwrap();
        }
        batch.flush().unwrap();
        let events = sr.events().unwrap();
        // Count client RPCs around the fetch: at most one get_multi per
        // product database (8 by default), far fewer than 200 gets.
        let before = store.endpoint_stats().requests_sent;
        let prefetcher = Prefetcher::new(&store).label_for::<Calo>(label.clone());
        prefetcher.fetch(&events).unwrap();
        let after = store.endpoint_stats().requests_sent;
        assert!(
            after - before <= 8,
            "prefetch used {} RPCs for 200 events",
            after - before
        );
        dep.shutdown();
    }

    #[test]
    fn missing_products_are_none() {
        let dep = local_deployment(1, DbCounts::default());
        let store = dep.datastore();
        let ds = store.root().create_dataset("pf3").unwrap();
        let sr = ds.create_run(1).unwrap().create_subrun(0).unwrap();
        let ev = sr.create_event(1).unwrap();
        let prefetcher =
            Prefetcher::new(&store).label_for::<Calo>(ProductLabel::new("absent").unwrap());
        let fetched = prefetcher.fetch(&[ev]).unwrap();
        let c: Option<Calo> = fetched[0]
            .load(&ProductLabel::new("absent").unwrap())
            .unwrap();
        assert_eq!(c, None);
        dep.shutdown();
    }
}
