//! Batched and asynchronous writes (paper §II-D).
//!
//! Storing millions of small products one RPC at a time is dominated by
//! per-RPC overhead. A [`WriteBatch`] accumulates container creations and
//! product stores in a local buffer, *grouped by target database* (since not
//! all updates target the same database), and ships each group as one
//! `put_multi` RPC on flush (or drop). An [`AsyncWriteBatch`] additionally
//! overlaps the flush RPCs with the caller by issuing them from an
//! [`argos::Pool`] and joining them in its destructor.

use crate::binser;
use crate::datastore::{DataSet, DataStore, Event, ProductLabel, Run, SubRun};
use crate::error::HepnosError;
use crate::keys::{self, EventNumber, RunNumber, SubRunNumber};
use argos::Pool;
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use yokan::DbTarget;

/// A resolved write destination: which database, which key.
pub(crate) struct WriteTarget {
    pub(crate) db: DbTarget,
    pub(crate) key: Vec<u8>,
}

/// Default number of queued pairs per database that triggers an eager flush.
const DEFAULT_PER_DB_LIMIT: usize = 4096;

/// Per-database buffer of queued key/value pairs.
type DbBuffers = HashMap<DbTarget, Vec<(Vec<u8>, Vec<u8>)>>;

/// A synchronous write batch: updates are buffered per target database and
/// flushed together.
pub struct WriteBatch {
    store: DataStore,
    buffers: DbBuffers,
    per_db_limit: usize,
    queued: usize,
    flushed_pairs: u64,
    flush_rpcs: u64,
}

impl WriteBatch {
    /// Create a batch writing through `store`.
    pub fn new(store: &DataStore) -> WriteBatch {
        WriteBatch {
            store: store.clone(),
            buffers: HashMap::new(),
            per_db_limit: DEFAULT_PER_DB_LIMIT,
            queued: 0,
            flushed_pairs: 0,
            flush_rpcs: 0,
        }
    }

    /// Override the per-database eager-flush limit.
    pub fn with_per_db_limit(mut self, limit: usize) -> WriteBatch {
        self.per_db_limit = limit.max(1);
        self
    }

    /// Number of currently buffered pairs.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Total pairs flushed so far.
    pub fn flushed_pairs(&self) -> u64 {
        self.flushed_pairs
    }

    /// Total `put_multi` RPCs issued so far.
    pub fn flush_rpcs(&self) -> u64 {
        self.flush_rpcs
    }

    fn push(&mut self, db: DbTarget, key: Vec<u8>, value: Vec<u8>) -> Result<(), HepnosError> {
        let buf = self.buffers.entry(db.clone()).or_default();
        buf.push((key, value));
        self.queued += 1;
        if buf.len() >= self.per_db_limit {
            let pairs = std::mem::take(self.buffers.get_mut(&db).expect("entry exists"));
            self.flush_pairs(&db, pairs)?;
        }
        Ok(())
    }

    fn flush_pairs(
        &mut self,
        db: &DbTarget,
        pairs: Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<(), HepnosError> {
        if pairs.is_empty() {
            return Ok(());
        }
        self.queued -= pairs.len();
        self.store.inner.client.put_multi(db, &pairs)?;
        // Counted only after the server acknowledged: a failed flush must
        // not report its pairs as flushed.
        self.flushed_pairs += pairs.len() as u64;
        self.flush_rpcs += 1;
        Ok(())
    }

    /// Queue creation of a run; the returned handle is usable immediately
    /// for queueing children into the same batch.
    pub fn create_run(&mut self, dataset: &DataSet, number: RunNumber) -> Result<Run, HepnosError> {
        let uuid = dataset
            .uuid()
            .ok_or_else(|| HepnosError::InvalidPath("the root dataset cannot hold runs".into()))?;
        let (db, key) = self.store.write_target_for_run(&uuid, number);
        self.push(db, key, Vec::new())?;
        // The handle is optimistic: the key is queued, not yet visible.
        dataset_run(dataset, number)
    }

    /// Queue creation of a subrun.
    pub fn create_subrun(
        &mut self,
        run: &Run,
        number: SubRunNumber,
    ) -> Result<SubRun, HepnosError> {
        let (db, key) =
            self.store
                .write_target_for_subrun(&run.dataset_uuid(), run.number(), number);
        self.push(db, key, Vec::new())?;
        run_subrun(run, number)
    }

    /// Queue creation of an event.
    pub fn create_event(
        &mut self,
        subrun: &SubRun,
        dataset: &crate::Uuid,
        number: EventNumber,
    ) -> Result<Event, HepnosError> {
        let (db, key) = self.store.write_target_for_event(
            dataset,
            subrun.run_number(),
            subrun.number(),
            number,
        );
        self.push(db, key, Vec::new())?;
        subrun_event(subrun, number)
    }

    /// Queue a typed product store on an event.
    pub fn store<T: Serialize>(
        &mut self,
        event: &Event,
        label: &ProductLabel,
        value: &T,
    ) -> Result<(), HepnosError> {
        let bytes =
            binser::to_bytes(value).map_err(|e| HepnosError::Serialization(e.to_string()))?;
        let type_name = keys::short_type_name::<T>();
        self.store_raw(event, label, &type_name, bytes)
    }

    /// Queue pre-serialized product bytes.
    pub fn store_raw(
        &mut self,
        event: &Event,
        label: &ProductLabel,
        type_name: &str,
        bytes: Vec<u8>,
    ) -> Result<(), HepnosError> {
        let target = self
            .store
            .write_target_for_product(event.key(), label, type_name);
        self.push(target.db, target.key, bytes)
    }

    /// Flush every buffered group (one `put_multi` per database).
    ///
    /// Every database is attempted even when one fails, and the first
    /// error is returned with the batch fully drained — so an error here
    /// never leaves queued pairs behind to re-fail (and panic) in `Drop`.
    pub fn flush(&mut self) -> Result<(), HepnosError> {
        let dbs: Vec<DbTarget> = self.buffers.keys().cloned().collect();
        let mut first_err = None;
        for db in dbs {
            let pairs = std::mem::take(self.buffers.get_mut(&db).expect("entry exists"));
            if let Err(e) = self.flush_pairs(&db, pairs) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for WriteBatch {
    /// Flushes remaining updates, matching the C++ semantics of sending
    /// "batch updates upon destruction".
    ///
    /// # Panics
    ///
    /// Panics if the final flush fails (data would be silently lost
    /// otherwise); call [`WriteBatch::flush`] first to handle errors.
    fn drop(&mut self) {
        if self.queued > 0 && !std::thread::panicking() {
            self.flush().expect("WriteBatch final flush failed");
        }
    }
}

// The optimistic-handle constructors below re-derive child handles without
// existence checks, since the keys are queued in this batch.
fn dataset_run(dataset: &DataSet, number: RunNumber) -> Result<Run, HepnosError> {
    // A queued run is not yet visible; build the handle directly.
    Ok(Run::unchecked(
        dataset.store_inner().clone(),
        dataset.uuid().expect("checked by caller"),
        number,
    ))
}

fn run_subrun(run: &Run, number: SubRunNumber) -> Result<SubRun, HepnosError> {
    Ok(SubRun::unchecked(run, number))
}

fn subrun_event(subrun: &SubRun, number: EventNumber) -> Result<Event, HepnosError> {
    Ok(Event::unchecked(subrun, number))
}

/// Default bound on concurrently in-flight background flushes: roughly 4×
/// the width of a typical two-xstream flush pool, enough to keep every
/// executor busy while bounding queued-handle memory.
const DEFAULT_INFLIGHT_WINDOW: usize = 8;

/// Counters describing an [`AsyncWriteBatch`]'s pipeline behaviour.
///
/// `shipped_*` counts work handed to the background pool; `acked_*` counts
/// work the server actually acknowledged. The two only converge after
/// [`AsyncWriteBatch::wait`], and diverge permanently when flushes fail —
/// reporting both is what keeps the stats honest under errors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Pairs handed to background flush tasks.
    pub shipped_pairs: u64,
    /// Pairs acknowledged by the storage service.
    pub acked_pairs: u64,
    /// `put_multi` RPCs shipped to the background pool.
    pub flush_rpcs: u64,
    /// `put_multi` RPCs acknowledged by the storage service.
    pub acked_rpcs: u64,
    /// High-water mark of concurrently in-flight flushes; bounded by the
    /// configured window.
    pub inflight_hwm: usize,
    /// Times `ship()` blocked because the in-flight window was full.
    pub backpressure_stalls: u64,
    /// Total time spent blocked on a full window.
    pub stall_time: std::time::Duration,
    /// Times the adaptive window halved after `Busy` pushback from the
    /// service (AIMD multiplicative decrease).
    pub window_shrinks: u64,
    /// Times the adaptive window re-grew by one after a cleanly
    /// acknowledged flush (AIMD additive increase).
    pub window_grows: u64,
    /// Smallest in-flight window reached during the batch's lifetime
    /// (equals the configured window when no pushback occurred; 0 only in
    /// a default-constructed snapshot).
    pub window_min: usize,
    /// In-flight window at the moment the snapshot was taken.
    pub window_final: usize,
    /// Retry behaviour of the flush RPCs issued during this batch's
    /// lifetime (all zero unless the store was connected with
    /// [`crate::DataStore::connect_with_retry`]).
    pub retry: yokan::RetryStats,
}

impl BatchStats {
    /// Fold another batch's counters into this one — used to aggregate the
    /// per-loader pipelines of a file-parallel ingest. Counters add;
    /// `inflight_hwm` takes the maximum (windows are per batch).
    pub fn merge(&mut self, other: &BatchStats) {
        self.shipped_pairs += other.shipped_pairs;
        self.acked_pairs += other.acked_pairs;
        self.flush_rpcs += other.flush_rpcs;
        self.acked_rpcs += other.acked_rpcs;
        self.inflight_hwm = self.inflight_hwm.max(other.inflight_hwm);
        self.backpressure_stalls += other.backpressure_stalls;
        self.stall_time += other.stall_time;
        self.window_shrinks += other.window_shrinks;
        self.window_grows += other.window_grows;
        // 0 means "unset" (default snapshot); a real trajectory never
        // reaches a zero window, so it must not win the minimum.
        self.window_min = match (self.window_min, other.window_min) {
            (0, w) | (w, 0) => w,
            (a, b) => a.min(b),
        };
        self.window_final = self.window_final.max(other.window_final);
        self.retry.merge(&other.retry);
    }
}

/// Recycled pair buffers and encode scratch shared with flush tasks, so a
/// long ingest reuses a bounded set of allocations instead of reallocating
/// per shipped group.
type BufferPool = Arc<Mutex<Vec<Vec<(Vec<u8>, Vec<u8>)>>>>;
type ScratchPool = Arc<Mutex<Vec<bytes::BytesMut>>>;

/// An asynchronous write batch: flushes run on an [`argos::Pool`] in the
/// background, bounded by an in-flight *window*. [`AsyncWriteBatch::store_raw`]
/// reaps completed flushes opportunistically and blocks (helping the pool)
/// when the window is full, so memory stays bounded for arbitrarily long
/// ingests and a slow service backpressures the producer instead of
/// accumulating unbounded queued work. [`AsyncWriteBatch::wait`] (or drop)
/// joins the remainder and reports the first error.
pub struct AsyncWriteBatch {
    batch: WriteBatch,
    pool: Pool,
    /// Configured (maximum) in-flight window: the AIMD ceiling.
    max_window: usize,
    /// Current adaptive window: halved on `Busy` pushback (floor 1), grown
    /// by one per cleanly acknowledged flush, never above `max_window`.
    cur_window: usize,
    /// `busy_pushbacks` counter value already accounted for, so each
    /// pushback shrinks the window exactly once.
    busy_seen: u64,
    window_shrinks: u64,
    window_grows: u64,
    window_min: usize,
    pending: std::collections::VecDeque<argos::JoinHandle<Result<(), HepnosError>>>,
    acked_pairs: Arc<std::sync::atomic::AtomicU64>,
    acked_rpcs: Arc<std::sync::atomic::AtomicU64>,
    first_error: Option<HepnosError>,
    pair_pool: BufferPool,
    scratch_pool: ScratchPool,
    inflight_hwm: usize,
    backpressure_stalls: u64,
    stall_time: std::time::Duration,
    /// Client retry counters at batch creation; `stats()` reports the delta
    /// so the batch's `retry` reflects only this batch's flushes.
    retry_baseline: yokan::RetryStats,
}

impl AsyncWriteBatch {
    /// Create an asynchronous batch flushing through `pool`.
    pub fn new(store: &DataStore, pool: Pool) -> AsyncWriteBatch {
        let retry_baseline = store.retry_stats();
        AsyncWriteBatch {
            batch: WriteBatch::new(store),
            pool,
            max_window: DEFAULT_INFLIGHT_WINDOW,
            cur_window: DEFAULT_INFLIGHT_WINDOW,
            busy_seen: retry_baseline.busy_pushbacks,
            window_shrinks: 0,
            window_grows: 0,
            window_min: DEFAULT_INFLIGHT_WINDOW,
            pending: std::collections::VecDeque::new(),
            acked_pairs: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            acked_rpcs: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            first_error: None,
            pair_pool: Arc::new(Mutex::new(Vec::new())),
            scratch_pool: Arc::new(Mutex::new(Vec::new())),
            inflight_hwm: 0,
            backpressure_stalls: 0,
            stall_time: std::time::Duration::ZERO,
            retry_baseline,
        }
    }

    /// Override the per-database eager-flush limit.
    pub fn with_per_db_limit(mut self, limit: usize) -> AsyncWriteBatch {
        self.batch.per_db_limit = limit.max(1);
        self
    }

    /// Override the in-flight flush window (minimum 1). This sets the AIMD
    /// ceiling; the effective window shrinks under overload pushback and
    /// re-grows toward this value on clean acknowledgements.
    pub fn with_inflight_window(mut self, window: usize) -> AsyncWriteBatch {
        self.max_window = window.max(1);
        self.cur_window = self.max_window;
        self.window_min = self.max_window;
        self
    }

    /// The current adaptive in-flight window.
    pub fn inflight_window(&self) -> usize {
        self.cur_window
    }

    /// Queue a typed product store (see [`WriteBatch::store`]).
    pub fn store<T: Serialize>(
        &mut self,
        event: &Event,
        label: &ProductLabel,
        value: &T,
    ) -> Result<(), HepnosError> {
        let bytes =
            binser::to_bytes(value).map_err(|e| HepnosError::Serialization(e.to_string()))?;
        let type_name = keys::short_type_name::<T>();
        self.store_raw(event, label, &type_name, bytes)
    }

    /// Queue pre-serialized product bytes; full groups are shipped in the
    /// background immediately.
    pub fn store_raw(
        &mut self,
        event: &Event,
        label: &ProductLabel,
        type_name: &str,
        bytes: Vec<u8>,
    ) -> Result<(), HepnosError> {
        let target = self
            .batch
            .store
            .write_target_for_product(event.key(), label, type_name);
        let buf = self.batch.buffers.entry(target.db.clone()).or_default();
        buf.push((target.key, bytes));
        self.batch.queued += 1;
        if buf.len() >= self.batch.per_db_limit {
            self.ship(target.db);
        }
        Ok(())
    }

    /// Queue creation of an event.
    pub fn create_event(
        &mut self,
        subrun: &SubRun,
        dataset: &crate::Uuid,
        number: EventNumber,
    ) -> Result<Event, HepnosError> {
        let (db, key) = self.batch.store.write_target_for_event(
            dataset,
            subrun.run_number(),
            subrun.number(),
            number,
        );
        let buf = self.batch.buffers.entry(db.clone()).or_default();
        buf.push((key, Vec::new()));
        self.batch.queued += 1;
        if buf.len() >= self.batch.per_db_limit {
            self.ship(db);
        }
        subrun_event(subrun, number)
    }

    /// Record one completed flush's outcome and adapt the in-flight window
    /// (AIMD): any `Busy` pushback observed since the last completion halves
    /// it (multiplicative decrease, floor 1); a clean acknowledgement with
    /// no pushback grows it by one toward the configured ceiling (additive
    /// increase).
    fn absorb(&mut self, res: Result<(), HepnosError>) {
        let busy_now = self.batch.store.retry_stats().busy_pushbacks;
        if busy_now > self.busy_seen {
            self.busy_seen = busy_now;
            let shrunk = (self.cur_window / 2).max(1);
            if shrunk < self.cur_window {
                self.cur_window = shrunk;
                self.window_shrinks += 1;
            }
            self.window_min = self.window_min.min(self.cur_window);
        } else if res.is_ok() && self.cur_window < self.max_window {
            self.cur_window += 1;
            self.window_grows += 1;
        }
        if let Err(e) = res {
            if self.first_error.is_none() {
                self.first_error = Some(e);
            }
        }
    }

    /// Reap every already-completed flush without blocking.
    fn reap_completed(&mut self) {
        for _ in 0..self.pending.len() {
            let h = self.pending.pop_front().expect("len checked");
            if h.is_finished() {
                self.absorb(h.join());
            } else {
                self.pending.push_back(h);
            }
        }
    }

    /// Block until the window has room, running queued pool tasks while
    /// waiting so a pool without dedicated executors still makes progress.
    fn stall_until_window_open(&mut self) {
        if self.pending.len() < self.cur_window {
            return;
        }
        self.backpressure_stalls += 1;
        let t0 = std::time::Instant::now();
        while self.pending.len() >= self.cur_window {
            self.reap_completed();
            if self.pending.len() < self.cur_window {
                break;
            }
            if let Some(task) = self.pool.try_pop() {
                task();
                continue;
            }
            let h = self.pending.pop_front().expect("window is full");
            match h.join_timeout(std::time::Duration::from_millis(1)) {
                Ok(res) => self.absorb(res),
                Err(h) => self.pending.push_front(h),
            }
        }
        self.stall_time += t0.elapsed();
    }

    fn ship(&mut self, db: DbTarget) {
        if self.batch.buffers.get(&db).is_none_or(|b| b.is_empty()) {
            return;
        }
        // Reap finished flushes opportunistically on every ship, and block
        // only when the in-flight window is genuinely full.
        self.reap_completed();
        self.stall_until_window_open();
        let recycled = self.pair_pool.lock().pop().unwrap_or_default();
        let pairs = std::mem::replace(
            self.batch.buffers.get_mut(&db).expect("entry exists"),
            recycled,
        );
        self.batch.queued -= pairs.len();
        self.batch.flushed_pairs += pairs.len() as u64;
        self.batch.flush_rpcs += 1;
        let client = self.batch.store.inner.client.clone();
        let acked_pairs = Arc::clone(&self.acked_pairs);
        let acked_rpcs = Arc::clone(&self.acked_rpcs);
        let pair_pool = Arc::clone(&self.pair_pool);
        let scratch_pool = Arc::clone(&self.scratch_pool);
        let handle = self.pool.spawn(move || {
            let n = pairs.len() as u64;
            // A panicking task would never set its join Eventual and hang
            // wait() forever; catch it and surface it as an error instead.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut scratch = scratch_pool.lock().pop().unwrap_or_default();
                let res = client.put_multi_with(&db, &pairs, &mut scratch);
                scratch_pool.lock().push(scratch);
                res
            }));
            let res = match outcome {
                Ok(Ok(())) => {
                    acked_pairs.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
                    acked_rpcs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    Ok(())
                }
                Ok(Err(e)) => Err(HepnosError::from(e)),
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    Err(HepnosError::Storage(yokan::YokanError::Backend(format!(
                        "background flush panicked: {msg}"
                    ))))
                }
            };
            let mut pairs = pairs;
            pairs.clear();
            pair_pool.lock().push(pairs);
            res
        });
        self.pending.push_back(handle);
        self.inflight_hwm = self.inflight_hwm.max(self.pending.len());
    }

    /// Ship every buffered group and wait for all background flushes;
    /// returns the first error encountered (including pool-side panics).
    /// Idempotent: a second call after an error returns `Ok`.
    pub fn wait(&mut self) -> Result<(), HepnosError> {
        let dbs: Vec<DbTarget> = self.batch.buffers.keys().cloned().collect();
        for db in dbs {
            self.ship(db);
        }
        while let Some(h) = self.pending.pop_front() {
            match h.join_timeout(std::time::Duration::from_millis(1)) {
                Ok(res) => self.absorb(res),
                Err(h) => {
                    self.pending.push_front(h);
                    // Help the pool drain while the oldest flush runs.
                    if let Some(task) = self.pool.try_pop() {
                        task();
                    }
                }
            }
        }
        match self.first_error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Pairs shipped to the background pool so far (see
    /// [`BatchStats::acked_pairs`] for what the service acknowledged).
    pub fn flushed_pairs(&self) -> u64 {
        self.batch.flushed_pairs
    }

    /// Number of background `put_multi` RPCs shipped.
    pub fn flush_rpcs(&self) -> u64 {
        self.batch.flush_rpcs
    }

    /// Snapshot of the pipeline counters.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            shipped_pairs: self.batch.flushed_pairs,
            acked_pairs: self.acked_pairs.load(std::sync::atomic::Ordering::Relaxed),
            flush_rpcs: self.batch.flush_rpcs,
            acked_rpcs: self.acked_rpcs.load(std::sync::atomic::Ordering::Relaxed),
            inflight_hwm: self.inflight_hwm,
            backpressure_stalls: self.backpressure_stalls,
            stall_time: self.stall_time,
            window_shrinks: self.window_shrinks,
            window_grows: self.window_grows,
            window_min: self.window_min,
            window_final: self.cur_window,
            retry: self
                .batch
                .store
                .retry_stats()
                .delta_since(&self.retry_baseline),
        }
    }
}

impl Drop for AsyncWriteBatch {
    /// Ensures "all the updates are completed when its destructor is
    /// called" (paper §II-D).
    ///
    /// # Panics
    ///
    /// Panics if a background flush failed; call [`AsyncWriteBatch::wait`]
    /// first to handle errors.
    fn drop(&mut self) {
        if !std::thread::panicking() {
            self.wait().expect("AsyncWriteBatch final wait failed");
        }
    }
}
