//! Batched and asynchronous writes (paper §II-D).
//!
//! Storing millions of small products one RPC at a time is dominated by
//! per-RPC overhead. A [`WriteBatch`] accumulates container creations and
//! product stores in a local buffer, *grouped by target database* (since not
//! all updates target the same database), and ships each group as one
//! `put_multi` RPC on flush (or drop). An [`AsyncWriteBatch`] additionally
//! overlaps the flush RPCs with the caller by issuing them from an
//! [`argos::Pool`] and joining them in its destructor.

use crate::binser;
use crate::datastore::{DataSet, DataStore, Event, ProductLabel, Run, SubRun};
use crate::error::HepnosError;
use crate::keys::{self, EventNumber, RunNumber, SubRunNumber};
use argos::Pool;
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use yokan::DbTarget;

/// A resolved write destination: which database, which key.
pub(crate) struct WriteTarget {
    pub(crate) db: DbTarget,
    pub(crate) key: Vec<u8>,
}

/// Default number of queued pairs per database that triggers an eager flush.
const DEFAULT_PER_DB_LIMIT: usize = 4096;

/// Per-database buffer of queued key/value pairs.
type DbBuffers = HashMap<DbTarget, Vec<(Vec<u8>, Vec<u8>)>>;

/// A synchronous write batch: updates are buffered per target database and
/// flushed together.
pub struct WriteBatch {
    store: DataStore,
    buffers: DbBuffers,
    per_db_limit: usize,
    queued: usize,
    flushed_pairs: u64,
    flush_rpcs: u64,
}

impl WriteBatch {
    /// Create a batch writing through `store`.
    pub fn new(store: &DataStore) -> WriteBatch {
        WriteBatch {
            store: store.clone(),
            buffers: HashMap::new(),
            per_db_limit: DEFAULT_PER_DB_LIMIT,
            queued: 0,
            flushed_pairs: 0,
            flush_rpcs: 0,
        }
    }

    /// Override the per-database eager-flush limit.
    pub fn with_per_db_limit(mut self, limit: usize) -> WriteBatch {
        self.per_db_limit = limit.max(1);
        self
    }

    /// Number of currently buffered pairs.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Total pairs flushed so far.
    pub fn flushed_pairs(&self) -> u64 {
        self.flushed_pairs
    }

    /// Total `put_multi` RPCs issued so far.
    pub fn flush_rpcs(&self) -> u64 {
        self.flush_rpcs
    }

    fn push(&mut self, db: DbTarget, key: Vec<u8>, value: Vec<u8>) -> Result<(), HepnosError> {
        let buf = self.buffers.entry(db.clone()).or_default();
        buf.push((key, value));
        self.queued += 1;
        if buf.len() >= self.per_db_limit {
            let pairs = std::mem::take(self.buffers.get_mut(&db).expect("entry exists"));
            self.flush_pairs(&db, pairs)?;
        }
        Ok(())
    }

    fn flush_pairs(
        &mut self,
        db: &DbTarget,
        pairs: Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<(), HepnosError> {
        if pairs.is_empty() {
            return Ok(());
        }
        self.queued -= pairs.len();
        self.flushed_pairs += pairs.len() as u64;
        self.flush_rpcs += 1;
        self.store.inner.client.put_multi(db, &pairs)?;
        Ok(())
    }

    /// Queue creation of a run; the returned handle is usable immediately
    /// for queueing children into the same batch.
    pub fn create_run(&mut self, dataset: &DataSet, number: RunNumber) -> Result<Run, HepnosError> {
        let uuid = dataset
            .uuid()
            .ok_or_else(|| HepnosError::InvalidPath("the root dataset cannot hold runs".into()))?;
        let (db, key) = self.store.write_target_for_run(&uuid, number);
        self.push(db, key, Vec::new())?;
        // The handle is optimistic: the key is queued, not yet visible.
        dataset_run(dataset, number)
    }

    /// Queue creation of a subrun.
    pub fn create_subrun(
        &mut self,
        run: &Run,
        number: SubRunNumber,
    ) -> Result<SubRun, HepnosError> {
        let (db, key) =
            self.store
                .write_target_for_subrun(&run.dataset_uuid(), run.number(), number);
        self.push(db, key, Vec::new())?;
        run_subrun(run, number)
    }

    /// Queue creation of an event.
    pub fn create_event(
        &mut self,
        subrun: &SubRun,
        dataset: &crate::Uuid,
        number: EventNumber,
    ) -> Result<Event, HepnosError> {
        let (db, key) = self.store.write_target_for_event(
            dataset,
            subrun.run_number(),
            subrun.number(),
            number,
        );
        self.push(db, key, Vec::new())?;
        subrun_event(subrun, number)
    }

    /// Queue a typed product store on an event.
    pub fn store<T: Serialize>(
        &mut self,
        event: &Event,
        label: &ProductLabel,
        value: &T,
    ) -> Result<(), HepnosError> {
        let bytes =
            binser::to_bytes(value).map_err(|e| HepnosError::Serialization(e.to_string()))?;
        let type_name = keys::short_type_name::<T>();
        self.store_raw(event, label, &type_name, bytes)
    }

    /// Queue pre-serialized product bytes.
    pub fn store_raw(
        &mut self,
        event: &Event,
        label: &ProductLabel,
        type_name: &str,
        bytes: Vec<u8>,
    ) -> Result<(), HepnosError> {
        let target = self
            .store
            .write_target_for_product(event.key(), label, type_name);
        self.push(target.db, target.key, bytes)
    }

    /// Flush every buffered group (one `put_multi` per database).
    pub fn flush(&mut self) -> Result<(), HepnosError> {
        let dbs: Vec<DbTarget> = self.buffers.keys().cloned().collect();
        for db in dbs {
            let pairs = std::mem::take(self.buffers.get_mut(&db).expect("entry exists"));
            self.flush_pairs(&db, pairs)?;
        }
        Ok(())
    }
}

impl Drop for WriteBatch {
    /// Flushes remaining updates, matching the C++ semantics of sending
    /// "batch updates upon destruction".
    ///
    /// # Panics
    ///
    /// Panics if the final flush fails (data would be silently lost
    /// otherwise); call [`WriteBatch::flush`] first to handle errors.
    fn drop(&mut self) {
        if self.queued > 0 && !std::thread::panicking() {
            self.flush().expect("WriteBatch final flush failed");
        }
    }
}

// The optimistic-handle constructors below re-derive child handles without
// existence checks, since the keys are queued in this batch.
fn dataset_run(dataset: &DataSet, number: RunNumber) -> Result<Run, HepnosError> {
    // A queued run is not yet visible; build the handle directly.
    Ok(Run::unchecked(
        dataset.store_inner().clone(),
        dataset.uuid().expect("checked by caller"),
        number,
    ))
}

fn run_subrun(run: &Run, number: SubRunNumber) -> Result<SubRun, HepnosError> {
    Ok(SubRun::unchecked(run, number))
}

fn subrun_event(subrun: &SubRun, number: EventNumber) -> Result<Event, HepnosError> {
    Ok(Event::unchecked(subrun, number))
}

/// An asynchronous write batch: flushes run on an [`argos::Pool`] in the
/// background; [`AsyncWriteBatch::wait`] (or drop) joins them all and
/// reports the first error.
pub struct AsyncWriteBatch {
    batch: WriteBatch,
    pool: Pool,
    pending: Vec<argos::JoinHandle<Result<(), HepnosError>>>,
    errors: Arc<Mutex<Vec<HepnosError>>>,
}

impl AsyncWriteBatch {
    /// Create an asynchronous batch flushing through `pool`.
    pub fn new(store: &DataStore, pool: Pool) -> AsyncWriteBatch {
        AsyncWriteBatch {
            batch: WriteBatch::new(store),
            pool,
            pending: Vec::new(),
            errors: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Override the per-database eager-flush limit.
    pub fn with_per_db_limit(mut self, limit: usize) -> AsyncWriteBatch {
        self.batch.per_db_limit = limit.max(1);
        self
    }

    /// Queue a typed product store (see [`WriteBatch::store`]).
    pub fn store<T: Serialize>(
        &mut self,
        event: &Event,
        label: &ProductLabel,
        value: &T,
    ) -> Result<(), HepnosError> {
        let bytes =
            binser::to_bytes(value).map_err(|e| HepnosError::Serialization(e.to_string()))?;
        let type_name = keys::short_type_name::<T>();
        self.store_raw(event, label, &type_name, bytes)
    }

    /// Queue pre-serialized product bytes; full groups are shipped in the
    /// background immediately.
    pub fn store_raw(
        &mut self,
        event: &Event,
        label: &ProductLabel,
        type_name: &str,
        bytes: Vec<u8>,
    ) -> Result<(), HepnosError> {
        let target = self
            .batch
            .store
            .write_target_for_product(event.key(), label, type_name);
        let buf = self.batch.buffers.entry(target.db.clone()).or_default();
        buf.push((target.key, bytes));
        self.batch.queued += 1;
        if buf.len() >= self.batch.per_db_limit {
            self.ship(target.db);
        }
        Ok(())
    }

    /// Queue creation of an event.
    pub fn create_event(
        &mut self,
        subrun: &SubRun,
        dataset: &crate::Uuid,
        number: EventNumber,
    ) -> Result<Event, HepnosError> {
        let (db, key) = self.batch.store.write_target_for_event(
            dataset,
            subrun.run_number(),
            subrun.number(),
            number,
        );
        let buf = self.batch.buffers.entry(db.clone()).or_default();
        buf.push((key, Vec::new()));
        self.batch.queued += 1;
        if buf.len() >= self.batch.per_db_limit {
            self.ship(db);
        }
        subrun_event(subrun, number)
    }

    fn ship(&mut self, db: DbTarget) {
        let pairs = std::mem::take(self.batch.buffers.get_mut(&db).expect("entry exists"));
        if pairs.is_empty() {
            return;
        }
        self.batch.queued -= pairs.len();
        self.batch.flushed_pairs += pairs.len() as u64;
        self.batch.flush_rpcs += 1;
        let client = self.batch.store.inner.client.clone();
        let errors = Arc::clone(&self.errors);
        let handle = self.pool.spawn(move || {
            let res = client.put_multi(&db, &pairs).map_err(HepnosError::from);
            if let Err(e) = &res {
                errors.lock().push(e.clone());
            }
            res
        });
        self.pending.push(handle);
    }

    /// Ship every buffered group and wait for all background flushes;
    /// returns the first error encountered.
    pub fn wait(&mut self) -> Result<(), HepnosError> {
        let dbs: Vec<DbTarget> = self.batch.buffers.keys().cloned().collect();
        for db in dbs {
            self.ship(db);
        }
        for h in self.pending.drain(..) {
            let _ = h.join();
        }
        let mut errs = self.errors.lock();
        if let Some(e) = errs.first().cloned() {
            errs.clear();
            return Err(e);
        }
        Ok(())
    }

    /// Pairs flushed so far (shipped to the pool).
    pub fn flushed_pairs(&self) -> u64 {
        self.batch.flushed_pairs
    }

    /// Number of background `put_multi` RPCs issued.
    pub fn flush_rpcs(&self) -> u64 {
        self.batch.flush_rpcs
    }
}

impl Drop for AsyncWriteBatch {
    /// Ensures "all the updates are completed when its destructor is
    /// called" (paper §II-D).
    ///
    /// # Panics
    ///
    /// Panics if a background flush failed; call [`AsyncWriteBatch::wait`]
    /// first to handle errors.
    fn drop(&mut self) {
        if !std::thread::panicking() {
            self.wait().expect("AsyncWriteBatch final wait failed");
        }
    }
}
