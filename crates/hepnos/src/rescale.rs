//! Storage rescaling: redistributing keys after databases are added to or
//! removed from a deployment.
//!
//! The paper's related work (§V) cites Pufferscale (ref. 27), "a technique that
//! could further improve HEPnOS's potential by allowing users to add and
//! remove storage resources to it while HEP applications are using it".
//! This module implements the data-movement half of that idea twice over:
//!
//! * [`rescale_group`] / [`rescale_group_replicated`] — the *offline* pass:
//!   stop-the-world, requires quiesced writers and an un-routed client;
//! * [`Migrator`] — the *live* pass: walks each old database in bounded
//!   key ranges under traffic. Each range goes **Frozen → Copying →
//!   Handoff → Done**: the range is frozen on the old owner (mutations
//!   touching it shed `Busy`, bounded by one batch), copied to every
//!   member of its new replica chain, then registered for handoff — from
//!   that point the old owner applies mutations locally *and* re-issues
//!   them at the new owner with the original dedup stamp, so both copies
//!   stay coherent and a client retry is deduplicated on either side.
//!   [`Migrator::finalize`] bumps the deployment's topology epoch (fencing
//!   stale writers with [`yokan::YokanError::WrongEpoch`]), runs an
//!   idempotent convergence pass for keys that slipped in behind the
//!   copier, erases the re-homed keys from their old owners, and tears the
//!   handoff state down. Reads issued while a migration is in flight use
//!   the client's dual-read fallback (new owner first, old owner on miss —
//!   see [`yokan::YokanClient::install_dual_read`]).
//!
//! Keys are moved in batches (`put_multi` + `erase`), scanning each old
//! database with the same paging protocol the iterators use.

use crate::error::HepnosError;
use crate::keys;
use crate::placement::Placement;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use yokan::{DbTarget, YokanClient, YokanError};

/// Copied key/value pairs grouped by destination chain index.
type BatchByDest = std::collections::BTreeMap<usize, Vec<(Vec<u8>, Vec<u8>)>>;

/// Upper bound on back-to-back `Busy` retries of one range (or one
/// convergence batch) before the error is surfaced. Frozen windows are
/// bounded by one batch, so a persistent `Busy` past this many backoffs
/// means a leaked freeze or sustained overload — both worth failing on.
const MAX_BUSY_RETRIES: u32 = 100;

/// If `e` is an admission/freeze shed (`Busy`), the server's retry hint.
fn busy_backoff(e: &HepnosError) -> Option<Duration> {
    match e {
        HepnosError::Storage(YokanError::Rpc(mercurio::RpcError::Busy { retry_after })) => {
            Some(*retry_after)
        }
        _ => None,
    }
}

/// Run `op`, sleeping out bounded `Busy` sheds in place. Only safe where
/// the caller holds no freeze (anything frozen is unfrozen within one
/// batch, so the wait terminates unless the shed is pathological).
fn retry_busy<T>(mut op: impl FnMut() -> Result<T, YokanError>) -> Result<T, YokanError> {
    let mut attempts = 0u32;
    loop {
        match op() {
            Err(YokanError::Rpc(mercurio::RpcError::Busy { retry_after }))
                if attempts < MAX_BUSY_RETRIES =>
            {
                attempts += 1;
                std::thread::sleep(retry_after.max(Duration::from_millis(2)));
            }
            other => return other,
        }
    }
}

/// Outcome of one rescale pass over a database group.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RescaleStats {
    /// Keys examined.
    pub keys_scanned: u64,
    /// Keys whose home database changed (moved).
    pub keys_moved: u64,
    /// Total bytes (keys + values) actually rewritten, counted once per
    /// chain member written — a key moved onto a 2-replica chain counts
    /// its bytes twice, and a member shared between the old and new chain
    /// (written in place) still counts.
    pub bytes_moved: u64,
    /// Key ranges migrated live (Frozen→Copying→Handoff batches).
    pub ranges_migrated: u64,
    /// Reads answered by the old owner through the dual-read fallback
    /// (client-side; filled in by the tools from their retry stats).
    pub dual_reads: u64,
    /// Mutations re-issued old→new owner during Handoff (service-side;
    /// filled in by the tools from the service's migration stats).
    pub forwarded_writes: u64,
    /// Re-homed keys whose old copy was retained by the convergence pass
    /// because the destination chain could not be verified at full
    /// strength (a member dead or disagreeing). Non-zero means the move
    /// is under-replicated until finalize is re-run with every member up.
    pub under_replicated: u64,
}

impl RescaleStats {
    /// Fraction of scanned keys that had to move.
    pub fn moved_fraction(&self) -> f64 {
        if self.keys_scanned == 0 {
            0.0
        } else {
            self.keys_moved as f64 / self.keys_scanned as f64
        }
    }
}

/// How to derive a key's placement input (its parent key) from the key
/// itself, per database group.
#[derive(Debug, Clone, Copy)]
pub enum PlacementInput {
    /// Container keys: the placement input is a fixed-length prefix
    /// (32 bytes for events — the subrun key; 24 for subruns; 16 for runs).
    Prefix(usize),
    /// Product keys: the container key is a 24/32/40-byte prefix followed
    /// by `label#type`. The true length is recovered by checking which
    /// candidate explains the key's current database under the old
    /// topology (the key *was* placed by its true parent), preferring the
    /// longest candidate on ties.
    Product,
}

/// Recover the parent (container) key of a product key.
///
/// A product key is its container's key — 24 bytes for runs, 32 for
/// subruns, 40 for events — followed by `label`, [`keys::PRODUCT_SEP`] and
/// the product type name. Labels and type names may themselves contain the
/// separator byte, so several candidate prefix lengths can look plausible;
/// the candidates are tried longest first, and a candidate is accepted only
/// if placing it under the *old* topology (`n_old` databases) lands on
/// `current_db` — the database the key was actually found in. Because the
/// key really was placed by its true parent, the true candidate always
/// passes this check; the longest-first order breaks the rare ties where a
/// shorter (wrong) prefix would coincidentally place the same way.
pub fn product_parent<'k>(
    key: &'k [u8],
    current_db: usize,
    n_old: usize,
    placement: &dyn Placement,
) -> Option<&'k [u8]> {
    for len in [40usize, 32, 24] {
        if key.len() > len {
            let suffix = &key[len..];
            if suffix.contains(&keys::PRODUCT_SEP)
                && placement.place(&key[..len], n_old) == current_db
            {
                return Some(&key[..len]);
            }
        }
    }
    None
}

/// Classify one key of old chain `old_idx`: `Some(new_idx)` for the new
/// chain the key belongs to, or `None` for keys to leave alone — foreign/
/// garbage keys, and keys that already *arrived* here because this chain
/// (also part of the new group, at index `new_self`) is their new home.
/// Arrivals exist whenever a pass observes its own earlier moves: the live
/// migrator walks chains under traffic, and a resumed pass re-scans chains
/// the interrupted one already copied into.
///
/// For products both interpretations are checked per candidate parent,
/// longest first: "resident of this old database" (places here under the
/// *old* topology) wins over "arrived here as its new home" (places here
/// under the *new* topology), and the first candidate matching either
/// settles the key. Event-level products carry the longest (40-byte)
/// container, so an arrival is recognized by its true parent before any
/// shorter (wrong) candidate can claim it — misclassifying an arrival
/// as a resident would re-home it a second time and lose it.
fn classify(
    k: &[u8],
    old_idx: usize,
    n_old: usize,
    n_new: usize,
    new_self: Option<usize>,
    placement: &dyn Placement,
    input: PlacementInput,
) -> Option<usize> {
    match input {
        PlacementInput::Prefix(n) => {
            if k.len() < n {
                return None;
            }
            Some(placement.place(&k[..n], n_new))
        }
        PlacementInput::Product => {
            for len in [40usize, 32, 24] {
                if k.len() > len && k[len..].contains(&keys::PRODUCT_SEP) {
                    let cand = &k[..len];
                    if placement.place(cand, n_old) == old_idx {
                        return Some(placement.place(cand, n_new));
                    }
                    if new_self == Some(placement.place(cand, n_new)) {
                        return None;
                    }
                }
            }
            None
        }
    }
}

/// Fail when `client` has replica routes installed for any database of the
/// groups: rescaling addresses physical replicas directly, and a routed
/// client would forward each write down the chain a second time (and read
/// scans through the chain tail instead of the addressed member).
fn guard_unrouted(
    client: &YokanClient,
    old: &[Vec<DbTarget>],
    new: &[Vec<DbTarget>],
) -> Result<(), HepnosError> {
    for chain in old.iter().chain(new.iter()) {
        for t in chain {
            if client.replica_chain(&t.db).is_some() {
                return Err(HepnosError::Topology(format!(
                    "rescale requires an un-routed client, but replica routes are \
                     installed for database {} — use a fresh YokanClient without \
                     install_replica_routes",
                    t.db
                )));
            }
        }
    }
    Ok(())
}

/// Rescale one database group from `old` to `new` membership.
///
/// Both slices must be in the canonical (sorted) order the
/// [`crate::DataStore`] uses; `new` may be larger (growth) or smaller
/// (shrink) than `old`. Keys already in the right place are not touched.
pub fn rescale_group(
    client: &YokanClient,
    old: &[DbTarget],
    new: &[DbTarget],
    placement: &dyn Placement,
    input: PlacementInput,
) -> Result<RescaleStats, HepnosError> {
    let singleton =
        |ts: &[DbTarget]| -> Vec<Vec<DbTarget>> { ts.iter().map(|t| vec![t.clone()]).collect() };
    rescale_group_replicated(client, &singleton(old), &singleton(new), placement, input)
}

/// Rescale a *replicated* database group: `old` and `new` are replica
/// chains (head first, as the [`crate::DataStore`] stores them), and a
/// re-homed key moves to **every** member of its new chain and is erased
/// from every member of its old chain — so rescaling preserves the
/// replication factor instead of quietly collapsing moved keys to one
/// copy.
///
/// `client` must have **no replica routes installed**: rescale reads and
/// writes physical replicas directly (the heads are the authoritative scan
/// source), and a routed client would forward each write down the chain a
/// second time. This is enforced — a routed client is rejected with
/// [`HepnosError::Topology`]. Chain members shared between a key's old and
/// new chain are written, never erased.
pub fn rescale_group_replicated(
    client: &YokanClient,
    old: &[Vec<DbTarget>],
    new: &[Vec<DbTarget>],
    placement: &dyn Placement,
    input: PlacementInput,
) -> Result<RescaleStats, HepnosError> {
    const PAGE: usize = 1024;
    if old.is_empty()
        || new.is_empty()
        || old.iter().any(Vec::is_empty)
        || new.iter().any(Vec::is_empty)
    {
        return Err(HepnosError::Topology(
            "rescale needs non-empty old and new groups".into(),
        ));
    }
    guard_unrouted(client, old, new)?;
    let mut stats = RescaleStats::default();
    // Phase 1: scan every old chain head and classify. Applying moves only
    // after the full scan keeps the scan a consistent snapshot (a key moved
    // into a not-yet-scanned old database would otherwise be re-scanned).
    let mut moves: Vec<(usize, usize, Vec<u8>, Vec<u8>)> = Vec::new(); // (from, to, k, v)
    for (old_idx, chain) in old.iter().enumerate() {
        let db = &chain[0];
        let new_self = new.iter().position(|c| c[0].db == chain[0].db);
        let mut from: Vec<u8> = Vec::new();
        loop {
            let page = client.list_keyvals(db, &from, &[], PAGE)?;
            if page.is_empty() {
                break;
            }
            from = page.last().expect("page non-empty").0.clone();
            for (k, v) in page {
                stats.keys_scanned += 1;
                let Some(new_idx) = classify(
                    &k,
                    old_idx,
                    old.len(),
                    new.len(),
                    new_self,
                    placement,
                    input,
                ) else {
                    continue;
                };
                if new[new_idx] != *chain {
                    stats.keys_moved += 1;
                    moves.push((old_idx, new_idx, k, v));
                }
            }
        }
    }
    // Phase 2: apply, grouped per destination (one put_multi per replica of
    // it), then erase the originals from every old replica. Write-before-
    // erase means a crash in between leaves duplicates, never losses;
    // re-running the rescale converges.
    moves.sort_by_key(|(_, to, _, _)| *to);
    let mut i = 0;
    while i < moves.len() {
        let to = moves[i].1;
        let mut batch = Vec::new();
        let start = i;
        while i < moves.len() && moves[i].1 == to {
            batch.push((moves[i].2.clone(), moves[i].3.clone()));
            i += 1;
        }
        let batch_bytes: u64 = batch.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum();
        for replica in &new[to] {
            client.put_multi(replica, &batch)?;
            stats.bytes_moved += batch_bytes;
        }
        // Erase the originals, batched per source chain; a replica that is
        // also a member of the destination chain keeps the keys.
        let mut by_src: std::collections::HashMap<usize, Vec<Vec<u8>>> =
            std::collections::HashMap::new();
        for (from_idx, _, k, _) in &moves[start..i] {
            by_src.entry(*from_idx).or_default().push(k.clone());
        }
        for (from_idx, keys) in by_src {
            for replica in &old[from_idx] {
                if new[to].contains(replica) {
                    continue;
                }
                client.erase_multi(replica, &keys)?;
            }
        }
    }
    Ok(stats)
}

/// Convenience: rescale the *event* group (placement input = 32-byte subrun
/// prefix).
pub fn rescale_events(
    client: &YokanClient,
    old: &[DbTarget],
    new: &[DbTarget],
    placement: &dyn Placement,
) -> Result<RescaleStats, HepnosError> {
    rescale_group(client, old, new, placement, PlacementInput::Prefix(32))
}

/// Convenience: rescale the *product* group.
pub fn rescale_products(
    client: &YokanClient,
    old: &[DbTarget],
    new: &[DbTarget],
    placement: &dyn Placement,
) -> Result<RescaleStats, HepnosError> {
    rescale_group(client, old, new, placement, PlacementInput::Product)
}

/// Tuning for the live [`Migrator`].
#[derive(Debug, Clone)]
pub struct MigratorConfig {
    /// Keys copied per range: the unit of freezing. Larger batches move
    /// data faster; smaller batches bound how long any one mutation can be
    /// shed `Busy`.
    pub batch_keys: usize,
    /// Old chains migrated concurrently (worker threads). Each worker owns
    /// one source chain at a time, so at most this many ranges are frozen
    /// deployment-wide at any instant.
    pub max_inflight_ranges: usize,
    /// The `Busy { retry_after }` hint returned to writers that touch a
    /// frozen range.
    pub freeze_retry_after: Duration,
    /// Pause between ranges of one source chain, yielding bandwidth back
    /// to foreground traffic.
    pub range_pause: Duration,
}

impl Default for MigratorConfig {
    fn default() -> Self {
        MigratorConfig {
            batch_keys: 256,
            max_inflight_ranges: 4,
            freeze_retry_after: Duration::from_millis(5),
            range_pause: Duration::ZERO,
        }
    }
}

impl MigratorConfig {
    /// Build from a deployment's `migration` config section.
    pub fn from_bedrock(cfg: &bedrock::MigrationConfig) -> MigratorConfig {
        MigratorConfig {
            batch_keys: cfg.batch_keys.max(1),
            max_inflight_ranges: cfg.max_inflight_ranges.max(1),
            freeze_retry_after: Duration::from_millis(cfg.freeze_retry_ms),
            range_pause: Duration::from_millis(cfg.range_pause_ms),
        }
    }
}

#[derive(Default)]
struct MigratorProgress {
    keys_scanned: AtomicU64,
    keys_moved: AtomicU64,
    bytes_moved: AtomicU64,
    ranges_migrated: AtomicU64,
    under_replicated: AtomicU64,
}

/// Background live migration of one database group (see the module docs
/// for the range state machine). Construct with the *old* and *new* chain
/// groups, [`Migrator::run`] under traffic, then [`Migrator::finalize`]
/// once the copy pass is done.
///
/// `run` and `finalize` are both idempotent and crash-resumable: re-running
/// after a kill re-scans, re-copies (puts of identical pairs), and
/// re-installs handoff state, converging on the same end state.
pub struct Migrator {
    client: YokanClient,
    old: Vec<Vec<DbTarget>>,
    new: Vec<Vec<DbTarget>>,
    placement: Arc<dyn Placement>,
    input: PlacementInput,
    cfg: MigratorConfig,
    progress: Arc<MigratorProgress>,
    /// Keys handed off per old chain index, recorded as each range's
    /// handoff state is installed. The convergence pass uses this to tell
    /// keys the new owner already holds — dual-written until the handoff
    /// teardown, so the destination is authoritative and must never be
    /// overwritten with the old owner's (possibly stale) copy — from
    /// stragglers written behind the copier, which are copied if-absent.
    handed_off: Mutex<HashMap<usize, HashSet<Vec<u8>>>>,
}

impl Migrator {
    /// Create a migrator. `client` must be un-routed (enforced, exactly as
    /// for [`rescale_group_replicated`]): the migrator addresses physical
    /// replicas directly.
    pub fn new(
        client: YokanClient,
        old: Vec<Vec<DbTarget>>,
        new: Vec<Vec<DbTarget>>,
        placement: Arc<dyn Placement>,
        input: PlacementInput,
        cfg: MigratorConfig,
    ) -> Result<Migrator, HepnosError> {
        if old.is_empty()
            || new.is_empty()
            || old.iter().any(Vec::is_empty)
            || new.iter().any(Vec::is_empty)
        {
            return Err(HepnosError::Topology(
                "rescale needs non-empty old and new groups".into(),
            ));
        }
        guard_unrouted(&client, &old, &new)?;
        Ok(Migrator {
            client,
            old,
            new,
            placement,
            input,
            cfg,
            progress: Arc::new(MigratorProgress::default()),
            handed_off: Mutex::new(HashMap::new()),
        })
    }

    /// Live snapshot of the migration counters (readable from another
    /// thread while [`Migrator::run`] is in flight).
    pub fn progress(&self) -> RescaleStats {
        RescaleStats {
            keys_scanned: self.progress.keys_scanned.load(Ordering::Relaxed),
            keys_moved: self.progress.keys_moved.load(Ordering::Relaxed),
            bytes_moved: self.progress.bytes_moved.load(Ordering::Relaxed),
            ranges_migrated: self.progress.ranges_migrated.load(Ordering::Relaxed),
            dual_reads: 0,
            forwarded_writes: 0,
            under_replicated: self.progress.under_replicated.load(Ordering::Relaxed),
        }
    }

    /// Walk every old chain in bounded key ranges under traffic, copying
    /// re-homed keys to their new chains and installing handoff state on
    /// the old owners. Up to [`MigratorConfig::max_inflight_ranges`] source
    /// chains are walked concurrently. Safe to re-run after a crash or a
    /// kill — the pass converges.
    ///
    /// Dead replicas are tolerated: scans fail over to the next chain
    /// member, destination writes require at least one member of each new
    /// chain to accept, and freeze/handoff installs skip unreachable old
    /// members (at least one old member must accept, or the range fails).
    pub fn run(&self) -> Result<RescaleStats, HepnosError> {
        let queue: Mutex<Vec<usize>> = Mutex::new((0..self.old.len()).rev().collect());
        let workers = self.cfg.max_inflight_ranges.clamp(1, self.old.len());
        std::thread::scope(|scope| -> Result<(), HepnosError> {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(scope.spawn(|| -> Result<(), HepnosError> {
                    loop {
                        let Some(old_idx) = queue.lock().expect("queue lock").pop() else {
                            return Ok(());
                        };
                        self.migrate_chain(old_idx)?;
                    }
                }));
            }
            let mut first_err = None;
            for h in handles {
                if let Err(e) = h.join().expect("migrator worker panicked") {
                    first_err.get_or_insert(e);
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })?;
        Ok(self.progress())
    }

    /// Migrate one source chain, range by range.
    ///
    /// A destination write can itself be shed `Busy`: placement indices
    /// follow the chain order, so a grown topology may re-home keys from
    /// one *old* chain onto another old chain — one a concurrent worker has
    /// frozen. Holding our own freeze while waiting on theirs would
    /// deadlock two workers against each other, so on `Busy` the range is
    /// abandoned (own freeze released), backed off, and redone.
    fn migrate_chain(&self, old_idx: usize) -> Result<(), HepnosError> {
        let chain = &self.old[old_idx];
        let mut from: Vec<u8> = Vec::new();
        let mut busy_retries = 0u32;
        loop {
            // Bound the range without freezing: the page's [lo, hi] span.
            let keys = self.read_chain(chain, |t| {
                self.client.list_keys(t, &from, &[], self.cfg.batch_keys)
            })?;
            let Some(hi) = keys.last().cloned() else {
                return Ok(());
            };
            // Frozen: mutations touching [from, hi] shed Busy on every
            // reachable old member from here until the unfreeze. The full
            // scanned interval is frozen — not just the listed keys' span —
            // because the copy below re-lists from `from`: a key inserted
            // in (from, first-listed-key) after the bounding listing would
            // otherwise be copied and handed off with no shed protection,
            // so a concurrent update would land only on the old owner and
            // a concurrent erase would be resurrected by the convergence
            // pass. Re-freezing the already-migrated `from` boundary key
            // costs at most one bounded Busy shed.
            self.on_old_members(chain, |t| {
                self.client
                    .migration_freeze(t, &from, &hi, self.cfg.freeze_retry_after)
            })?;
            let outcome = self.copy_range(old_idx, &from, &hi);
            // Always unfreeze, even on a failed copy — an abandoned frozen
            // interval would shed writers forever.
            let unfreeze = self.on_old_members(chain, |t| self.client.migration_unfreeze(t));
            match outcome {
                Err(e) if busy_backoff(&e).is_some() && busy_retries < MAX_BUSY_RETRIES => {
                    unfreeze?;
                    busy_retries += 1;
                    let hint = busy_backoff(&e).expect("checked above");
                    std::thread::sleep(hint.max(Duration::from_millis(2)) * busy_retries.min(8));
                    continue; // redo the same range, freeze re-acquired
                }
                other => {
                    other?;
                    unfreeze?;
                }
            }
            busy_retries = 0;
            self.progress
                .ranges_migrated
                .fetch_add(1, Ordering::Relaxed);
            from = hi;
            if !self.cfg.range_pause.is_zero() {
                std::thread::sleep(self.cfg.range_pause);
            }
        }
    }

    /// Copying + Handoff for one frozen range `(from, hi]` of one source
    /// chain: list the stable snapshot, classify, copy re-homed pairs to
    /// every reachable member of their new chains, then register the moved
    /// keys for handoff on the old members.
    fn copy_range(&self, old_idx: usize, from: &[u8], hi: &[u8]) -> Result<(), HepnosError> {
        let chain = &self.old[old_idx];
        let new_self = self.new.iter().position(|c| c[0].db == chain[0].db);
        let mut by_dest: BatchByDest = std::collections::BTreeMap::new();
        // Re-list under the freeze, paging until past `hi`: the earlier key
        // listing only *bounded* the interval, and writers may have landed
        // more keys inside it in between — the frozen snapshot is the
        // authoritative content.
        let mut page_from = from.to_vec();
        'pages: loop {
            let page = self.read_chain(chain, |t| {
                self.client
                    .list_keyvals(t, &page_from, &[], self.cfg.batch_keys)
            })?;
            let Some(last) = page.last() else { break };
            page_from = last.0.clone();
            for (k, v) in page {
                if k.as_slice() > hi {
                    break 'pages;
                }
                self.progress.keys_scanned.fetch_add(1, Ordering::Relaxed);
                let Some(new_idx) = classify(
                    &k,
                    old_idx,
                    self.old.len(),
                    self.new.len(),
                    new_self,
                    &*self.placement,
                    self.input,
                ) else {
                    continue;
                };
                if self.new[new_idx] != *chain {
                    self.progress.keys_moved.fetch_add(1, Ordering::Relaxed);
                    by_dest.entry(new_idx).or_default().push((k, v));
                }
            }
        }
        if by_dest.is_empty() {
            return Ok(());
        }
        // Copying: write each destination's batch to every reachable
        // member of its chain; at least one member must accept.
        for (&to, batch) in &by_dest {
            let batch_bytes: u64 = batch.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum();
            let mut accepted = 0usize;
            let mut last_err: Option<YokanError> = None;
            for replica in &self.new[to] {
                match self.client.put_multi(replica, batch) {
                    Ok(()) => {
                        accepted += 1;
                        self.progress
                            .bytes_moved
                            .fetch_add(batch_bytes, Ordering::Relaxed);
                    }
                    Err(YokanError::Rpc(e)) if yokan::replica::is_dead_node(&e) => {
                        last_err = Some(YokanError::Rpc(e));
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            if accepted == 0 {
                return Err(last_err.expect("chain non-empty").into());
            }
        }
        // Handoff: register the moved keys (and their destination chains)
        // on the old members — from here mutations dual-write.
        let chains: Vec<Vec<DbTarget>> = by_dest.keys().map(|&to| self.new[to].clone()).collect();
        let entries: Vec<(Vec<u8>, usize)> = by_dest
            .values()
            .enumerate()
            .flat_map(|(ci, batch)| batch.iter().map(move |(k, _)| (k.clone(), ci)))
            .collect();
        self.on_old_members(chain, |t| {
            self.client.migration_handoff(t, &chains, &entries)
        })?;
        // From here the destination copy tracks client traffic (dual-write)
        // and the old copy can go stale — remember these keys so converge
        // never writes the old copy back over the new owner.
        let mut handed = self.handed_off.lock().expect("handed_off poisoned");
        let set = handed.entry(old_idx).or_default();
        for (k, _) in entries {
            set.insert(k);
        }
        Ok(())
    }

    /// Finalize the migration: advance the topology epoch on every node of
    /// the deployment (old and new groups) to `new_epoch` — from this
    /// instant stale writers are fenced with `WrongEpoch` — then tear down
    /// the handoff state and run an idempotent convergence pass (copying
    /// stragglers written behind the copier if-absent, auditing handed-off
    /// keys without ever overwriting the new owner, and erasing verified
    /// re-homed keys from old members that are not also members of the
    /// destination chain — see [`Migrator::converge`]). Handoff is torn
    /// down *before* the
    /// convergence erase: with dual-writes still live, the old owner would
    /// forward the erase itself to the new owner and delete the copy it is
    /// meant to preserve — and the epoch bump has already fenced every
    /// writer that still needs forwarding. Returns the epoch actually
    /// installed (the max across reachable nodes — monotonic under
    /// re-runs).
    ///
    /// The caller clears the client-side dual-read fallbacks *after* this
    /// returns: until the erase pass completes, the old owners remain a
    /// complete fallback.
    pub fn finalize(&self, new_epoch: u64) -> Result<u64, HepnosError> {
        // One epoch bump per node (the epoch is service-wide, not
        // per-provider); unreachable nodes are skipped — they are dead or
        // rejoining, and the monotonic set re-converges them later.
        let mut nodes: std::collections::BTreeMap<String, u16> = std::collections::BTreeMap::new();
        for chain in self.old.iter().chain(self.new.iter()) {
            for t in chain {
                nodes.entry(t.addr.clone()).or_insert(t.provider_id);
            }
        }
        let mut installed = new_epoch;
        for (addr, pid) in &nodes {
            match self.client.advance_service_epoch(addr, *pid, new_epoch) {
                Ok(e) => installed = installed.max(e),
                Err(YokanError::Rpc(e)) if yokan::replica::is_dead_node(&e) => {}
                Err(e) => return Err(e.into()),
            }
        }
        // Handoff teardown first: see the doc comment — a live handoff
        // would forward the convergence erase to the destination chain.
        for chain in &self.old {
            self.on_old_members(chain, |t| self.client.migration_complete(t))?;
        }
        // Convergence: with stale writers fenced and fresh writers placing
        // by the new topology, one offline-style pass moves the stragglers
        // (keys created inside already-copied ranges before the bump) and
        // erases the re-homed keys from their old owners.
        self.converge()?;
        Ok(installed)
    }

    /// The convergence pass of [`Migrator::finalize`] — a re-scan of each
    /// old chain that finishes the move without ever overwriting the new
    /// owner. Idempotent; safe to re-run.
    ///
    /// Re-homed keys found on an old owner fall in two classes:
    ///
    /// * **Handed off** (recorded in `handed_off` during the copy): the
    ///   destination copy is authoritative — it tracked client traffic via
    ///   dual-writes until the handoff teardown and has taken fresh
    ///   epoch-N traffic directly since. The old copy may be stale, so it
    ///   is *never* written back (a fresh overwrite would be clobbered and
    ///   a fresh erase resurrected); it is only erased, and only once
    ///   every destination member reports a consistent view — all holding
    ///   the key, or all having seen it erased.
    /// * **Stragglers** (written behind the copier, never handed off): the
    ///   old copy is the only one, but a fresh writer placing by the new
    ///   topology may have already recreated the key on its new owner —
    ///   so the copy is `put_if_absent` per destination member, and the
    ///   old copy erased only when every member holds the key.
    ///
    /// Keys whose destination chain cannot be verified at full strength (a
    /// member dead or disagreeing) keep their old copy — still reachable
    /// through the dual-read fallback — and bump the `under_replicated`
    /// counter so operators can re-run finalize once the chain heals.
    fn converge(&self) -> Result<(), HepnosError> {
        let handed_all = self.handed_off.lock().expect("handed_off poisoned").clone();
        for (old_idx, chain) in self.old.iter().enumerate() {
            let handed = handed_all.get(&old_idx);
            let new_self = self.new.iter().position(|c| c[0].db == chain[0].db);
            let mut from: Vec<u8> = Vec::new();
            loop {
                let page = self.read_chain(chain, |t| {
                    self.client.list_keyvals(t, &from, &[], self.cfg.batch_keys)
                })?;
                let Some(last) = page.last() else { break };
                from = last.0.clone();
                let mut by_dest: BatchByDest = std::collections::BTreeMap::new();
                for (k, v) in page {
                    let Some(new_idx) = classify(
                        &k,
                        old_idx,
                        self.old.len(),
                        self.new.len(),
                        new_self,
                        &*self.placement,
                        self.input,
                    ) else {
                        continue;
                    };
                    if self.new[new_idx] != *chain {
                        by_dest.entry(new_idx).or_default().push((k, v));
                    }
                }
                for (&to, batch) in &by_dest {
                    let dest = &self.new[to];
                    let mut erasable: Vec<Vec<u8>> = Vec::new();
                    let mut retained = 0u64;
                    let (moved, stragglers): (Vec<_>, Vec<_>) = batch
                        .iter()
                        .partition(|kv| handed.is_some_and(|s| s.contains(&kv.0)));
                    // Handed-off keys: audit, never write. Every member
                    // must agree (all present, or all erased by fresh
                    // traffic) before the old copy goes.
                    if !moved.is_empty() {
                        let keys: Vec<Vec<u8>> = moved.iter().map(|kv| kv.0.clone()).collect();
                        let mut present = vec![0usize; keys.len()];
                        let mut live = 0usize;
                        let mut dead = false;
                        for replica in dest {
                            match self.client.exists_multi_direct(replica, &keys) {
                                Ok(flags) => {
                                    live += 1;
                                    for (i, f) in flags.into_iter().enumerate() {
                                        if f {
                                            present[i] += 1;
                                        }
                                    }
                                }
                                Err(YokanError::Rpc(e)) if yokan::replica::is_dead_node(&e) => {
                                    dead = true;
                                }
                                Err(e) => return Err(e.into()),
                            }
                        }
                        for (i, k) in keys.into_iter().enumerate() {
                            if !dead && live > 0 && (present[i] == live || present[i] == 0) {
                                erasable.push(k);
                            } else {
                                retained += 1;
                            }
                        }
                    }
                    // Stragglers: copy if-absent — a fresh epoch-N write
                    // already routed to the new owner wins over the old
                    // copy. Converge holds no freeze of its own, so
                    // waiting out another worker's bounded `Busy` window
                    // in place cannot deadlock.
                    if !stragglers.is_empty() {
                        let mut ok = vec![0usize; stragglers.len()];
                        for replica in dest {
                            for (i, (k, v)) in stragglers.iter().enumerate() {
                                match retry_busy(|| self.client.put_if_absent(replica, k, v)) {
                                    Ok(prior) => {
                                        if prior.is_none() {
                                            self.progress.bytes_moved.fetch_add(
                                                (k.len() + v.len()) as u64,
                                                Ordering::Relaxed,
                                            );
                                        }
                                        ok[i] += 1;
                                    }
                                    Err(YokanError::Rpc(e)) if yokan::replica::is_dead_node(&e) => {
                                    }
                                    Err(e) => return Err(e.into()),
                                }
                            }
                        }
                        for (i, kv) in stragglers.iter().enumerate() {
                            if ok[i] == dest.len() {
                                erasable.push(kv.0.clone());
                            } else {
                                retained += 1;
                            }
                        }
                    }
                    // Erase the fully-verified keys from the old members
                    // that are not also members of the new chain.
                    if !erasable.is_empty() {
                        for replica in chain {
                            if dest.contains(replica) {
                                continue;
                            }
                            match retry_busy(|| self.client.erase_multi(replica, &erasable)) {
                                Ok(()) => {}
                                Err(YokanError::Rpc(e)) if yokan::replica::is_dead_node(&e) => {}
                                Err(e) => return Err(e.into()),
                            }
                        }
                    }
                    if retained > 0 {
                        self.progress
                            .under_replicated
                            .fetch_add(retained, Ordering::Relaxed);
                    }
                }
            }
        }
        Ok(())
    }

    /// Run `op` against the members of `chain` in order, returning the
    /// first success and failing over past dead members.
    fn read_chain<T>(
        &self,
        chain: &[DbTarget],
        op: impl Fn(&DbTarget) -> Result<T, YokanError>,
    ) -> Result<T, HepnosError> {
        let mut last: Option<YokanError> = None;
        for t in chain {
            match op(t) {
                Ok(v) => return Ok(v),
                Err(YokanError::Rpc(e)) if yokan::replica::is_dead_node(&e) => {
                    last = Some(YokanError::Rpc(e));
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(last.expect("chain non-empty").into())
    }

    /// Run `op` against every member of `chain`, skipping dead members; at
    /// least one member must accept.
    fn on_old_members(
        &self,
        chain: &[DbTarget],
        op: impl Fn(&DbTarget) -> Result<(), YokanError>,
    ) -> Result<(), HepnosError> {
        let mut accepted = 0usize;
        let mut last: Option<YokanError> = None;
        for t in chain {
            match op(t) {
                Ok(()) => accepted += 1,
                Err(YokanError::Rpc(e)) if yokan::replica::is_dead_node(&e) => {
                    last = Some(YokanError::Rpc(e));
                }
                Err(e) => return Err(e.into()),
            }
        }
        if accepted == 0 {
            return Err(last.expect("chain non-empty").into());
        }
        Ok(())
    }
}
