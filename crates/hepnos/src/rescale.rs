//! Storage rescaling: redistributing keys after databases are added to or
//! removed from a deployment.
//!
//! The paper's related work (§V) cites Pufferscale (ref. 27), "a technique that
//! could further improve HEPnOS's potential by allowing users to add and
//! remove storage resources to it while HEP applications are using it".
//! This module implements the data-movement half of that idea: given the
//! *old* and *new* database groups, every key is re-placed by its parent
//! key and moved if its home changed. Combined with
//! [`crate::placement::RingPlacement`], growth by one database moves only
//! ~1/n of the keys (see the placement tests).
//!
//! Keys are moved in batches (`put_multi` + `erase`), scanning each old
//! database with the same paging protocol the iterators use.

use crate::error::HepnosError;
use crate::keys;
use crate::placement::Placement;
use yokan::{DbTarget, YokanClient};

/// Outcome of one rescale pass over a database group.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RescaleStats {
    /// Keys examined.
    pub keys_scanned: u64,
    /// Keys whose home database changed (moved).
    pub keys_moved: u64,
    /// Total bytes (keys + values) rewritten.
    pub bytes_moved: u64,
}

impl RescaleStats {
    /// Fraction of scanned keys that had to move.
    pub fn moved_fraction(&self) -> f64 {
        if self.keys_scanned == 0 {
            0.0
        } else {
            self.keys_moved as f64 / self.keys_scanned as f64
        }
    }
}

/// How to derive a key's placement input (its parent key) from the key
/// itself, per database group.
pub enum PlacementInput {
    /// Container keys: the placement input is a fixed-length prefix
    /// (32 bytes for events — the subrun key; 24 for subruns; 16 for runs).
    Prefix(usize),
    /// Product keys: the container key is a 24/32/40-byte prefix followed
    /// by `label#type`. The true length is recovered by checking which
    /// candidate explains the key's current database under the old
    /// topology (the key *was* placed by its true parent), preferring the
    /// longest candidate on ties.
    Product,
}

fn product_parent<'k>(
    key: &'k [u8],
    current_db: usize,
    n_old: usize,
    placement: &dyn Placement,
) -> Option<&'k [u8]> {
    for len in [40usize, 32, 24] {
        if key.len() > len {
            let suffix = &key[len..];
            if suffix.contains(&keys::PRODUCT_SEP)
                && placement.place(&key[..len], n_old) == current_db
            {
                return Some(&key[..len]);
            }
        }
    }
    None
}

/// Rescale one database group from `old` to `new` membership.
///
/// Both slices must be in the canonical (sorted) order the
/// [`crate::DataStore`] uses; `new` may be larger (growth) or smaller
/// (shrink) than `old`. Keys already in the right place are not touched.
pub fn rescale_group(
    client: &YokanClient,
    old: &[DbTarget],
    new: &[DbTarget],
    placement: &dyn Placement,
    input: PlacementInput,
) -> Result<RescaleStats, HepnosError> {
    let singleton =
        |ts: &[DbTarget]| -> Vec<Vec<DbTarget>> { ts.iter().map(|t| vec![t.clone()]).collect() };
    rescale_group_replicated(client, &singleton(old), &singleton(new), placement, input)
}

/// Rescale a *replicated* database group: `old` and `new` are replica
/// chains (head first, as the [`crate::DataStore`] stores them), and a
/// re-homed key moves to **every** member of its new chain and is erased
/// from every member of its old chain — so rescaling preserves the
/// replication factor instead of quietly collapsing moved keys to one
/// copy.
///
/// `client` must have **no replica routes installed**: rescale reads and
/// writes physical replicas directly (the heads are the authoritative scan
/// source), and a routed client would forward each write down the chain a
/// second time. Chain members shared between a key's old and new chain are
/// written, never erased.
pub fn rescale_group_replicated(
    client: &YokanClient,
    old: &[Vec<DbTarget>],
    new: &[Vec<DbTarget>],
    placement: &dyn Placement,
    input: PlacementInput,
) -> Result<RescaleStats, HepnosError> {
    const PAGE: usize = 1024;
    if old.is_empty()
        || new.is_empty()
        || old.iter().any(Vec::is_empty)
        || new.iter().any(Vec::is_empty)
    {
        return Err(HepnosError::Topology(
            "rescale needs non-empty old and new groups".into(),
        ));
    }
    let mut stats = RescaleStats::default();
    // Phase 1: scan every old chain head and classify. Applying moves only
    // after the full scan keeps the scan a consistent snapshot (a key moved
    // into a not-yet-scanned old database would otherwise be re-scanned).
    let mut moves: Vec<(usize, usize, Vec<u8>, Vec<u8>)> = Vec::new(); // (from, to, k, v)
    for (old_idx, chain) in old.iter().enumerate() {
        let db = &chain[0];
        let mut from: Vec<u8> = Vec::new();
        loop {
            let page = client.list_keyvals(db, &from, &[], PAGE)?;
            if page.is_empty() {
                break;
            }
            from = page.last().expect("page non-empty").0.clone();
            for (k, v) in page {
                stats.keys_scanned += 1;
                let parent: &[u8] = match input {
                    PlacementInput::Prefix(n) => {
                        if k.len() < n {
                            // Foreign/garbage key: leave it alone.
                            continue;
                        }
                        &k[..n]
                    }
                    PlacementInput::Product => {
                        match product_parent(&k, old_idx, old.len(), placement) {
                            Some(p) => p,
                            None => continue,
                        }
                    }
                };
                let new_idx = placement.place(parent, new.len());
                if new[new_idx] != *chain {
                    stats.keys_moved += 1;
                    stats.bytes_moved += (k.len() + v.len()) as u64;
                    moves.push((old_idx, new_idx, k, v));
                }
            }
        }
    }
    // Phase 2: apply, grouped per destination (one put_multi per replica of
    // it), then erase the originals from every old replica. Write-before-
    // erase means a crash in between leaves duplicates, never losses;
    // re-running the rescale converges.
    moves.sort_by_key(|(_, to, _, _)| *to);
    let mut i = 0;
    while i < moves.len() {
        let to = moves[i].1;
        let mut batch = Vec::new();
        let start = i;
        while i < moves.len() && moves[i].1 == to {
            batch.push((moves[i].2.clone(), moves[i].3.clone()));
            i += 1;
        }
        for replica in &new[to] {
            client.put_multi(replica, &batch)?;
        }
        // Erase the originals, batched per source chain; a replica that is
        // also a member of the destination chain keeps the keys.
        let mut by_src: std::collections::HashMap<usize, Vec<Vec<u8>>> =
            std::collections::HashMap::new();
        for (from_idx, _, k, _) in &moves[start..i] {
            by_src.entry(*from_idx).or_default().push(k.clone());
        }
        for (from_idx, keys) in by_src {
            for replica in &old[from_idx] {
                if new[to].contains(replica) {
                    continue;
                }
                client.erase_multi(replica, &keys)?;
            }
        }
    }
    Ok(stats)
}

/// Convenience: rescale the *event* group (placement input = 32-byte subrun
/// prefix).
pub fn rescale_events(
    client: &YokanClient,
    old: &[DbTarget],
    new: &[DbTarget],
    placement: &dyn Placement,
) -> Result<RescaleStats, HepnosError> {
    rescale_group(client, old, new, placement, PlacementInput::Prefix(32))
}

/// Convenience: rescale the *product* group.
pub fn rescale_products(
    client: &YokanClient,
    old: &[DbTarget],
    new: &[DbTarget],
    placement: &dyn Placement,
) -> Result<RescaleStats, HepnosError> {
    rescale_group(client, old, new, placement, PlacementInput::Product)
}
