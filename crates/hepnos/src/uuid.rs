//! 128-bit identifiers for datasets.
//!
//! The paper (§II-C1) maps each dataset's full path to a UUID stored in a
//! dedicated database; all child container keys embed that UUID. We
//! implement a random (version-4-style) 16-byte identifier.

use rand::RngCore;
use std::fmt;

/// A 16-byte dataset identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uuid([u8; 16]);

impl Uuid {
    /// Size in bytes when embedded in keys.
    pub const LEN: usize = 16;

    /// Generate a fresh random UUID (v4-style: random with version/variant
    /// bits set).
    pub fn generate() -> Uuid {
        let mut bytes = [0u8; 16];
        rand::thread_rng().fill_bytes(&mut bytes);
        bytes[6] = (bytes[6] & 0x0F) | 0x40;
        bytes[8] = (bytes[8] & 0x3F) | 0x80;
        Uuid(bytes)
    }

    /// Wrap raw bytes.
    pub const fn from_bytes(bytes: [u8; 16]) -> Uuid {
        Uuid(bytes)
    }

    /// Read from a slice; `None` if it is not exactly 16 bytes.
    pub fn from_slice(s: &[u8]) -> Option<Uuid> {
        let arr: [u8; 16] = s.try_into().ok()?;
        Some(Uuid(arr))
    }

    /// The raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl fmt::Debug for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uuid({self})")
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.0.iter().enumerate() {
            if matches!(i, 4 | 6 | 8 | 10) {
                write!(f, "-")?;
            }
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generate_is_unique_enough() {
        let set: HashSet<Uuid> = (0..1000).map(|_| Uuid::generate()).collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn version_and_variant_bits() {
        let u = Uuid::generate();
        assert_eq!(u.as_bytes()[6] >> 4, 4);
        assert_eq!(u.as_bytes()[8] >> 6, 0b10);
    }

    #[test]
    fn slice_round_trip() {
        let u = Uuid::generate();
        assert_eq!(Uuid::from_slice(u.as_bytes()), Some(u));
        assert_eq!(Uuid::from_slice(&[0u8; 15]), None);
    }

    #[test]
    fn display_format() {
        let u = Uuid::from_bytes([0xAB; 16]);
        let s = u.to_string();
        assert_eq!(s.len(), 36);
        assert_eq!(s.matches('-').count(), 4);
        assert!(s.starts_with("abababab-"));
    }
}
