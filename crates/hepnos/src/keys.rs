//! Key encoding for containers and products (paper §II-C).
//!
//! * A **dataset** is identified by its full path (e.g. `fermilab/nova`);
//!   the path maps to a [`crate::Uuid`] stored in a dataset database under
//!   the key `<parent path> 0x01 <name>`, so that the direct children of a
//!   dataset form one contiguous, sorted key range.
//! * A **run** is `<dataset UUID><run number BE>`; **subruns** and
//!   **events** append further big-endian numbers. Big-endian encoding makes
//!   lexicographic order equal numeric order, which is what lets HEPnOS
//!   iterate containers with plain sorted-database scans (§II-C3).
//! * A **product** key is its container's key, followed by the label, `#`,
//!   and the product's type name.

use crate::error::HepnosError;
use crate::uuid::Uuid;

/// Run number within a dataset.
pub type RunNumber = u64;
/// Subrun number within a run.
pub type SubRunNumber = u64;
/// Event number within a subrun.
pub type EventNumber = u64;

/// Separator between a parent path and a child name in dataset keys.
/// `0x01` sorts below every printable character, keeping a parent's children
/// contiguous and ordered by name.
pub const DATASET_SEP: u8 = 0x01;

/// Separator between a product's label and its type name.
pub const PRODUCT_SEP: u8 = b'#';

/// A validated dataset path: one or more non-empty components joined by `/`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetPath {
    components: Vec<String>,
}

impl DatasetPath {
    /// Parse and validate a path like `fermilab/nova`. Leading/trailing
    /// slashes are tolerated; empty components, `#`, and control bytes are
    /// rejected (they would corrupt key framing).
    pub fn parse(path: &str) -> Result<DatasetPath, HepnosError> {
        let components: Vec<String> = path
            .split('/')
            .filter(|c| !c.is_empty())
            .map(|c| c.to_string())
            .collect();
        if components.is_empty() {
            return Err(HepnosError::InvalidPath(path.to_string()));
        }
        for c in &components {
            if c.bytes().any(|b| b == PRODUCT_SEP || b < 0x20) {
                return Err(HepnosError::InvalidPath(path.to_string()));
            }
        }
        Ok(DatasetPath { components })
    }

    /// Build from pre-validated components.
    pub fn from_components(components: Vec<String>) -> Result<DatasetPath, HepnosError> {
        Self::parse(&components.join("/"))
    }

    /// The path's components.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Last component.
    pub fn name(&self) -> &str {
        self.components.last().expect("paths are non-empty")
    }

    /// Parent path (`None` for a top-level dataset).
    pub fn parent(&self) -> Option<DatasetPath> {
        if self.components.len() <= 1 {
            None
        } else {
            Some(DatasetPath {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// Canonical string form (no leading slash).
    pub fn full(&self) -> String {
        self.components.join("/")
    }

    /// Append one component.
    pub fn child(&self, name: &str) -> Result<DatasetPath, HepnosError> {
        let mut c = self.components.clone();
        c.push(name.to_string());
        DatasetPath::from_components(c)
    }
}

impl std::fmt::Display for DatasetPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.full())
    }
}

/// The string under which a dataset is recorded: `<parent> 0x01 <name>`.
/// The root's children use an empty parent.
pub fn dataset_key(parent_full: &str, name: &str) -> Vec<u8> {
    let mut key = Vec::with_capacity(parent_full.len() + 1 + name.len());
    key.extend_from_slice(parent_full.as_bytes());
    key.push(DATASET_SEP);
    key.extend_from_slice(name.as_bytes());
    key
}

/// Prefix matching all direct children of a dataset (`""` for the root).
pub fn dataset_children_prefix(parent_full: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(parent_full.len() + 1);
    p.extend_from_slice(parent_full.as_bytes());
    p.push(DATASET_SEP);
    p
}

/// Extract the child name back out of a dataset key.
pub fn dataset_key_name(key: &[u8]) -> Option<&str> {
    let sep = key.iter().rposition(|&b| b == DATASET_SEP)?;
    std::str::from_utf8(&key[sep + 1..]).ok()
}

/// Placement input for a dataset key: its parent's full path (paper §II-C3:
/// a container key is placed by hashing the *parent's* key).
pub fn dataset_parent_bytes(parent_full: &str) -> Vec<u8> {
    parent_full.as_bytes().to_vec()
}

/// `<uuid><run BE>` — 24 bytes.
pub fn run_key(dataset: &Uuid, run: RunNumber) -> Vec<u8> {
    let mut key = Vec::with_capacity(24);
    key.extend_from_slice(dataset.as_bytes());
    key.extend_from_slice(&run.to_be_bytes());
    key
}

/// `<uuid><run BE><subrun BE>` — 32 bytes.
pub fn subrun_key(dataset: &Uuid, run: RunNumber, subrun: SubRunNumber) -> Vec<u8> {
    let mut key = run_key(dataset, run);
    key.extend_from_slice(&subrun.to_be_bytes());
    key
}

/// `<uuid><run BE><subrun BE><event BE>` — 40 bytes.
pub fn event_key(
    dataset: &Uuid,
    run: RunNumber,
    subrun: SubRunNumber,
    event: EventNumber,
) -> Vec<u8> {
    let mut key = subrun_key(dataset, run, subrun);
    key.extend_from_slice(&event.to_be_bytes());
    key
}

/// Last 8 bytes of a container key, decoded as the container's own number.
pub fn trailing_number(key: &[u8]) -> Option<u64> {
    if key.len() < 8 {
        return None;
    }
    let tail: [u8; 8] = key[key.len() - 8..].try_into().ok()?;
    Some(u64::from_be_bytes(tail))
}

/// Decode an event key into `(run, subrun, event)`.
pub fn parse_event_key(key: &[u8]) -> Option<(Uuid, RunNumber, SubRunNumber, EventNumber)> {
    if key.len() != 40 {
        return None;
    }
    let uuid = Uuid::from_slice(&key[..16])?;
    let run = u64::from_be_bytes(key[16..24].try_into().ok()?);
    let subrun = u64::from_be_bytes(key[24..32].try_into().ok()?);
    let event = u64::from_be_bytes(key[32..40].try_into().ok()?);
    Some((uuid, run, subrun, event))
}

/// `<container key><label>#<type>`.
pub fn product_key(container_key: &[u8], label: &str, type_name: &str) -> Vec<u8> {
    let mut key = Vec::with_capacity(container_key.len() + label.len() + 1 + type_name.len());
    product_key_into(&mut key, container_key, label, type_name);
    key
}

/// Append a product key to `buf` (assumed cleared). The in-place twin of
/// [`product_key`], used by the PEP readers to build per-page key batches
/// out of recycled buffers instead of a fresh allocation per key.
pub fn product_key_into(buf: &mut Vec<u8>, container_key: &[u8], label: &str, type_name: &str) {
    buf.reserve(container_key.len() + label.len() + 1 + type_name.len());
    buf.extend_from_slice(container_key);
    buf.extend_from_slice(label.as_bytes());
    buf.push(PRODUCT_SEP);
    buf.extend_from_slice(type_name.as_bytes());
}

/// A stable, human-readable type name for product keys, derived from
/// [`std::any::type_name`] with crate paths stripped (`alloc::vec::Vec<app::
/// Particle>` → `Vec<Particle>`), matching how the C++ implementation uses
/// demangled class names.
pub fn short_type_name<T: ?Sized>() -> String {
    let full = std::any::type_name::<T>();
    let mut out = String::with_capacity(full.len());
    let mut segment_start = 0usize;
    let bytes = full.as_bytes();
    for i in 0..=bytes.len() {
        let boundary = i == bytes.len()
            || matches!(
                bytes[i],
                b'<' | b'>' | b',' | b' ' | b'(' | b')' | b'[' | b']' | b';'
            );
        if boundary {
            let seg = &full[segment_start..i];
            out.push_str(seg.rsplit("::").next().unwrap_or(seg));
            if i < bytes.len() {
                out.push(bytes[i] as char);
            }
            segment_start = i + 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uuid(b: u8) -> Uuid {
        Uuid::from_bytes([b; 16])
    }

    #[test]
    fn dataset_path_parse_and_normalize() {
        let p = DatasetPath::parse("/fermilab/nova/").unwrap();
        assert_eq!(p.full(), "fermilab/nova");
        assert_eq!(p.name(), "nova");
        assert_eq!(p.parent().unwrap().full(), "fermilab");
        assert_eq!(p.parent().unwrap().parent(), None);
    }

    #[test]
    fn dataset_path_rejects_bad_input() {
        assert!(DatasetPath::parse("").is_err());
        assert!(DatasetPath::parse("///").is_err());
        assert!(DatasetPath::parse("a#b").is_err());
        assert!(DatasetPath::parse("a\x01b").is_err());
    }

    #[test]
    fn dataset_key_round_trip() {
        let k = dataset_key("fermilab", "nova");
        assert_eq!(dataset_key_name(&k), Some("nova"));
        assert!(k.starts_with(&dataset_children_prefix("fermilab")));
        // Root-level dataset:
        let k2 = dataset_key("", "fermilab");
        assert_eq!(dataset_key_name(&k2), Some("fermilab"));
    }

    #[test]
    fn sibling_datasets_share_prefix_nested_do_not() {
        let prefix = dataset_children_prefix("fermilab");
        assert!(dataset_key("fermilab", "nova").starts_with(&prefix));
        assert!(dataset_key("fermilab", "dune").starts_with(&prefix));
        assert!(!dataset_key("fermilab/nova", "mc").starts_with(&prefix));
    }

    #[test]
    fn container_key_lengths() {
        let u = uuid(7);
        assert_eq!(run_key(&u, 1).len(), 24);
        assert_eq!(subrun_key(&u, 1, 2).len(), 32);
        assert_eq!(event_key(&u, 1, 2, 3).len(), 40);
    }

    #[test]
    fn big_endian_keys_sort_numerically() {
        let u = uuid(1);
        let mut keys: Vec<Vec<u8>> = [300u64, 2, 1000, 0, 255, 256]
            .iter()
            .map(|&n| run_key(&u, n))
            .collect();
        keys.sort();
        let nums: Vec<u64> = keys.iter().map(|k| trailing_number(k).unwrap()).collect();
        assert_eq!(nums, vec![0, 2, 255, 256, 300, 1000]);
    }

    #[test]
    fn event_key_parse_round_trip() {
        let u = uuid(9);
        let k = event_key(&u, 11, 22, 33);
        assert_eq!(parse_event_key(&k), Some((u, 11, 22, 33)));
        assert_eq!(parse_event_key(&k[..39]), None);
    }

    #[test]
    fn child_keys_share_parent_prefix() {
        let u = uuid(2);
        let parent = subrun_key(&u, 5, 6);
        for ev in [0u64, 1, 99999] {
            assert!(event_key(&u, 5, 6, ev).starts_with(&parent));
        }
        // Different subrun: different prefix.
        assert!(!event_key(&u, 5, 7, 0).starts_with(&parent));
    }

    #[test]
    fn product_key_layout() {
        let u = uuid(3);
        let ck = event_key(&u, 1, 1, 4);
        let pk = product_key(&ck, "mylabel", "Particle");
        assert!(pk.starts_with(&ck));
        assert!(pk.ends_with(b"mylabel#Particle"));
    }

    #[test]
    fn short_type_names() {
        assert_eq!(short_type_name::<u32>(), "u32");
        assert_eq!(short_type_name::<Vec<u8>>(), "Vec<u8>");
        assert_eq!(short_type_name::<String>(), "String");
        assert_eq!(
            short_type_name::<std::collections::HashMap<String, Vec<u64>>>(),
            "HashMap<String, Vec<u64>>"
        );
        struct Local;
        assert!(short_type_name::<Local>().ends_with("Local"));
    }

    #[test]
    fn products_of_same_container_share_container_prefix() {
        let u = uuid(4);
        let ck = event_key(&u, 1, 2, 3);
        let p1 = product_key(&ck, "a", "T");
        let p2 = product_key(&ck, "b", "U");
        assert!(p1.starts_with(&ck) && p2.starts_with(&ck));
        assert!(p1 < p2);
    }
}
