//! `hepnos` — the High Energy Physics new Object Store.
//!
//! This crate is a from-scratch Rust reproduction of the system described in
//! *"HEPnOS: a Specialized Data Service for High Energy Physics Analysis"*
//! (IPPS 2023). HEPnOS lets HEP workflows share a dataset at **event**
//! granularity instead of **file** granularity: data lives in a distributed
//! set of key-value databases (our [`yokan`] substitute over [`mercurio`]
//! RPC), organized as a hierarchy of *datasets*, *runs*, *subruns* and
//! *events*, each of which can carry typed *products* (serialized objects).
//!
//! The key design points carried over from the paper (§II):
//!
//! * **Key encoding** — dataset paths map to UUIDs in dedicated databases;
//!   runs/subruns/events are identified by big-endian numbers appended to
//!   their parent's key, so lexicographic database order equals numeric
//!   order ([`keys`]).
//! * **Placement** — a container's key lives on the database selected by
//!   hashing its *parent's* key, so iterating a container's children touches
//!   exactly one database; products are placed by their parent container's
//!   key, enabling batched product reads ([`placement`]).
//! * **Batching** — [`WriteBatch`] accumulates updates grouped per target
//!   database and flushes them as `put_multi` RPCs; [`AsyncWriteBatch`]
//!   issues the flushes in the background via [`argos`] tasks (§II-D).
//! * **Parallel event processing** — [`ParallelEventProcessor`] gives a
//!   group of workers load-balanced, prefetched iteration over the events of
//!   a dataset: designated readers pull event batches (default 16384) from
//!   each event database and feed a shared queue drained in small dispatch
//!   batches (default 64) (§II-D, §IV-D).
//!
//! # Quickstart
//!
//! ```
//! use hepnos::{DataStore, ProductLabel};
//! use serde::{Serialize, Deserialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Particle { x: f32, y: f32, z: f32 }
//!
//! // An in-process deployment: 1 server node, in-memory backends.
//! let deployment = hepnos::testing::local_deployment(1, Default::default());
//! let datastore = deployment.datastore();
//!
//! let ds = datastore.root().create_dataset("fermilab/nova").unwrap();
//! let run = ds.create_run(43).unwrap();
//! let subrun = run.create_subrun(56).unwrap();
//! let event = subrun.create_event(25).unwrap();
//!
//! let vp = vec![Particle { x: 1.0, y: 2.0, z: 3.0 }];
//! event.store(&ProductLabel::new("mylabel").unwrap(), &vp).unwrap();
//! let loaded: Vec<Particle> = event.load(&ProductLabel::new("mylabel").unwrap()).unwrap().unwrap();
//! assert_eq!(loaded, vp);
//!
//! for subrun in run.subruns().unwrap() {
//!     assert_eq!(subrun.number(), 56);
//! }
//! # deployment.shutdown();
//! ```

#![warn(missing_docs)]

pub mod autoscale;
mod batch;
pub mod binser;
mod datastore;
mod error;
pub mod keys;
mod pep;
pub mod placement;
pub mod prefetch;
pub mod rescale;
pub mod testing;
mod uuid;

pub use autoscale::{AutoScalePolicy, AutoScaler, NodeSample, ScaleDecision};
pub use batch::{AsyncWriteBatch, BatchStats, WriteBatch};
pub use datastore::{DataSet, DataStore, Event, ProductLabel, Run, SubRun};
pub use error::HepnosError;
pub use keys::{EventNumber, RunNumber, SubRunNumber};
pub use pep::{
    EventDescriptor, ParallelEventProcessor, PepOptions, PepStatistics, PrefetchedEvent,
    ReaderStats, WorkerStats,
};
pub use prefetch::Prefetcher;
pub use uuid::Uuid;
pub use yokan::{RetryPolicy, RetryStats};
