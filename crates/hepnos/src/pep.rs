//! The `ParallelEventProcessor` (paper §II-D, §IV-B, §IV-D).
//!
//! A group of workers iterates over all events of a dataset in parallel and
//! load-balanced fashion:
//!
//! * a subset of participants act as **readers** — by default one per event
//!   database — which page event keys out of their database in large *load
//!   batches* (default 16384; "fewer RPCs but with a large data transfer
//!   payload");
//! * readers optionally **prefetch** the products associated with each
//!   loaded event (batched `get_multi` per product database);
//! * loaded events are handed to workers in small *dispatch batches*
//!   (default 64; "fine-grain load-balancing once events are loaded into
//!   worker memory");
//! * every worker invokes the user callback on each event it receives.
//!
//! The read path is an **overlapped pipeline** (the read-side twin of
//! `AsyncWriteBatch`): each reader keeps a bounded window of in-flight
//! pages. The next `list_keys` RPC is issued as soon as the current page is
//! decoded — while that page's product prefetch is still outstanding — and
//! the per-page prefetch fans out across *all* product databases
//! concurrently instead of looping database by database. Reader wall-time
//! thus tracks the *max* of the in-flight RPC latencies instead of their
//! sum. Set [`PepOptions::pipeline`] to `false` to fall back to the serial
//! one-RPC-at-a-time reader (same results, used as an A/B baseline).
//!
//! Dispatch uses one injector deque per worker with work stealing: readers
//! push batches round-robin, each worker drains its own deque first and
//! steals from the others when empty, so a slow callback on one worker
//! never serializes the rest. Delivery is exactly-once — a batch is popped
//! (or stolen) by exactly one worker.
//!
//! The paper's implementation spreads ranks over MPI; this reproduction
//! spreads workers over threads sharing the dispatch deques — the
//! scheduling structure (readers → distributed queue → workers) is
//! identical.

use crate::binser;
use crate::datastore::{DataSet, DataStore, Event, ProductLabel};
use crate::error::HepnosError;
use crate::keys::{self, EventNumber, RunNumber, SubRunNumber};
use crate::uuid::Uuid;
use bytes::Bytes;
use crossbeam::deque::{Injector, Steal};
use parking_lot::{Condvar, Mutex};
use serde::de::DeserializeOwned;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use yokan::{PendingGetMulti, PendingListKeys};

/// Plain-data identification of one event, cheap to queue and ship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventDescriptor {
    /// Owning dataset.
    pub dataset: Uuid,
    /// Run number.
    pub run: RunNumber,
    /// Subrun number.
    pub subrun: SubRunNumber,
    /// Event number.
    pub event: EventNumber,
}

/// Options mirroring the paper's tuned deployment (§IV-D).
#[derive(Debug, Clone)]
pub struct PepOptions {
    /// Events loaded from a database per `list_keys` RPC (paper: 16384).
    pub load_batch_size: usize,
    /// Events handed to a worker at a time (paper: 64).
    pub dispatch_batch_size: usize,
    /// Reader threads; `0` means one per event database (the paper's
    /// "typically as many readers as databases to read from").
    pub num_readers: usize,
    /// Worker threads invoking the callback.
    pub num_workers: usize,
    /// Products to prefetch alongside events: `(label, type name)` pairs.
    pub prefetch: Vec<(ProductLabel, String)>,
    /// Capacity of the dispatch queue, in dispatch batches (shared across
    /// all per-worker deques; readers block when the total is reached).
    pub queue_capacity: usize,
    /// Maximum pages per reader with their product prefetch in flight
    /// while the next `list_keys` is already outstanding. `1` still
    /// overlaps listing with prefetching; `0` is treated as `1`.
    pub read_ahead_pages: usize,
    /// `true` (default): pipelined asynchronous read path. `false`: serial
    /// reader issuing one blocking RPC at a time — byte-identical results,
    /// kept as the A/B baseline for benchmarks and tests.
    pub pipeline: bool,
}

impl Default for PepOptions {
    fn default() -> Self {
        PepOptions {
            load_batch_size: 16384,
            dispatch_batch_size: 64,
            num_readers: 0,
            num_workers: 4,
            prefetch: Vec::new(),
            queue_capacity: 1024,
            read_ahead_pages: 4,
            pipeline: true,
        }
    }
}

/// Per-worker timing statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Events this worker processed.
    pub events_processed: u64,
    /// Time spent inside the user callback.
    pub processing_time: Duration,
    /// Time spent waiting on the dispatch queue.
    pub waiting_time: Duration,
    /// Dispatch batches this worker stole from another worker's deque.
    pub steals: u64,
}

/// Per-reader timing statistics.
///
/// `list_wait + prefetch_wait` is the time the reader was actually blocked
/// on storage; `rpc_time` is the sum of issue-to-completion latencies of
/// every read RPC it issued. The gap between the two is latency hidden by
/// the pipeline — see [`ReaderStats::overlap_ratio`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ReaderStats {
    /// Events this reader loaded (decoded from key pages).
    pub events_loaded: u64,
    /// Key pages this reader fetched.
    pub pages: u64,
    /// Time blocked waiting for `list_keys` responses.
    pub list_wait: Duration,
    /// Time blocked waiting for product `get_multi` responses.
    pub prefetch_wait: Duration,
    /// Time blocked pushing dispatch batches (queue backpressure).
    pub dispatch_stall: Duration,
    /// Sum of issue-to-completion latencies across all read RPCs.
    pub rpc_time: Duration,
    /// Most pages simultaneously in flight (listed but not yet dispatched).
    pub read_ahead_hwm: u64,
}

impl ReaderStats {
    /// Total time this reader spent blocked on storage RPCs.
    pub fn blocked_time(&self) -> Duration {
        self.list_wait + self.prefetch_wait
    }

    /// Fraction of RPC latency hidden behind other pipeline work:
    /// `1 - blocked / rpc_time`. `0.0` for an idle reader; a serial reader
    /// that waits out every RPC scores near `0.0`, a perfectly overlapped
    /// one approaches `1.0`.
    pub fn overlap_ratio(&self) -> f64 {
        let rpc = self.rpc_time.as_secs_f64();
        if rpc <= 0.0 {
            return 0.0;
        }
        (1.0 - self.blocked_time().as_secs_f64() / rpc).max(0.0)
    }
}

/// Aggregate statistics of one `process` call.
#[derive(Debug, Clone, Default)]
pub struct PepStatistics {
    /// Total events processed by worker callbacks (exactly once each).
    pub total_events: u64,
    /// Total events loaded by readers. Equals `total_events` on success;
    /// on the error path loaded-but-undispatched events make it larger,
    /// reporting partial progress honestly.
    pub events_loaded: u64,
    /// Wall-clock duration of the whole call.
    pub wall_time: Duration,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerStats>,
    /// Per-reader breakdown.
    pub readers: Vec<ReaderStats>,
}

impl PepStatistics {
    /// Ratio of the busiest worker's event count to the mean — 1.0 is
    /// perfectly balanced. This is the quantity the paper's load-balancing
    /// argument is about.
    pub fn load_imbalance(&self) -> f64 {
        if self.workers.is_empty() || self.total_events == 0 {
            return 1.0;
        }
        let max = self
            .workers
            .iter()
            .map(|w| w.events_processed)
            .max()
            .unwrap_or(0) as f64;
        let mean = self.total_events as f64 / self.workers.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Events per second of wall time.
    pub fn throughput(&self) -> f64 {
        if self.wall_time.is_zero() {
            0.0
        } else {
            self.total_events as f64 / self.wall_time.as_secs_f64()
        }
    }

    /// Aggregate overlap ratio across readers: fraction of total RPC
    /// latency hidden behind pipeline work (`1 - blocked / rpc_time`).
    pub fn overlap_ratio(&self) -> f64 {
        let rpc: f64 = self.readers.iter().map(|r| r.rpc_time.as_secs_f64()).sum();
        if rpc <= 0.0 {
            return 0.0;
        }
        let blocked: f64 = self
            .readers
            .iter()
            .map(|r| r.blocked_time().as_secs_f64())
            .sum();
        (1.0 - blocked / rpc).max(0.0)
    }

    /// Total time readers spent blocked on storage RPCs.
    pub fn blocked_time(&self) -> Duration {
        self.readers.iter().map(|r| r.blocked_time()).sum()
    }

    /// Total dispatch batches stolen across workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Largest read-ahead window observed by any reader.
    pub fn read_ahead_hwm(&self) -> u64 {
        self.readers
            .iter()
            .map(|r| r.read_ahead_hwm)
            .max()
            .unwrap_or(0)
    }
}

/// One event as delivered to the callback, with any prefetched products.
pub struct PrefetchedEvent {
    event: Event,
    /// Prefetched raw product bytes, aligned with `PepOptions::prefetch`.
    /// `Bytes` slices share the RPC response buffer — handing one out is a
    /// refcount bump, never a copy.
    products: Vec<Option<Bytes>>,
    labels: Arc<Vec<(ProductLabel, String)>>,
}

impl PrefetchedEvent {
    /// Build a prefetched event from parts (used by the PEP readers and the
    /// standalone [`crate::prefetch::Prefetcher`]).
    pub(crate) fn assemble(
        event: Event,
        products: Vec<Option<Bytes>>,
        labels: Arc<Vec<(ProductLabel, String)>>,
    ) -> PrefetchedEvent {
        PrefetchedEvent {
            event,
            products,
            labels,
        }
    }

    /// The event handle.
    pub fn event(&self) -> &Event {
        &self.event
    }

    /// Load a product: served from the prefetched bytes when the
    /// `(label, type)` pair was in [`PepOptions::prefetch`], otherwise a
    /// direct storage read.
    pub fn load<T: DeserializeOwned>(
        &self,
        label: &ProductLabel,
    ) -> Result<Option<T>, HepnosError> {
        let type_name = keys::short_type_name::<T>();
        if let Some(idx) = self
            .labels
            .iter()
            .position(|(l, t)| l == label && *t == type_name)
        {
            return match &self.products[idx] {
                None => Ok(None),
                Some(bytes) => binser::from_bytes(bytes)
                    .map(Some)
                    .map_err(|e| HepnosError::Serialization(e.to_string())),
            };
        }
        self.event.load(label)
    }

    /// Load a product's raw bytes under an explicit type name: served from
    /// the prefetched bytes when the `(label, type)` pair was in
    /// [`PepOptions::prefetch`], otherwise a direct storage read. The raw
    /// twin of [`Self::load`], for self-describing representations (e.g.
    /// columnar page blobs) whose decoder is chosen by type name. Serving
    /// from prefetched bytes is zero-copy (shared `Bytes` slice).
    pub fn load_raw(
        &self,
        label: &ProductLabel,
        type_name: &str,
    ) -> Result<Option<Bytes>, HepnosError> {
        if let Some(idx) = self
            .labels
            .iter()
            .position(|(l, t)| l == label && t == type_name)
        {
            return Ok(self.products[idx].clone());
        }
        Ok(self.event.load_raw(label, type_name)?.map(Bytes::from))
    }
}

type DispatchBatch = Vec<(EventDescriptor, Vec<Option<Bytes>>)>;

// ---------------------------------------------------------------- dispatch

/// Bounded work-stealing dispatch: one injector deque per worker, plus a
/// shared counter/condvar pair for blocking and backpressure.
///
/// Invariants: a batch lives in exactly one deque and is popped by exactly
/// one worker (the deques are atomic pop); `queued` counts batches across
/// all deques and is only mutated under `state`; workers sleep on
/// `not_empty` only while `queued == 0` and readers are still active, so
/// the final `reader_done` broadcast wakes everyone for shutdown.
struct DispatchQueue {
    deques: Vec<Injector<DispatchBatch>>,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct QueueState {
    queued: usize,
    readers_active: usize,
}

impl DispatchQueue {
    fn new(n_workers: usize, n_readers: usize, capacity: usize) -> DispatchQueue {
        DispatchQueue {
            deques: (0..n_workers).map(|_| Injector::new()).collect(),
            state: Mutex::new(QueueState {
                queued: 0,
                readers_active: n_readers,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Push a batch onto worker `target`'s deque, blocking while the total
    /// queued count is at capacity.
    fn push(&self, target: usize, batch: DispatchBatch) {
        let mut state = self.state.lock();
        while state.queued >= self.capacity {
            self.not_full.wait(&mut state);
        }
        self.deques[target % self.deques.len()].push(batch);
        state.queued += 1;
        drop(state);
        self.not_empty.notify_one();
    }

    /// Pop the next batch for `worker`: own deque first, then steal from
    /// the others. Returns `None` only when all readers have finished and
    /// every deque is drained. The `bool` is `true` for a stolen batch.
    fn pop(&self, worker: usize) -> Option<(DispatchBatch, bool)> {
        let n = self.deques.len();
        let mut state = self.state.lock();
        loop {
            if state.queued > 0 {
                for i in 0..n {
                    let idx = (worker + i) % n;
                    if let Steal::Success(batch) = self.deques[idx].steal() {
                        state.queued -= 1;
                        drop(state);
                        self.not_full.notify_one();
                        return Some((batch, idx != worker % n));
                    }
                }
                // `queued > 0` but nothing found can only be a transient
                // Retry from a concurrent steal; loop and rescan.
                continue;
            }
            if state.readers_active == 0 {
                return None;
            }
            self.not_empty.wait(&mut state);
        }
    }

    /// A reader finished (or aborted); the last one wakes all workers so
    /// they can observe shutdown.
    fn reader_done(&self) {
        let mut state = self.state.lock();
        state.readers_active -= 1;
        let last = state.readers_active == 0;
        drop(state);
        if last {
            self.not_empty.notify_all();
        }
    }
}

// ---------------------------------------------------------------- reader

/// `(event index in page, prefetch slot index)` pairs mapping a fetch's
/// values back into the page's product matrix.
type SlotVec = Vec<(usize, usize)>;
/// Encoded product keys for one database's `get_multi` batch.
type KeyVec = Vec<Vec<u8>>;

/// Reusable per-reader buffers: the per-product-database grouping table and
/// free lists for the slot/key vectors it hands to in-flight fetches. A
/// steady-state reader builds every page's prefetch batches without a
/// single fresh allocation.
struct ReaderScratch {
    /// Indexed by product database index: `(slots, keys)` being built for
    /// the current page.
    per_db: Vec<(SlotVec, KeyVec)>,
    slot_pool: Vec<SlotVec>,
    keyvec_pool: Vec<KeyVec>,
    keybuf_pool: Vec<Vec<u8>>,
    products_pool: Vec<Vec<Vec<Option<Bytes>>>>,
}

impl ReaderScratch {
    fn new(n_product_dbs: usize) -> ReaderScratch {
        ReaderScratch {
            per_db: (0..n_product_dbs)
                .map(|_| (Vec::new(), Vec::new()))
                .collect(),
            slot_pool: Vec::new(),
            keyvec_pool: Vec::new(),
            keybuf_pool: Vec::new(),
            products_pool: Vec::new(),
        }
    }

    fn take_keybuf(&mut self) -> Vec<u8> {
        self.keybuf_pool.pop().unwrap_or_default()
    }

    /// Return a fetch's slot vector to the pool after its values have been
    /// scattered.
    fn recycle_slots(&mut self, mut slots: Vec<(usize, usize)>) {
        slots.clear();
        self.slot_pool.push(slots);
    }

    /// Return a fetch's key buffers (already copied into the RPC payload)
    /// to the pools.
    fn recycle_keys(&mut self, mut keys: Vec<Vec<u8>>) {
        for mut k in keys.drain(..) {
            k.clear();
            self.keybuf_pool.push(k);
        }
        self.keyvec_pool.push(keys);
    }

    fn take_products(&mut self, n_events: usize, n_labels: usize) -> Vec<Vec<Option<Bytes>>> {
        let mut m = self.products_pool.pop().unwrap_or_default();
        m.clear();
        m.resize_with(n_events, || vec![None; n_labels]);
        m
    }

    /// Return a page's (row-drained) product matrix to the pool.
    fn recycle_products(&mut self, mut matrix: Vec<Vec<Option<Bytes>>>) {
        matrix.clear();
        self.products_pool.push(matrix);
    }
}

/// One product `get_multi` in flight for a page.
struct InFlightFetch {
    pending: PendingGetMulti,
    /// `(event_idx, label_idx)` destination of each requested key, in
    /// request order.
    slots: Vec<(usize, usize)>,
    issued: Instant,
}

/// One key page moving through a reader's pipeline: descriptors decoded,
/// product fetches possibly still in flight.
struct PageState {
    descriptors: Vec<EventDescriptor>,
    fetches: Vec<InFlightFetch>,
    products: Vec<Vec<Option<Bytes>>>,
}

impl PageState {
    fn all_ready(&self) -> bool {
        self.fetches.iter().all(|f| f.pending.is_ready())
    }
}

/// Everything a reader thread needs, bundled to keep signatures sane.
struct ReaderCtx<'a> {
    datastore: &'a DataStore,
    dataset: Uuid,
    opts: &'a PepOptions,
    labels: &'a Arc<Vec<(ProductLabel, String)>>,
    queue: &'a DispatchQueue,
    abort: &'a AtomicBool,
    /// Round-robin cursor over worker deques.
    next_worker: usize,
}

impl ReaderCtx<'_> {
    /// Decode a key page into descriptors.
    fn parse_page(&self, page: &[Vec<u8>]) -> Result<Vec<EventDescriptor>, HepnosError> {
        let mut descriptors = Vec::with_capacity(page.len());
        for key in page {
            let (u, r, s, e) = keys::parse_event_key(key).ok_or_else(|| {
                HepnosError::Storage(yokan::YokanError::Protocol("malformed event key".into()))
            })?;
            descriptors.push(EventDescriptor {
                dataset: u,
                run: r,
                subrun: s,
                event: e,
            });
        }
        Ok(descriptors)
    }

    /// Group the page's product keys by product database into
    /// `scratch.per_db`, reusing pooled buffers throughout.
    fn group_product_keys(&self, page: &[Vec<u8>], scratch: &mut ReaderScratch) {
        let store = &self.datastore.inner;
        for (ev_idx, ev_key) in page.iter().enumerate() {
            let db_idx = store.product_db_index(ev_key);
            for (l_idx, (label, type_name)) in self.labels.iter().enumerate() {
                let mut buf = scratch.take_keybuf();
                keys::product_key_into(&mut buf, ev_key, label.as_str(), type_name);
                let (slots, keyvecs) = &mut scratch.per_db[db_idx];
                if slots.is_empty() {
                    // First key for this db this page: give it pooled vecs.
                    if let Some(s) = scratch.slot_pool.pop() {
                        *slots = s;
                    }
                    if let Some(k) = scratch.keyvec_pool.pop() {
                        *keyvecs = k;
                    }
                }
                slots.push((ev_idx, l_idx));
                keyvecs.push(buf);
            }
        }
    }

    /// Group the page's product keys by product database (reusing
    /// `scratch`) and issue one concurrent `get_multi_async` per database.
    fn issue_prefetch(&self, page: &[Vec<u8>], scratch: &mut ReaderScratch) -> Vec<InFlightFetch> {
        self.group_product_keys(page, scratch);
        let store = &self.datastore.inner;
        let mut fetches = Vec::new();
        for db_idx in 0..scratch.per_db.len() {
            if scratch.per_db[db_idx].0.is_empty() {
                continue;
            }
            let (slots, keyvecs) = std::mem::take(&mut scratch.per_db[db_idx]);
            let target = &store.topo.product_dbs[db_idx];
            let pending = store.client.get_multi_async(target, &keyvecs);
            // Keys are fully copied into the RPC payload at issue time;
            // hand the buffers straight back to the pools.
            scratch.recycle_keys(keyvecs);
            fetches.push(InFlightFetch {
                pending,
                slots,
                issued: Instant::now(),
            });
        }
        fetches
    }

    /// Wait out a page's product fetches, scatter the values, and dispatch
    /// the page in batches. Recycles all scratch buffers.
    fn complete_page(
        &mut self,
        mut page: PageState,
        scratch: &mut ReaderScratch,
        stats: &mut ReaderStats,
    ) -> Result<(), HepnosError> {
        for fetch in page.fetches.drain(..) {
            let wait_start = Instant::now();
            let ready = fetch.pending.is_ready();
            let values = fetch.pending.wait()?;
            let now = Instant::now();
            if !ready {
                stats.prefetch_wait += now - wait_start;
            }
            stats.rpc_time += now - fetch.issued;
            for (&(ev_idx, l_idx), value) in fetch.slots.iter().zip(values) {
                page.products[ev_idx][l_idx] = value;
            }
            scratch.recycle_slots(fetch.slots);
        }
        let mut batch: DispatchBatch = Vec::with_capacity(self.opts.dispatch_batch_size);
        for (desc, prods) in page.descriptors.drain(..).zip(page.products.drain(..)) {
            batch.push((desc, prods));
            if batch.len() >= self.opts.dispatch_batch_size {
                self.dispatch(std::mem::take(&mut batch), stats);
                batch = Vec::with_capacity(self.opts.dispatch_batch_size);
            }
        }
        if !batch.is_empty() {
            self.dispatch(batch, stats);
        }
        scratch.recycle_products(page.products);
        Ok(())
    }

    fn dispatch(&mut self, batch: DispatchBatch, stats: &mut ReaderStats) {
        let t = Instant::now();
        self.queue.push(self.next_worker, batch);
        stats.dispatch_stall += t.elapsed();
        self.next_worker = self.next_worker.wrapping_add(1);
    }

    /// Pipelined read of one event database: the next `list_keys` is in
    /// flight while up to `read_ahead_pages` pages' prefetches are
    /// outstanding; completed pages are drained front-first (FIFO order
    /// per database is preserved).
    fn read_database_pipelined(
        &mut self,
        db_idx: usize,
        scratch: &mut ReaderScratch,
        stats: &mut ReaderStats,
    ) -> Result<(), HepnosError> {
        let db = self.datastore.inner.topo.event_dbs[db_idx].clone();
        let prefix: Vec<u8> = self.dataset.as_bytes().to_vec();
        let read_ahead = self.opts.read_ahead_pages.max(1);
        let client = &self.datastore.inner.client;
        let mut window: VecDeque<PageState> = VecDeque::with_capacity(read_ahead + 1);

        let mut pending_list: Option<(PendingListKeys, Instant)> = Some((
            client.list_keys_async(&db, &prefix, &prefix, self.opts.load_batch_size),
            Instant::now(),
        ));
        let res = 'pages: loop {
            let Some((pending, issued)) = pending_list.take() else {
                break Ok(());
            };
            let wait_start = Instant::now();
            let ready = pending.is_ready();
            let page = match pending.wait() {
                Ok(p) => p,
                Err(e) => break Err(HepnosError::from(e)),
            };
            let now = Instant::now();
            if !ready {
                stats.list_wait += now - wait_start;
            }
            stats.rpc_time += now - issued;
            stats.pages += 1;
            if page.is_empty() || self.abort.load(Ordering::Relaxed) {
                break Ok(());
            }
            // Issue the next list immediately: it overlaps with this
            // page's prefetch fan-out and any page completion below.
            let from = page.last().expect("page is non-empty").clone();
            pending_list = Some((
                client.list_keys_async(&db, &from, &prefix, self.opts.load_batch_size),
                Instant::now(),
            ));
            let descriptors = match self.parse_page(&page) {
                Ok(d) => d,
                Err(e) => break Err(e),
            };
            stats.events_loaded += descriptors.len() as u64;
            let fetches = if self.labels.is_empty() {
                Vec::new()
            } else {
                self.issue_prefetch(&page, scratch)
            };
            let products = scratch.take_products(descriptors.len(), self.labels.len());
            window.push_back(PageState {
                descriptors,
                fetches,
                products,
            });
            stats.read_ahead_hwm = stats.read_ahead_hwm.max(window.len() as u64);
            // Drain: anything beyond the window must complete; anything at
            // the front that is already fully ready completes for free.
            while window.len() > read_ahead || window.front().is_some_and(|p| p.all_ready()) {
                let page = window.pop_front().expect("window is non-empty");
                if let Err(e) = self.complete_page(page, scratch, stats) {
                    break 'pages Err(e);
                }
            }
            if self.abort.load(Ordering::Relaxed) {
                break Ok(());
            }
        };
        // On success drain the remaining window; on error or abort discard
        // it — those events stay loaded-but-unprocessed, which
        // `PepStatistics` reports via `events_loaded` vs `total_events`.
        if res.is_ok() && !self.abort.load(Ordering::Relaxed) {
            while let Some(page) = window.pop_front() {
                self.complete_page(page, scratch, stats)?;
            }
        }
        res
    }

    /// Serial baseline: one blocking RPC at a time, database by database —
    /// the pre-pipeline behaviour, byte-identical results.
    fn read_database_serial(
        &mut self,
        db_idx: usize,
        scratch: &mut ReaderScratch,
        stats: &mut ReaderStats,
    ) -> Result<(), HepnosError> {
        let db = self.datastore.inner.topo.event_dbs[db_idx].clone();
        let prefix: Vec<u8> = self.dataset.as_bytes().to_vec();
        let mut from = prefix.clone();
        loop {
            if self.abort.load(Ordering::Relaxed) {
                return Ok(());
            }
            let t = Instant::now();
            let page = self.datastore.inner.client.list_keys(
                &db,
                &from,
                &prefix,
                self.opts.load_batch_size,
            )?;
            let waited = t.elapsed();
            stats.list_wait += waited;
            stats.rpc_time += waited;
            stats.pages += 1;
            if page.is_empty() {
                return Ok(());
            }
            from.clone_from(page.last().expect("page is non-empty"));
            let descriptors = self.parse_page(&page)?;
            stats.events_loaded += descriptors.len() as u64;
            let mut products = scratch.take_products(descriptors.len(), self.labels.len());
            if !self.labels.is_empty() {
                // Same grouping as the pipelined path, but each database's
                // get_multi blocks to completion before the next is even
                // issued — reader time is the *sum* of the RPC latencies.
                self.group_product_keys(&page, scratch);
                let store = &self.datastore.inner;
                for db_idx in 0..scratch.per_db.len() {
                    if scratch.per_db[db_idx].0.is_empty() {
                        continue;
                    }
                    let (slots, keyvecs) = std::mem::take(&mut scratch.per_db[db_idx]);
                    let target = &store.topo.product_dbs[db_idx];
                    let t = Instant::now();
                    let pending = store.client.get_multi_async(target, &keyvecs);
                    let values = pending.wait()?;
                    let waited = t.elapsed();
                    stats.prefetch_wait += waited;
                    stats.rpc_time += waited;
                    for (&(ev_idx, l_idx), value) in slots.iter().zip(values) {
                        products[ev_idx][l_idx] = value;
                    }
                    scratch.recycle_keys(keyvecs);
                    scratch.recycle_slots(slots);
                }
            }
            stats.read_ahead_hwm = stats.read_ahead_hwm.max(1);
            let page_state = PageState {
                descriptors,
                fetches: Vec::new(),
                products,
            };
            self.complete_page(page_state, scratch, stats)?;
        }
    }
}

// ---------------------------------------------------------------- processor

/// The parallel, load-balanced event iterator.
pub struct ParallelEventProcessor {
    datastore: DataStore,
    options: PepOptions,
}

impl ParallelEventProcessor {
    /// Create a processor over `datastore`.
    pub fn new(datastore: DataStore, options: PepOptions) -> ParallelEventProcessor {
        ParallelEventProcessor { datastore, options }
    }

    /// Iterate every event in `dataset`, invoking `callback(worker_id,
    /// prefetched_event)` exactly once per event, and return the timing
    /// statistics. Fails with the first reader error; use
    /// [`Self::process_partial`] to also observe the partial progress made
    /// before a failure.
    pub fn process<F>(&self, dataset: &DataSet, callback: F) -> Result<PepStatistics, HepnosError>
    where
        F: Fn(usize, &PrefetchedEvent) + Send + Sync,
    {
        let (stats, err) = self.process_partial(dataset, callback);
        match err {
            Some(e) => Err(e),
            None => Ok(stats),
        }
    }

    /// Like [`Self::process`], but always returns the statistics, paired
    /// with the first error if any. On the error path all readers stop
    /// loading new pages, workers deterministically drain every batch that
    /// was dispatched (each such event's callback still runs exactly
    /// once), and the statistics report `events_loaded >= total_events` —
    /// the gap is events that were loaded but never dispatched.
    pub fn process_partial<F>(
        &self,
        dataset: &DataSet,
        callback: F,
    ) -> (PepStatistics, Option<HepnosError>)
    where
        F: Fn(usize, &PrefetchedEvent) + Send + Sync,
    {
        let Some(uuid) = dataset.uuid() else {
            return (
                PepStatistics::default(),
                Some(HepnosError::InvalidPath(
                    "cannot process the root dataset".into(),
                )),
            );
        };
        let opts = &self.options;
        let n_dbs = self.datastore.num_event_databases();
        let n_readers = if opts.num_readers == 0 {
            n_dbs
        } else {
            opts.num_readers.min(n_dbs).max(1)
        };
        let n_workers = opts.num_workers.max(1);
        let labels = Arc::new(opts.prefetch.clone());
        let queue = DispatchQueue::new(n_workers, n_readers, opts.queue_capacity);
        let queue = &queue;
        let reader_stats: Mutex<Vec<ReaderStats>> =
            Mutex::new(vec![ReaderStats::default(); n_readers]);
        let worker_stats: Mutex<Vec<WorkerStats>> =
            Mutex::new(vec![WorkerStats::default(); n_workers]);
        let first_error: Mutex<Option<HepnosError>> = Mutex::new(None);
        let abort = AtomicBool::new(false);
        let t0 = Instant::now();
        let callback = &callback;
        let n_product_dbs = self.datastore.inner.topo.product_dbs.len();

        std::thread::scope(|scope| {
            // ------------------------------------------------ readers
            for reader_id in 0..n_readers {
                let datastore = self.datastore.clone();
                let labels = Arc::clone(&labels);
                let reader_stats = &reader_stats;
                let first_error = &first_error;
                let abort = &abort;
                scope.spawn(move || {
                    // Round-robin assignment of event databases to readers.
                    let my_dbs: Vec<usize> = (0..n_dbs)
                        .filter(|db| db % n_readers == reader_id)
                        .collect();
                    let mut ctx = ReaderCtx {
                        datastore: &datastore,
                        dataset: uuid,
                        opts,
                        labels: &labels,
                        queue,
                        abort,
                        next_worker: reader_id,
                    };
                    let mut scratch = ReaderScratch::new(n_product_dbs);
                    let mut stats = ReaderStats::default();
                    for db_idx in my_dbs {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let res = if opts.pipeline {
                            ctx.read_database_pipelined(db_idx, &mut scratch, &mut stats)
                        } else {
                            ctx.read_database_serial(db_idx, &mut scratch, &mut stats)
                        };
                        if let Err(e) = res {
                            let mut slot = first_error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            abort.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    reader_stats.lock()[reader_id] = stats;
                    queue.reader_done();
                });
            }

            // ------------------------------------------------ workers
            for worker_id in 0..n_workers {
                let datastore = self.datastore.clone();
                let labels = Arc::clone(&labels);
                let worker_stats = &worker_stats;
                scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    loop {
                        let wait_start = Instant::now();
                        let Some((batch, stolen)) = queue.pop(worker_id) else {
                            stats.waiting_time += wait_start.elapsed();
                            break; // all readers done, deques drained
                        };
                        stats.waiting_time += wait_start.elapsed();
                        if stolen {
                            stats.steals += 1;
                        }
                        let work_start = Instant::now();
                        for (desc, products) in batch {
                            let ev = Event::from_descriptor(&datastore, &desc);
                            let pe = PrefetchedEvent {
                                event: ev,
                                products,
                                labels: Arc::clone(&labels),
                            };
                            callback(worker_id, &pe);
                            stats.events_processed += 1;
                        }
                        stats.processing_time += work_start.elapsed();
                    }
                    worker_stats.lock()[worker_id] = stats;
                });
            }
        });

        let workers = worker_stats.into_inner();
        let readers = reader_stats.into_inner();
        let stats = PepStatistics {
            total_events: workers.iter().map(|w| w.events_processed).sum(),
            events_loaded: readers.iter().map(|r| r.events_loaded).sum(),
            wall_time: t0.elapsed(),
            workers,
            readers,
        };
        (stats, first_error.into_inner())
    }
}
