//! The `ParallelEventProcessor` (paper §II-D, §IV-B, §IV-D).
//!
//! A group of workers iterates over all events of a dataset in parallel and
//! load-balanced fashion:
//!
//! * a subset of participants act as **readers** — by default one per event
//!   database — which page event keys out of their database in large *load
//!   batches* (default 16384; "fewer RPCs but with a large data transfer
//!   payload");
//! * readers optionally **prefetch** the products associated with each
//!   loaded event (batched `get_multi` per product database);
//! * loaded events are pushed into a shared queue and handed to workers in
//!   small *dispatch batches* (default 64; "fine-grain load-balancing once
//!   events are loaded into worker memory");
//! * every worker invokes the user callback on each event it receives.
//!
//! The paper's implementation spreads ranks over MPI; this reproduction
//! spreads workers over threads sharing the same queue — the scheduling
//! structure (readers → distributed queue → workers) is identical.

use crate::binser;
use crate::datastore::{DataSet, DataStore, Event, ProductLabel};
use crate::error::HepnosError;
use crate::keys::{self, EventNumber, RunNumber, SubRunNumber};
use crate::uuid::Uuid;
use crossbeam::channel;
use parking_lot::Mutex;
use serde::de::DeserializeOwned;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Plain-data identification of one event, cheap to queue and ship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventDescriptor {
    /// Owning dataset.
    pub dataset: Uuid,
    /// Run number.
    pub run: RunNumber,
    /// Subrun number.
    pub subrun: SubRunNumber,
    /// Event number.
    pub event: EventNumber,
}

/// Options mirroring the paper's tuned deployment (§IV-D).
#[derive(Debug, Clone)]
pub struct PepOptions {
    /// Events loaded from a database per `list_keys` RPC (paper: 16384).
    pub load_batch_size: usize,
    /// Events handed to a worker at a time (paper: 64).
    pub dispatch_batch_size: usize,
    /// Reader threads; `0` means one per event database (the paper's
    /// "typically as many readers as databases to read from").
    pub num_readers: usize,
    /// Worker threads invoking the callback.
    pub num_workers: usize,
    /// Products to prefetch alongside events: `(label, type name)` pairs.
    pub prefetch: Vec<(ProductLabel, String)>,
    /// Capacity of the shared queue, in dispatch batches.
    pub queue_capacity: usize,
}

impl Default for PepOptions {
    fn default() -> Self {
        PepOptions {
            load_batch_size: 16384,
            dispatch_batch_size: 64,
            num_readers: 0,
            num_workers: 4,
            prefetch: Vec::new(),
            queue_capacity: 1024,
        }
    }
}

/// Per-worker timing statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Events this worker processed.
    pub events_processed: u64,
    /// Time spent inside the user callback.
    pub processing_time: Duration,
    /// Time spent waiting on the shared queue.
    pub waiting_time: Duration,
}

/// Per-reader timing statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReaderStats {
    /// Events this reader loaded.
    pub events_loaded: u64,
    /// Time spent in storage RPCs (key listing + product prefetch).
    pub load_time: Duration,
}

/// Aggregate statistics of one `process` call.
#[derive(Debug, Clone, Default)]
pub struct PepStatistics {
    /// Total events processed (exactly once each).
    pub total_events: u64,
    /// Wall-clock duration of the whole call.
    pub wall_time: Duration,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerStats>,
    /// Per-reader breakdown.
    pub readers: Vec<ReaderStats>,
}

impl PepStatistics {
    /// Ratio of the busiest worker's event count to the mean — 1.0 is
    /// perfectly balanced. This is the quantity the paper's load-balancing
    /// argument is about.
    pub fn load_imbalance(&self) -> f64 {
        if self.workers.is_empty() || self.total_events == 0 {
            return 1.0;
        }
        let max = self
            .workers
            .iter()
            .map(|w| w.events_processed)
            .max()
            .unwrap_or(0) as f64;
        let mean = self.total_events as f64 / self.workers.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Events per second of wall time.
    pub fn throughput(&self) -> f64 {
        if self.wall_time.is_zero() {
            0.0
        } else {
            self.total_events as f64 / self.wall_time.as_secs_f64()
        }
    }
}

/// One event as delivered to the callback, with any prefetched products.
pub struct PrefetchedEvent {
    event: Event,
    /// Prefetched raw product bytes, aligned with `PepOptions::prefetch`.
    products: Vec<Option<Vec<u8>>>,
    labels: Arc<Vec<(ProductLabel, String)>>,
}

impl PrefetchedEvent {
    /// Build a prefetched event from parts (used by the PEP readers and the
    /// standalone [`crate::prefetch::Prefetcher`]).
    pub(crate) fn assemble(
        event: Event,
        products: Vec<Option<Vec<u8>>>,
        labels: Arc<Vec<(ProductLabel, String)>>,
    ) -> PrefetchedEvent {
        PrefetchedEvent {
            event,
            products,
            labels,
        }
    }

    /// The event handle.
    pub fn event(&self) -> &Event {
        &self.event
    }

    /// Load a product: served from the prefetched bytes when the
    /// `(label, type)` pair was in [`PepOptions::prefetch`], otherwise a
    /// direct storage read.
    pub fn load<T: DeserializeOwned>(
        &self,
        label: &ProductLabel,
    ) -> Result<Option<T>, HepnosError> {
        let type_name = keys::short_type_name::<T>();
        if let Some(idx) = self
            .labels
            .iter()
            .position(|(l, t)| l == label && *t == type_name)
        {
            return match &self.products[idx] {
                None => Ok(None),
                Some(bytes) => binser::from_bytes(bytes)
                    .map(Some)
                    .map_err(|e| HepnosError::Serialization(e.to_string())),
            };
        }
        self.event.load(label)
    }

    /// Load a product's raw bytes under an explicit type name: served from
    /// the prefetched bytes when the `(label, type)` pair was in
    /// [`PepOptions::prefetch`], otherwise a direct storage read. The raw
    /// twin of [`Self::load`], for self-describing representations (e.g.
    /// columnar page blobs) whose decoder is chosen by type name.
    pub fn load_raw(
        &self,
        label: &ProductLabel,
        type_name: &str,
    ) -> Result<Option<Vec<u8>>, HepnosError> {
        if let Some(idx) = self
            .labels
            .iter()
            .position(|(l, t)| l == label && t == type_name)
        {
            return Ok(self.products[idx].clone());
        }
        self.event.load_raw(label, type_name)
    }
}

/// The parallel, load-balanced event iterator.
pub struct ParallelEventProcessor {
    datastore: DataStore,
    options: PepOptions,
}

type DispatchBatch = Vec<(EventDescriptor, Vec<Option<Vec<u8>>>)>;

impl ParallelEventProcessor {
    /// Create a processor over `datastore`.
    pub fn new(datastore: DataStore, options: PepOptions) -> ParallelEventProcessor {
        ParallelEventProcessor { datastore, options }
    }

    /// Iterate every event in `dataset`, invoking `callback(worker_id,
    /// prefetched_event)` exactly once per event, and return the timing
    /// statistics.
    pub fn process<F>(&self, dataset: &DataSet, callback: F) -> Result<PepStatistics, HepnosError>
    where
        F: Fn(usize, &PrefetchedEvent) + Send + Sync,
    {
        let uuid = dataset
            .uuid()
            .ok_or_else(|| HepnosError::InvalidPath("cannot process the root dataset".into()))?;
        let opts = &self.options;
        let n_dbs = self.datastore.num_event_databases();
        let n_readers = if opts.num_readers == 0 {
            n_dbs
        } else {
            opts.num_readers.min(n_dbs).max(1)
        };
        let n_workers = opts.num_workers.max(1);
        let labels = Arc::new(opts.prefetch.clone());
        let (tx, rx) = channel::bounded::<DispatchBatch>(opts.queue_capacity.max(1));
        let reader_stats: Arc<Mutex<Vec<ReaderStats>>> =
            Arc::new(Mutex::new(vec![ReaderStats::default(); n_readers]));
        let worker_stats: Arc<Mutex<Vec<WorkerStats>>> =
            Arc::new(Mutex::new(vec![WorkerStats::default(); n_workers]));
        let first_error: Arc<Mutex<Option<HepnosError>>> = Arc::new(Mutex::new(None));
        let t0 = Instant::now();
        let callback = &callback;

        std::thread::scope(|scope| {
            // ------------------------------------------------ readers
            for reader_id in 0..n_readers {
                let tx = tx.clone();
                let datastore = self.datastore.clone();
                let labels = Arc::clone(&labels);
                let reader_stats = Arc::clone(&reader_stats);
                let first_error = Arc::clone(&first_error);
                let opts = opts.clone();
                scope.spawn(move || {
                    // Round-robin assignment of event databases to readers.
                    let my_dbs: Vec<usize> = (0..n_dbs)
                        .filter(|db| db % n_readers == reader_id)
                        .collect();
                    let mut stats = ReaderStats::default();
                    for db_idx in my_dbs {
                        if let Err(e) = read_database(
                            &datastore, &uuid, db_idx, &opts, &labels, &tx, &mut stats,
                        ) {
                            *first_error.lock() = Some(e);
                            break;
                        }
                    }
                    reader_stats.lock()[reader_id] = stats;
                });
            }
            drop(tx); // workers see channel close when all readers finish

            // ------------------------------------------------ workers
            for worker_id in 0..n_workers {
                let rx = rx.clone();
                let datastore = self.datastore.clone();
                let labels = Arc::clone(&labels);
                let worker_stats = Arc::clone(&worker_stats);
                scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    loop {
                        let wait_start = Instant::now();
                        let batch = match rx.recv() {
                            Ok(b) => b,
                            Err(_) => break, // all readers done, queue drained
                        };
                        stats.waiting_time += wait_start.elapsed();
                        let work_start = Instant::now();
                        for (desc, products) in batch {
                            let ev = Event::from_descriptor(&datastore, &desc);
                            let pe = PrefetchedEvent {
                                event: ev,
                                products,
                                labels: Arc::clone(&labels),
                            };
                            callback(worker_id, &pe);
                            stats.events_processed += 1;
                        }
                        stats.processing_time += work_start.elapsed();
                    }
                    worker_stats.lock()[worker_id] = stats;
                });
            }
        });

        if let Some(e) = first_error.lock().take() {
            return Err(e);
        }
        let workers = worker_stats.lock().clone();
        let readers = reader_stats.lock().clone();
        Ok(PepStatistics {
            total_events: workers.iter().map(|w| w.events_processed).sum(),
            wall_time: t0.elapsed(),
            workers,
            readers,
        })
    }
}

/// Page all events of `dataset` out of event database `db_idx`, prefetching
/// products and emitting dispatch batches.
fn read_database(
    datastore: &DataStore,
    dataset: &Uuid,
    db_idx: usize,
    opts: &PepOptions,
    labels: &Arc<Vec<(ProductLabel, String)>>,
    tx: &channel::Sender<DispatchBatch>,
    stats: &mut ReaderStats,
) -> Result<(), HepnosError> {
    let db = datastore.inner.topo.event_dbs[db_idx].clone();
    let prefix: Vec<u8> = dataset.as_bytes().to_vec();
    let mut from = prefix.clone();
    loop {
        let t = Instant::now();
        let page = datastore
            .inner
            .client
            .list_keys(&db, &from, &prefix, opts.load_batch_size)?;
        stats.load_time += t.elapsed();
        if page.is_empty() {
            return Ok(());
        }
        from.clone_from(page.last().expect("page is non-empty"));
        // Decode descriptors.
        let mut descriptors = Vec::with_capacity(page.len());
        for key in &page {
            let (u, r, s, e) = keys::parse_event_key(key).ok_or_else(|| {
                HepnosError::Storage(yokan::YokanError::Protocol("malformed event key".into()))
            })?;
            descriptors.push(EventDescriptor {
                dataset: u,
                run: r,
                subrun: s,
                event: e,
            });
        }
        // Prefetch products: group product keys by product database, issue
        // one get_multi per database per label, then scatter back.
        let mut products: Vec<Vec<Option<Vec<u8>>>> =
            vec![vec![None; labels.len()]; descriptors.len()];
        if !labels.is_empty() {
            let t = Instant::now();
            prefetch_products(datastore, &page, labels, &mut products)?;
            stats.load_time += t.elapsed();
        }
        stats.events_loaded += descriptors.len() as u64;
        // Emit dispatch batches.
        let mut batch: DispatchBatch = Vec::with_capacity(opts.dispatch_batch_size);
        for (desc, prods) in descriptors.into_iter().zip(products) {
            batch.push((desc, prods));
            if batch.len() >= opts.dispatch_batch_size {
                if tx.send(std::mem::take(&mut batch)).is_err() {
                    return Ok(()); // workers gone (error path)
                }
                batch = Vec::with_capacity(opts.dispatch_batch_size);
            }
        }
        if !batch.is_empty() && tx.send(batch).is_err() {
            return Ok(());
        }
    }
}

fn prefetch_products(
    datastore: &DataStore,
    event_keys: &[Vec<u8>],
    labels: &[(ProductLabel, String)],
    out: &mut [Vec<Option<Vec<u8>>>],
) -> Result<(), HepnosError> {
    // Per product database: the (event, label) slots and, in parallel, the
    // product keys. Keys are built once and moved into the get_multi batch,
    // not cloned a second time.
    type Slots = (Vec<(usize, usize)>, Vec<Vec<u8>>);
    let mut by_db: HashMap<yokan::DbTarget, Slots> = HashMap::new();
    for (ev_idx, ev_key) in event_keys.iter().enumerate() {
        let db = datastore.inner.product_db(ev_key).clone();
        let (slots, keys) = by_db.entry(db).or_default();
        for (l_idx, (label, type_name)) in labels.iter().enumerate() {
            slots.push((ev_idx, l_idx));
            keys.push(keys::product_key(ev_key, label.as_str(), type_name));
        }
    }
    for (db, (slots, keys)) in by_db {
        let values = datastore.inner.client.get_multi(&db, &keys)?;
        for ((ev_idx, l_idx), value) in slots.into_iter().zip(values) {
            out[ev_idx][l_idx] = value;
        }
    }
    Ok(())
}
