//! The synthetic NOvA data model.

use serde::{Deserialize, Serialize};

/// Reconstructed quantities of one *slice* (a spatio-temporal region of
/// interest representing one candidate neutrino interaction, §III-A).
///
/// NOvA derives ~600 quantities per slice; this subset covers the ones a
/// ν_e-appearance-style selection actually cuts on, plus enough bulk to
/// give products a realistic size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceQuantities {
    /// Slice identifier, unique within its event.
    pub slice_id: u64,
    /// Number of detector hits in the slice.
    pub nhit: u32,
    /// Calorimetric energy (GeV).
    pub cal_e: f32,
    /// Leading reconstructed shower energy (GeV).
    pub shower_energy: f32,
    /// Leading shower length (cm).
    pub shower_length: f32,
    /// Leading track length (cm).
    pub track_length: f32,
    /// CVN (convolutional network) ν_e score in [0, 1].
    pub cvn_nue: f32,
    /// CVN ν_μ score in [0, 1].
    pub cvn_numu: f32,
    /// CVN neutral-current score in [0, 1].
    pub cvn_nc: f32,
    /// Cosmic-rejection BDT score in [0, 1]; larger = more cosmic-like.
    pub cosmic_score: f32,
    /// Reconstructed vertex x (cm, detector coordinates).
    pub vertex_x: f32,
    /// Reconstructed vertex y (cm).
    pub vertex_y: f32,
    /// Reconstructed vertex z (cm).
    pub vertex_z: f32,
    /// Slice time within the readout window (ns).
    pub time_ns: f64,
    /// Muon-identification score in [0, 1].
    pub remid: f32,
    /// Reconstructed neutrino energy (GeV).
    pub nu_energy: f32,
}

/// One triggered detector readout (an *event*) with its candidate slices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Run number.
    pub run: u64,
    /// Subrun number.
    pub subrun: u64,
    /// Event number.
    pub event: u64,
    /// Candidate interaction slices found in this readout.
    pub slices: Vec<SliceQuantities>,
}

impl EventRecord {
    /// Globally unique identifiers of this event's slices, as accumulated
    /// by both workflows for the equal-results check (§IV).
    pub fn global_slice_id(&self, slice: &SliceQuantities) -> u64 {
        // run/subrun/event/slice packed into one id; fields are small
        // enough in practice that this is collision-free for our datasets.
        (self.run << 48) ^ (self.subrun << 36) ^ (self.event << 12) ^ slice.slice_id
    }

    /// Derive the event-level summary product.
    pub fn summary(&self) -> EventSummary {
        EventSummary {
            n_slices: self.slices.len() as u32,
            total_cal_e: self.slices.iter().map(|s| s.cal_e).sum(),
            max_cvn_nue: self.slices.iter().map(|s| s.cvn_nue).fold(0.0f32, f32::max),
            earliest_time_ns: self
                .slices
                .iter()
                .map(|s| s.time_ns)
                .fold(f64::INFINITY, f64::min),
        }
    }
}

/// A small event-level product derived from the slices — a second product
/// type per event, exercising HEPnOS's multi-product storage (real events
/// carry many products of different C++ types under different labels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventSummary {
    /// Number of candidate slices in the readout.
    pub n_slices: u32,
    /// Summed calorimetric energy (GeV).
    pub total_cal_e: f32,
    /// Best ν_e score among the slices.
    pub max_cvn_nue: f32,
    /// Earliest slice time (ns); `inf` for sliceless events.
    pub earliest_time_ns: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(id: u64) -> SliceQuantities {
        SliceQuantities {
            slice_id: id,
            nhit: 10,
            cal_e: 1.0,
            shower_energy: 0.5,
            shower_length: 100.0,
            track_length: 0.0,
            cvn_nue: 0.1,
            cvn_numu: 0.1,
            cvn_nc: 0.1,
            cosmic_score: 0.5,
            vertex_x: 0.0,
            vertex_y: 0.0,
            vertex_z: 100.0,
            time_ns: 218_000.0,
            remid: 0.0,
            nu_energy: 1.9,
        }
    }

    #[test]
    fn global_slice_ids_are_distinct_within_event() {
        let ev = EventRecord {
            run: 1,
            subrun: 2,
            event: 3,
            slices: vec![slice(0), slice(1), slice(2)],
        };
        let ids: Vec<u64> = ev.slices.iter().map(|s| ev.global_slice_id(s)).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn global_slice_ids_differ_across_events() {
        let a = EventRecord {
            run: 1,
            subrun: 1,
            event: 1,
            slices: vec![slice(5)],
        };
        let b = EventRecord {
            run: 1,
            subrun: 1,
            event: 2,
            slices: vec![slice(5)],
        };
        assert_ne!(
            a.global_slice_id(&a.slices[0]),
            b.global_slice_id(&b.slices[0])
        );
    }

    #[test]
    fn serde_round_trip_through_binser() {
        let ev = EventRecord {
            run: 9,
            subrun: 8,
            event: 7,
            slices: vec![slice(1), slice(2)],
        };
        let bytes = hepnos::binser::to_bytes(&ev).unwrap();
        let back: EventRecord = hepnos::binser::from_bytes(&bytes).unwrap();
        assert_eq!(back, ev);
    }
}
