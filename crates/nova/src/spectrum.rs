//! CAFAna-style spectra: the histogram data product a real analysis
//! accumulates from the selected slices.
//!
//! The NOvA oscillation measurements (§III-A) are fits to *spectra* —
//! histograms of reconstructed neutrino energy for the selected candidate
//! sample. CAFAna's central abstraction is the `Spectrum` (binned counts
//! plus exposure); this module provides the equivalent so the example
//! workflows can end, like the real one, in a physics-shaped result.

use crate::data::SliceQuantities;
use serde::{Deserialize, Serialize};

/// A one-dimensional histogram with uniform bins plus under/overflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Spectrum {
    lo: f64,
    hi: f64,
    counts: Vec<f64>,
    underflow: f64,
    overflow: f64,
    /// Exposure the sample corresponds to (events inspected); lets spectra
    /// from different sample sizes be compared after scaling.
    exposure: f64,
}

impl Spectrum {
    /// Create a spectrum with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the range is empty/not finite.
    pub fn new(bins: usize, lo: f64, hi: f64) -> Spectrum {
        assert!(bins > 0, "spectrum needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "bad range");
        Spectrum {
            lo,
            hi,
            counts: vec![0.0; bins],
            underflow: 0.0,
            overflow: 0.0,
            exposure: 0.0,
        }
    }

    /// The standard ν_e-appearance energy spectrum: 0–5 GeV in 20 bins.
    pub fn nue_energy() -> Spectrum {
        Spectrum::new(20, 0.0, 5.0)
    }

    /// Fill with one value and weight.
    pub fn fill(&mut self, value: f64, weight: f64) {
        if !value.is_finite() {
            return;
        }
        if value < self.lo {
            self.underflow += weight;
        } else if value >= self.hi {
            self.overflow += weight;
        } else {
            let idx = ((value - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
            let last = self.counts.len() - 1;
            self.counts[idx.min(last)] += weight;
        }
    }

    /// Fill from a selected slice (reconstructed neutrino energy, unit
    /// weight).
    pub fn fill_slice(&mut self, slice: &SliceQuantities) {
        self.fill(slice.nu_energy as f64, 1.0);
    }

    /// Record inspected exposure (events examined, whether selected or not).
    pub fn add_exposure(&mut self, events: f64) {
        self.exposure += events;
    }

    /// Merge another spectrum (same binning) into this one — how per-worker
    /// partial spectra combine, the analogue of the MPI reduction in §IV-B.
    ///
    /// # Panics
    ///
    /// Panics on binning mismatch.
    pub fn merge(&mut self, other: &Spectrum) {
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        assert_eq!((self.lo, self.hi), (other.lo, other.hi), "range mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.exposure += other.exposure;
    }

    /// Bin contents (excluding under/overflow).
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Total entries including under/overflow.
    pub fn integral(&self) -> f64 {
        self.counts.iter().sum::<f64>() + self.underflow + self.overflow
    }

    /// Recorded exposure.
    pub fn exposure(&self) -> f64 {
        self.exposure
    }

    /// Centers of the bins, for plotting/printing.
    pub fn bin_centers(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len())
            .map(|i| self.lo + (i as f64 + 0.5) * w)
            .collect()
    }

    /// A terminal-friendly rendering (one line per bin).
    pub fn ascii(&self) -> String {
        let max = self.counts.iter().cloned().fold(0.0f64, f64::max).max(1.0);
        let mut out = String::new();
        for (c, center) in self.counts.iter().zip(self.bin_centers()) {
            let bar = "#".repeat(((c / max) * 40.0).round() as usize);
            out.push_str(&format!("{center:6.2} GeV |{bar:<40} {c:.0}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::NovaGenerator;
    use crate::selection::SelectionCuts;

    #[test]
    fn fill_places_values_in_bins() {
        let mut s = Spectrum::new(10, 0.0, 10.0);
        s.fill(0.5, 1.0);
        s.fill(9.99, 2.0);
        s.fill(-1.0, 1.0); // underflow
        s.fill(10.0, 1.0); // overflow (hi is exclusive)
        s.fill(f64::NAN, 5.0); // dropped
        assert_eq!(s.counts()[0], 1.0);
        assert_eq!(s.counts()[9], 2.0);
        assert_eq!(s.integral(), 5.0);
    }

    #[test]
    fn merge_combines_partial_spectra() {
        let mut a = Spectrum::new(4, 0.0, 4.0);
        let mut b = Spectrum::new(4, 0.0, 4.0);
        a.fill(0.5, 1.0);
        b.fill(0.5, 2.0);
        b.fill(3.5, 1.0);
        a.add_exposure(100.0);
        b.add_exposure(50.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[3.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.exposure(), 150.0);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn merge_rejects_different_binning() {
        let mut a = Spectrum::new(4, 0.0, 4.0);
        let b = Spectrum::new(5, 0.0, 4.0);
        a.merge(&b);
    }

    #[test]
    fn selected_sample_peaks_in_the_appearance_window() {
        // Fill a spectrum from selected slices of a big synthetic sample:
        // the selection's energy cut (1-4.5 GeV) must shape the spectrum.
        let gen = NovaGenerator::new(31);
        let cuts = SelectionCuts::default();
        let mut spec = Spectrum::nue_energy();
        for e in 0..50_000u64 {
            let ev = gen.generate(1, 0, e);
            spec.add_exposure(1.0);
            for s in &ev.slices {
                if cuts.passes(s) {
                    spec.fill_slice(s);
                }
            }
        }
        assert!(spec.integral() > 0.0, "no selected slices at all");
        // Nothing outside the energy window.
        let centers = spec.bin_centers();
        for (c, center) in spec.counts().iter().zip(centers) {
            if !(0.75..=4.75).contains(&center) {
                assert_eq!(*c, 0.0, "count outside the selection window at {center}");
            }
        }
        assert_eq!(spec.exposure(), 50_000.0);
    }

    #[test]
    fn ascii_rendering_has_one_line_per_bin() {
        let mut s = Spectrum::new(5, 0.0, 5.0);
        s.fill(2.5, 3.0);
        let text = s.ascii();
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("###"));
    }
}
