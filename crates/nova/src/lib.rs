//! `nova` — the reproduction's stand-in for the NOvA experiment data and
//! the CAFAna candidate-selection code (paper §III).
//!
//! The paper's evaluation could not be shipped with this reproduction: the
//! NOvA files are restricted experimental data and CAFAna's selection is a
//! large C++ framework. Per the substitution plan in `DESIGN.md`, this
//! crate provides synthetic equivalents that exercise the same code paths:
//!
//! * [`SliceQuantities`] / [`EventRecord`] — a representative subset of the
//!   ~600 derived physics quantities NOvA reconstructs per slice;
//! * [`generator`] — a deterministic, seeded generator reproducing the
//!   paper's *statistics*: ~4.1 candidate slices per beam event
//!   (17,878,347 slices / 4,359,414 events), rare signal-like slices, and
//!   heavy-tailed per-file event counts;
//! * [`selection`] — a cut-based electron-neutrino candidate selection in
//!   the style of NOvA's ν_e appearance cuts (containment + PID + cosmic
//!   rejection), with a strong down-selection ratio. Both the file-based
//!   and HEPnOS-based workflows call this exact function, mirroring the
//!   paper's equal-results check;
//! * [`files`] — writers/readers putting events into [`hepfile`] columnar
//!   files with the NOvA HDF5 layout;
//! * [`loader`] — the HDF2HEPnOS analogue: schema inspection, Rust code
//!   generation for the stored class, and parallel ingestion into a
//!   [`hepnos::DataStore`] through a [`hepnos::WriteBatch`].

#![warn(missing_docs)]

pub mod columnar;
pub mod files;
pub mod generator;
pub mod loader;
pub mod pushdown;
pub mod selection;
pub mod spectrum;

mod data;

pub use data::{EventRecord, EventSummary, SliceQuantities};
pub use generator::{GeneratorConfig, NovaGenerator};
pub use loader::{DataLoader, IngestStats};
pub use pushdown::{select_dataset_blob, select_dataset_pushdown, SelectStats};
pub use selection::{select_slices, select_slices_into, SelectScratch, SelectionCuts};
pub use spectrum::Spectrum;
