//! Push-down execution of the selection workload: the client half of the
//! columnar product path.
//!
//! [`select_dataset_pushdown`] compiles the cuts once, ships the predicate
//! program to the product databases (grouped and batched by
//! [`hepnos::DataStore::filter_products`]), and accumulates the surviving
//! global slice ids the servers return. Events whose slice product is
//! missing or stored as an opaque blob fall back to fetching the product
//! and running the local vectorized kernel, so mixed datasets (or readers
//! that predate the columnar encoder) still produce complete results.
//!
//! [`select_dataset_blob`] is the paper's original workload shape — fetch
//! every product, cut client-side — kept as the baseline both for the
//! macro-bench and for the equal-results check.

use crate::columnar;
use crate::data::EventRecord;
use crate::loader;
use crate::selection::{select_slices_into, SelectScratch, SelectionCuts};
use hepnos::{DataSet, DataStore, HepnosError};
use yokan::FilterReply;

/// Statistics of one selection pass over a dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectStats {
    /// Events visited.
    pub events: u64,
    /// Slices stored in the visited events.
    pub rows_in: u64,
    /// Slices accepted by the selection.
    pub rows_out: u64,
    /// Column pages decoded and evaluated server-side.
    pub pages_scanned: u64,
    /// Column pages skipped server-side via zone maps.
    pub pages_skipped: u64,
    /// Stored bytes of the columnar blobs filtered server-side — payload
    /// that did *not* cross the wire thanks to push-down.
    pub bytes_stored: u64,
    /// Events answered through the blob fallback (product missing from the
    /// columnar path or stored as an opaque blob).
    pub fallback_events: u64,
}

impl SelectStats {
    /// Fold another pass's statistics into this one.
    pub fn merge(&mut self, other: &SelectStats) {
        self.events += other.events;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.pages_scanned += other.pages_scanned;
        self.pages_skipped += other.pages_skipped;
        self.bytes_stored += other.bytes_stored;
        self.fallback_events += other.fallback_events;
    }
}

/// Run the selection over every event of `dataset` with server-side
/// predicate push-down, returning accepted global slice ids in event order
/// (byte-identical to the blob path / scalar loop over the same events).
pub fn select_dataset_pushdown(
    store: &DataStore,
    dataset: &DataSet,
    cuts: &SelectionCuts,
) -> Result<(Vec<u64>, SelectStats), HepnosError> {
    let events = dataset.events()?;
    let keys: Vec<Vec<u8>> = events.iter().map(|e| e.key().to_vec()).collect();
    let program = columnar::compile_cuts(cuts);
    let replies = store.filter_products(
        &keys,
        &loader::slice_label(),
        &columnar::columnar_type_name(),
        &program,
    )?;
    let mut ids = Vec::new();
    let mut stats = SelectStats::default();
    let mut scratch = SelectScratch::new();
    for (event, reply) in events.iter().zip(replies) {
        stats.events += 1;
        match reply {
            FilterReply::Ids {
                ids: survivors,
                rows_in,
                pages_scanned,
                pages_skipped,
                stored_bytes,
            } => {
                stats.rows_in += rows_in as u64;
                stats.rows_out += survivors.len() as u64;
                stats.pages_scanned += pages_scanned as u64;
                stats.pages_skipped += pages_skipped as u64;
                stats.bytes_stored += stored_bytes as u64;
                ids.extend(survivors);
            }
            FilterReply::Missing | FilterReply::NotColumnar => {
                stats.fallback_events += 1;
                let Some(slices) = loader::load_slices(event)? else {
                    continue;
                };
                let (run, subrun, number) = event.coordinates();
                let rec = EventRecord {
                    run,
                    subrun,
                    event: number,
                    slices,
                };
                stats.rows_in += rec.slices.len() as u64;
                let before = ids.len();
                select_slices_into(&rec, cuts, &mut scratch, &mut ids);
                stats.rows_out += (ids.len() - before) as u64;
            }
        }
    }
    Ok((ids, stats))
}

/// The baseline workload: fetch every event's slice product and run the
/// selection client-side (works against both representations). Every
/// product's full bytes cross the wire.
pub fn select_dataset_blob(
    store: &DataStore,
    dataset: &DataSet,
    cuts: &SelectionCuts,
) -> Result<(Vec<u64>, SelectStats), HepnosError> {
    let _ = store;
    let events = dataset.events()?;
    let mut ids = Vec::new();
    let mut stats = SelectStats::default();
    let mut scratch = SelectScratch::new();
    for event in &events {
        stats.events += 1;
        let Some(slices) = loader::load_slices(event)? else {
            continue;
        };
        let (run, subrun, number) = event.coordinates();
        let rec = EventRecord {
            run,
            subrun,
            event: number,
            slices,
        };
        stats.rows_in += rec.slices.len() as u64;
        let before = ids.len();
        select_slices_into(&rec, cuts, &mut scratch, &mut ids);
        stats.rows_out += (ids.len() - before) as u64;
    }
    Ok((ids, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::NovaGenerator;
    use crate::loader::DataLoader;
    use bedrock::DbCounts;
    use hepnos::testing::local_deployment;

    fn gen_events(seed: u64, n: u64) -> Vec<EventRecord> {
        let g = NovaGenerator::new(seed);
        (0..n).map(|e| g.generate(1, 0, e)).collect()
    }

    #[test]
    fn pushdown_matches_blob_path() {
        let dep = local_deployment(1, DbCounts::default());
        let store = dep.datastore();
        let events = gen_events(3, 120);

        let ds_col = store.root().create_dataset("pd/columnar").unwrap();
        DataLoader::new(store.clone(), ds_col.clone())
            .with_columnar(64)
            .ingest_events(&events)
            .unwrap();
        let ds_blob = store.root().create_dataset("pd/blob").unwrap();
        DataLoader::new(store.clone(), ds_blob.clone())
            .ingest_events(&events)
            .unwrap();

        let cuts = SelectionCuts::default();
        let (pushed, pstats) = select_dataset_pushdown(&store, &ds_col, &cuts).unwrap();
        let (baseline, bstats) = select_dataset_blob(&store, &ds_blob, &cuts).unwrap();
        assert_eq!(pushed, baseline);
        assert_eq!(pstats.rows_in, bstats.rows_in);
        assert_eq!(pstats.rows_out, pushed.len() as u64);
        assert_eq!(pstats.fallback_events, 0);
        assert!(pstats.pages_skipped > 0, "zone maps never pruned a page");
        assert!(pstats.bytes_stored > 0);
        dep.shutdown();
    }

    #[test]
    fn pushdown_falls_back_on_blob_products() {
        let dep = local_deployment(1, DbCounts::default());
        let store = dep.datastore();
        let events = gen_events(17, 40);
        // Blob-path dataset queried through the push-down API: every event
        // must take the fallback and results must still match.
        let ds = store.root().create_dataset("pd/fallback").unwrap();
        DataLoader::new(store.clone(), ds.clone())
            .ingest_events(&events)
            .unwrap();
        let cuts = SelectionCuts::default();
        let (pushed, stats) = select_dataset_pushdown(&store, &ds, &cuts).unwrap();
        let (baseline, _) = select_dataset_blob(&store, &ds, &cuts).unwrap();
        assert_eq!(pushed, baseline);
        assert_eq!(stats.fallback_events, stats.events);
        dep.shutdown();
    }

    #[test]
    fn mixed_dataset_is_complete() {
        let dep = local_deployment(1, DbCounts::default());
        let store = dep.datastore();
        let events = gen_events(29, 30);
        let ds = store.root().create_dataset("pd/mixed").unwrap();
        let (a, b) = events.split_at(15);
        DataLoader::new(store.clone(), ds.clone())
            .with_columnar(32)
            .ingest_events(a)
            .unwrap();
        DataLoader::new(store.clone(), ds.clone())
            .ingest_events(b)
            .unwrap();
        let cuts = SelectionCuts::default();
        let (pushed, stats) = select_dataset_pushdown(&store, &ds, &cuts).unwrap();
        let (baseline, _) = select_dataset_blob(&store, &ds, &cuts).unwrap();
        assert_eq!(pushed, baseline);
        assert_eq!(stats.events, 30);
        assert!(stats.fallback_events > 0 && stats.fallback_events < 30);
        dep.shutdown();
    }
}
