//! Event ↔ file mapping and columnar file I/O.
//!
//! The dataset is organized the way the paper's sample is: each file holds
//! the events of one `(run, subrun)` pair, and rows of the `rec.slc` group
//! are *slices*, with `run`/`subrun`/`event` columns identifying the owning
//! event — the NOvA HDF5 layout (§IV-B).

use crate::data::{EventRecord, SliceQuantities};
use crate::generator::NovaGenerator;
use hepfile::table::{TableError, TableFileReader, TableFileWriter};
use hepfile::{ColumnData, TableGroup};
use std::path::{Path, PathBuf};

/// Subruns per run in the synthetic dataset layout.
pub const SUBRUNS_PER_RUN: u64 = 64;

/// The group name storing slice quantities (NOvA's `rec.slc`).
pub const SLICE_GROUP: &str = "rec.slc";

/// `(run, subrun)` covered by file `file_idx`.
pub fn file_coordinates(file_idx: u64) -> (u64, u64) {
    (file_idx / SUBRUNS_PER_RUN, file_idx % SUBRUNS_PER_RUN)
}

/// Generate the events of one file without touching disk (used for direct
/// ingestion and for simulated-scale benchmarks).
pub fn generate_file_events(
    generator: &NovaGenerator,
    file_idx: u64,
    events_per_file: u64,
) -> Vec<EventRecord> {
    let (run, subrun) = file_coordinates(file_idx);
    (0..events_per_file)
        .map(|e| generator.generate(run, subrun, e))
        .collect()
}

/// Write one file's events as a columnar table file. Returns
/// `(n_events, n_slices)`.
pub fn write_file(
    path: &Path,
    generator: &NovaGenerator,
    file_idx: u64,
    events_per_file: u64,
) -> Result<(u64, u64), TableError> {
    let events = generate_file_events(generator, file_idx, events_per_file);
    write_events(path, &events)?;
    let slices = events.iter().map(|e| e.slices.len() as u64).sum();
    Ok((events.len() as u64, slices))
}

/// Write explicit events as a columnar table file.
pub fn write_events(path: &Path, events: &[EventRecord]) -> Result<(), TableError> {
    let n: usize = events.iter().map(|e| e.slices.len()).sum();
    let mut run = Vec::with_capacity(n);
    let mut subrun = Vec::with_capacity(n);
    let mut event = Vec::with_capacity(n);
    let mut slice_id = Vec::with_capacity(n);
    let mut nhit = Vec::with_capacity(n);
    let mut cal_e = Vec::with_capacity(n);
    let mut shower_energy = Vec::with_capacity(n);
    let mut shower_length = Vec::with_capacity(n);
    let mut track_length = Vec::with_capacity(n);
    let mut cvn_nue = Vec::with_capacity(n);
    let mut cvn_numu = Vec::with_capacity(n);
    let mut cvn_nc = Vec::with_capacity(n);
    let mut cosmic_score = Vec::with_capacity(n);
    let mut vertex_x = Vec::with_capacity(n);
    let mut vertex_y = Vec::with_capacity(n);
    let mut vertex_z = Vec::with_capacity(n);
    let mut time_ns = Vec::with_capacity(n);
    let mut remid = Vec::with_capacity(n);
    let mut nu_energy = Vec::with_capacity(n);
    for ev in events {
        for s in &ev.slices {
            run.push(ev.run);
            subrun.push(ev.subrun);
            event.push(ev.event);
            slice_id.push(s.slice_id);
            nhit.push(s.nhit);
            cal_e.push(s.cal_e);
            shower_energy.push(s.shower_energy);
            shower_length.push(s.shower_length);
            track_length.push(s.track_length);
            cvn_nue.push(s.cvn_nue);
            cvn_numu.push(s.cvn_numu);
            cvn_nc.push(s.cvn_nc);
            cosmic_score.push(s.cosmic_score);
            vertex_x.push(s.vertex_x);
            vertex_y.push(s.vertex_y);
            vertex_z.push(s.vertex_z);
            time_ns.push(s.time_ns);
            remid.push(s.remid);
            nu_energy.push(s.nu_energy);
        }
    }
    let mut w = TableFileWriter::create(path);
    w.add_group(TableGroup {
        name: SLICE_GROUP.to_string(),
        columns: vec![
            ("run".into(), ColumnData::U64(run)),
            ("subrun".into(), ColumnData::U64(subrun)),
            ("event".into(), ColumnData::U64(event)),
            ("slice_id".into(), ColumnData::U64(slice_id)),
            ("nhit".into(), ColumnData::U32(nhit)),
            ("cal_e".into(), ColumnData::F32(cal_e)),
            ("shower_energy".into(), ColumnData::F32(shower_energy)),
            ("shower_length".into(), ColumnData::F32(shower_length)),
            ("track_length".into(), ColumnData::F32(track_length)),
            ("cvn_nue".into(), ColumnData::F32(cvn_nue)),
            ("cvn_numu".into(), ColumnData::F32(cvn_numu)),
            ("cvn_nc".into(), ColumnData::F32(cvn_nc)),
            ("cosmic_score".into(), ColumnData::F32(cosmic_score)),
            ("vertex_x".into(), ColumnData::F32(vertex_x)),
            ("vertex_y".into(), ColumnData::F32(vertex_y)),
            ("vertex_z".into(), ColumnData::F32(vertex_z)),
            ("time_ns".into(), ColumnData::F64(time_ns)),
            ("remid".into(), ColumnData::F32(remid)),
            ("nu_energy".into(), ColumnData::F32(nu_energy)),
        ],
    })?;
    w.finish()
}

/// Read a file back into per-event records. Rows sharing
/// `(run, subrun, event)` are regrouped; events with zero slices are not
/// representable in this layout (as in the HDF5 original).
pub fn read_file(path: &Path) -> Result<Vec<EventRecord>, TableError> {
    let r = TableFileReader::open(path)?;
    let g = r.read_group(SLICE_GROUP)?;
    let get_u64 = |name: &str| -> Result<Vec<u64>, TableError> {
        match g.column(name) {
            Some(ColumnData::U64(v)) => Ok(v.clone()),
            _ => Err(TableError::Corrupt(format!("missing u64 column {name}"))),
        }
    };
    let get_u32 = |name: &str| -> Result<Vec<u32>, TableError> {
        match g.column(name) {
            Some(ColumnData::U32(v)) => Ok(v.clone()),
            _ => Err(TableError::Corrupt(format!("missing u32 column {name}"))),
        }
    };
    let get_f32 = |name: &str| -> Result<Vec<f32>, TableError> {
        match g.column(name) {
            Some(ColumnData::F32(v)) => Ok(v.clone()),
            _ => Err(TableError::Corrupt(format!("missing f32 column {name}"))),
        }
    };
    let get_f64 = |name: &str| -> Result<Vec<f64>, TableError> {
        match g.column(name) {
            Some(ColumnData::F64(v)) => Ok(v.clone()),
            _ => Err(TableError::Corrupt(format!("missing f64 column {name}"))),
        }
    };
    let run = get_u64("run")?;
    let subrun = get_u64("subrun")?;
    let event = get_u64("event")?;
    let slice_id = get_u64("slice_id")?;
    let nhit = get_u32("nhit")?;
    let cal_e = get_f32("cal_e")?;
    let shower_energy = get_f32("shower_energy")?;
    let shower_length = get_f32("shower_length")?;
    let track_length = get_f32("track_length")?;
    let cvn_nue = get_f32("cvn_nue")?;
    let cvn_numu = get_f32("cvn_numu")?;
    let cvn_nc = get_f32("cvn_nc")?;
    let cosmic_score = get_f32("cosmic_score")?;
    let vertex_x = get_f32("vertex_x")?;
    let vertex_y = get_f32("vertex_y")?;
    let vertex_z = get_f32("vertex_z")?;
    let time_ns = get_f64("time_ns")?;
    let remid = get_f32("remid")?;
    let nu_energy = get_f32("nu_energy")?;
    let mut events: Vec<EventRecord> = Vec::new();
    for i in 0..run.len() {
        let coords = (run[i], subrun[i], event[i]);
        let slice = SliceQuantities {
            slice_id: slice_id[i],
            nhit: nhit[i],
            cal_e: cal_e[i],
            shower_energy: shower_energy[i],
            shower_length: shower_length[i],
            track_length: track_length[i],
            cvn_nue: cvn_nue[i],
            cvn_numu: cvn_numu[i],
            cvn_nc: cvn_nc[i],
            cosmic_score: cosmic_score[i],
            vertex_x: vertex_x[i],
            vertex_y: vertex_y[i],
            vertex_z: vertex_z[i],
            time_ns: time_ns[i],
            remid: remid[i],
            nu_energy: nu_energy[i],
        };
        match events.last_mut() {
            Some(last) if (last.run, last.subrun, last.event) == coords => last.slices.push(slice),
            _ => events.push(EventRecord {
                run: coords.0,
                subrun: coords.1,
                event: coords.2,
                slices: vec![slice],
            }),
        }
    }
    Ok(events)
}

/// Write a whole dataset of `n_files` files under `dir`. Returns the paths.
pub fn write_dataset(
    dir: &Path,
    generator: &NovaGenerator,
    n_files: u64,
    events_per_file: u64,
) -> Result<Vec<PathBuf>, TableError> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(n_files as usize);
    for f in 0..n_files {
        let p = dir.join(format!("nova_{f:06}.hepf"));
        write_file(&p, generator, f, events_per_file)?;
        paths.push(p);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("nova-files-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn file_coordinates_partition() {
        assert_eq!(file_coordinates(0), (0, 0));
        assert_eq!(file_coordinates(63), (0, 63));
        assert_eq!(file_coordinates(64), (1, 0));
        assert_eq!(file_coordinates(130), (2, 2));
    }

    #[test]
    fn write_read_round_trip_preserves_events() {
        let d = tmpdir("rt");
        let g = NovaGenerator::new(11);
        let p = d.join("f0.hepf");
        write_file(&p, &g, 5, 30).unwrap();
        let events = read_file(&p).unwrap();
        let expected: Vec<EventRecord> = generate_file_events(&g, 5, 30)
            .into_iter()
            .filter(|e| !e.slices.is_empty())
            .collect();
        assert_eq!(events, expected);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn file_has_the_paper_layout() {
        let d = tmpdir("layout");
        let g = NovaGenerator::new(1);
        let p = d.join("f.hepf");
        write_file(&p, &g, 0, 10).unwrap();
        let r = TableFileReader::open(&p).unwrap();
        let schema = r.schema();
        assert_eq!(schema.len(), 1);
        assert_eq!(schema[0].name, SLICE_GROUP);
        let names: Vec<&str> = schema[0].columns.iter().map(|c| c.name.as_str()).collect();
        // The three index columns plus member columns — §IV-B.
        assert!(names.contains(&"run"));
        assert!(names.contains(&"subrun"));
        assert!(names.contains(&"event"));
        assert!(names.contains(&"cvn_nue"));
        // All columns equal length.
        let rows = schema[0].n_rows;
        assert!(rows > 0);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn dataset_writer_creates_all_files() {
        let d = tmpdir("ds");
        let g = NovaGenerator::new(2);
        let paths = write_dataset(&d.join("data"), &g, 6, 8).unwrap();
        assert_eq!(paths.len(), 6);
        for p in &paths {
            assert!(p.exists());
            assert!(!read_file(p).unwrap().is_empty());
        }
        std::fs::remove_dir_all(&d).ok();
    }
}
