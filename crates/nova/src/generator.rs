//! Deterministic synthetic event generation.
//!
//! Every event is generated from a seed derived from `(global_seed, run,
//! subrun, event)`, so the same event has identical contents no matter
//! which workflow, worker, or iteration order produces it — the property
//! the paper's equal-results comparison between workflows depends on.

use crate::data::{EventRecord, SliceQuantities};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Statistical shape of the generated sample.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Mean candidate slices per event. The paper's beam sample has
    /// 17,878,347 slices / 4,359,414 events ≈ 4.1.
    pub slices_per_event_mean: f64,
    /// Probability that a slice is signal-like (drawn from the ν_e-like
    /// distributions instead of background). NOvA's overall down-selection
    /// is O(10⁻⁹) from raw data; after the upstream reduction implied by
    /// the analysis files, a per-slice signal fraction of ~1e-4 gives the
    /// same "almost everything is rejected" behaviour at tractable sample
    /// sizes.
    pub signal_fraction: f64,
    /// Detector half-extent used for vertex generation (cm).
    pub detector_half_xy: f32,
    /// Detector length (cm).
    pub detector_z: f32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            slices_per_event_mean: 4.1,
            signal_fraction: 1e-4,
            detector_half_xy: 780.0, // NOvA far detector is ~15.6 m wide/tall
            detector_z: 6000.0,      // and ~60 m long
        }
    }
}

impl GeneratorConfig {
    /// The cosmic-ray sample shape (§III-A): recorded at a rate 12× higher
    /// than the beam data (~50 slices/event on average at the same events
    /// per file), and essentially devoid of beam-neutrino signal.
    pub fn cosmic() -> GeneratorConfig {
        GeneratorConfig {
            slices_per_event_mean: 4.1 * 12.0,
            signal_fraction: 1e-6,
            ..GeneratorConfig::default()
        }
    }
}

/// The seeded generator.
#[derive(Debug, Clone)]
pub struct NovaGenerator {
    seed: u64,
    config: GeneratorConfig,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl NovaGenerator {
    /// Create a generator with the default NOvA-like statistics.
    pub fn new(seed: u64) -> NovaGenerator {
        NovaGenerator {
            seed,
            config: GeneratorConfig::default(),
        }
    }

    /// Create with explicit statistics.
    pub fn with_config(seed: u64, config: GeneratorConfig) -> NovaGenerator {
        NovaGenerator { seed, config }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    fn event_rng(&self, run: u64, subrun: u64, event: u64) -> StdRng {
        let h =
            mix(self.seed ^ mix(run) ^ mix(subrun.rotate_left(17)) ^ mix(event.rotate_left(34)));
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&h.to_le_bytes());
        key[8..16].copy_from_slice(&mix(h).to_le_bytes());
        key[16..24].copy_from_slice(&mix(mix(h)).to_le_bytes());
        key[24..].copy_from_slice(&mix(mix(mix(h))).to_le_bytes());
        StdRng::from_seed(key)
    }

    /// Generate one event, deterministically.
    pub fn generate(&self, run: u64, subrun: u64, event: u64) -> EventRecord {
        let mut rng = self.event_rng(run, subrun, event);
        let n_slices = sample_poissonish(&mut rng, self.config.slices_per_event_mean);
        let mut slices = Vec::with_capacity(n_slices);
        for slice_id in 0..n_slices as u64 {
            let signal = rng.gen_bool(self.config.signal_fraction);
            slices.push(self.generate_slice(&mut rng, slice_id, signal));
        }
        EventRecord {
            run,
            subrun,
            event,
            slices,
        }
    }

    fn generate_slice(&self, rng: &mut StdRng, slice_id: u64, signal: bool) -> SliceQuantities {
        let c = &self.config;
        // Vertex: signal events are produced by the beam throughout the
        // fiducial volume; background (mostly cosmics at the surface
        // detector) clusters near the detector edges/top.
        let (vx, vy, vz) = if signal {
            (
                rng.gen_range(-0.7..0.7) * c.detector_half_xy,
                rng.gen_range(-0.7..0.7) * c.detector_half_xy,
                rng.gen_range(0.05..0.95) * c.detector_z,
            )
        } else {
            (
                rng.gen_range(-1.0..1.0) * c.detector_half_xy,
                // cosmics enter from the top half
                rng.gen_range(-0.2..1.0) * c.detector_half_xy,
                rng.gen_range(0.0..1.0) * c.detector_z,
            )
        };
        let (cvn_nue, cvn_numu, cvn_nc, cosmic, remid) = if signal {
            (
                rng.gen_range(0.85f32..1.0),
                rng.gen_range(0.0f32..0.2),
                rng.gen_range(0.0f32..0.3),
                rng.gen_range(0.0f32..0.35),
                rng.gen_range(0.0f32..0.3),
            )
        } else {
            // Background scores: mostly low ν_e score with a tail; the tail
            // is what makes cut tuning non-trivial.
            let tail = rng.gen_bool(0.02);
            (
                if tail {
                    rng.gen_range(0.6f32..0.95)
                } else {
                    rng.gen_range(0.0f32..0.6)
                },
                rng.gen_range(0.0f32..1.0),
                rng.gen_range(0.0f32..1.0),
                rng.gen_range(0.3f32..1.0),
                rng.gen_range(0.0f32..1.0),
            )
        };
        let energy = if signal {
            rng.gen_range(1.0f32..4.0) // the ν_e appearance peak region
        } else {
            rng.gen_range(0.1f32..20.0)
        };
        SliceQuantities {
            slice_id,
            nhit: if signal {
                rng.gen_range(40..400)
            } else {
                rng.gen_range(5..1200)
            },
            cal_e: energy * rng.gen_range(0.8..1.2),
            shower_energy: energy * rng.gen_range(0.4..0.9),
            shower_length: rng.gen_range(50.0..600.0),
            track_length: if signal {
                rng.gen_range(0.0..200.0)
            } else {
                rng.gen_range(0.0..2000.0)
            },
            cvn_nue,
            cvn_numu,
            cvn_nc,
            cosmic_score: cosmic,
            vertex_x: vx,
            vertex_y: vy,
            vertex_z: vz,
            time_ns: rng.gen_range(25_000.0..475_000.0),
            remid,
            nu_energy: energy,
        }
    }
}

/// Small-mean Poisson sampling via inversion (exact for our λ ≈ 4.1).
fn sample_poissonish(rng: &mut StdRng, mean: f64) -> usize {
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 1000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = NovaGenerator::new(42);
        let a = g.generate(10, 3, 777);
        let b = g.generate(10, 3, 777);
        assert_eq!(a, b);
        // Different seeds or coordinates give different events.
        assert_ne!(g.generate(10, 3, 778), a);
        assert_ne!(NovaGenerator::new(43).generate(10, 3, 777), a);
    }

    #[test]
    fn determinism_is_order_independent() {
        let g = NovaGenerator::new(7);
        let forward: Vec<_> = (0..50).map(|e| g.generate(1, 1, e)).collect();
        let mut backward: Vec<_> = (0..50).rev().map(|e| g.generate(1, 1, e)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn slice_multiplicity_matches_the_paper() {
        // ~4.1 slices/event over a large sample.
        let g = NovaGenerator::new(1);
        let total: usize = (0..5000u64).map(|e| g.generate(1, 1, e).slices.len()).sum();
        let mean = total as f64 / 5000.0;
        assert!(
            (3.7..4.5).contains(&mean),
            "slices/event = {mean}, expected ~4.1"
        );
    }

    #[test]
    fn signal_is_rare() {
        let g = NovaGenerator::new(2);
        let mut signal_like = 0usize;
        let mut total = 0usize;
        for e in 0..2000u64 {
            for s in g.generate(1, 1, e).slices {
                total += 1;
                if s.cvn_nue > 0.85 && s.cosmic_score < 0.35 {
                    signal_like += 1;
                }
            }
        }
        assert!(total > 7000);
        // Background tail + signal: well under 5% of slices look signal-like.
        assert!(
            (signal_like as f64) / (total as f64) < 0.05,
            "{signal_like}/{total}"
        );
    }

    #[test]
    fn cosmic_sample_is_twelve_times_denser() {
        let beam = NovaGenerator::new(4);
        let cosmic = NovaGenerator::with_config(4, GeneratorConfig::cosmic());
        let beam_slices: usize = (0..500u64)
            .map(|e| beam.generate(1, 0, e).slices.len())
            .sum();
        let cosmic_slices: usize = (0..500u64)
            .map(|e| cosmic.generate(1, 0, e).slices.len())
            .sum();
        let ratio = cosmic_slices as f64 / beam_slices as f64;
        assert!(
            (10.0..14.0).contains(&ratio),
            "cosmic/beam slice ratio = {ratio}, expected ~12"
        );
    }

    #[test]
    fn quantities_are_in_range() {
        let g = NovaGenerator::new(3);
        for e in 0..200u64 {
            let ev = g.generate(2, 5, e);
            for s in &ev.slices {
                assert!((0.0..=1.0).contains(&s.cvn_nue));
                assert!((0.0..=1.0).contains(&s.cosmic_score));
                assert!(s.vertex_x.abs() <= 780.0);
                assert!(s.nu_energy > 0.0);
                assert!(s.time_ns > 0.0);
            }
        }
    }
}
