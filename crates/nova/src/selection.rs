//! The candidate selection — the CAFAna stand-in.
//!
//! The paper runs NOvA's published ν_e-appearance candidate selection
//! (unchanged!) inside both workflows and compares accepted slice IDs. Our
//! stand-in is a cut-based selection in the same style: fiducial
//! containment, PID score cuts, cosmic rejection, and an energy window.
//! Both workflows in this reproduction call exactly this function, so the
//! equal-results check carries the same meaning.

use crate::data::{EventRecord, SliceQuantities};

/// The selection cuts. Defaults approximate NOvA's ν_e appearance
/// selection style (CVN > 0.84 etc.); exact values only shape the
/// acceptance rate, not the workflow comparison.
#[derive(Debug, Clone)]
pub struct SelectionCuts {
    /// Minimum CVN ν_e score.
    pub min_cvn_nue: f32,
    /// Maximum cosmic-rejection score.
    pub max_cosmic_score: f32,
    /// Fiducial volume margin from the detector edge (cm).
    pub fiducial_margin: f32,
    /// Detector half-extent in x/y (cm).
    pub detector_half_xy: f32,
    /// Detector length (cm).
    pub detector_z: f32,
    /// Hit-count window.
    pub nhit_range: (u32, u32),
    /// Reconstructed-energy window (GeV), the appearance peak region.
    pub energy_range: (f32, f32),
    /// Maximum muon-id score (reject ν_μ charged-current).
    pub max_remid: f32,
}

impl Default for SelectionCuts {
    fn default() -> Self {
        SelectionCuts {
            min_cvn_nue: 0.84,
            max_cosmic_score: 0.45,
            fiducial_margin: 100.0,
            detector_half_xy: 780.0,
            detector_z: 6000.0,
            nhit_range: (30, 500),
            energy_range: (1.0, 4.5),
            max_remid: 0.5,
        }
    }
}

impl SelectionCuts {
    /// Whether one slice passes all cuts.
    pub fn passes(&self, s: &SliceQuantities) -> bool {
        // Fiducial containment.
        let half = self.detector_half_xy - self.fiducial_margin;
        if s.vertex_x.abs() > half || s.vertex_y.abs() > half {
            return false;
        }
        if s.vertex_z < self.fiducial_margin || s.vertex_z > self.detector_z - self.fiducial_margin
        {
            return false;
        }
        // Quality.
        if s.nhit < self.nhit_range.0 || s.nhit > self.nhit_range.1 {
            return false;
        }
        // Cosmic rejection.
        if s.cosmic_score > self.max_cosmic_score {
            return false;
        }
        // PID.
        if s.cvn_nue < self.min_cvn_nue {
            return false;
        }
        if s.remid > self.max_remid {
            return false;
        }
        // Energy window.
        s.nu_energy >= self.energy_range.0 && s.nu_energy <= self.energy_range.1
    }
}

/// Run the selection over one event, returning the **global** IDs of
/// accepted slices (what both workflows accumulate and compare, §IV).
pub fn select_slices(event: &EventRecord, cuts: &SelectionCuts) -> Vec<u64> {
    event
        .slices
        .iter()
        .filter(|s| cuts.passes(s))
        .map(|s| event.global_slice_id(s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::NovaGenerator;

    fn signal_slice() -> SliceQuantities {
        SliceQuantities {
            slice_id: 0,
            nhit: 120,
            cal_e: 2.1,
            shower_energy: 1.5,
            shower_length: 320.0,
            track_length: 40.0,
            cvn_nue: 0.95,
            cvn_numu: 0.05,
            cvn_nc: 0.1,
            cosmic_score: 0.1,
            vertex_x: 50.0,
            vertex_y: -120.0,
            vertex_z: 2500.0,
            time_ns: 220_000.0,
            remid: 0.1,
            nu_energy: 2.2,
        }
    }

    #[test]
    fn clear_signal_passes() {
        assert!(SelectionCuts::default().passes(&signal_slice()));
    }

    #[test]
    fn each_cut_rejects() {
        let cuts = SelectionCuts::default();
        let mut s = signal_slice();
        s.cvn_nue = 0.5;
        assert!(!cuts.passes(&s));
        let mut s = signal_slice();
        s.cosmic_score = 0.9;
        assert!(!cuts.passes(&s));
        let mut s = signal_slice();
        s.vertex_x = 760.0; // outside fiducial margin
        assert!(!cuts.passes(&s));
        let mut s = signal_slice();
        s.vertex_z = 5950.0;
        assert!(!cuts.passes(&s));
        let mut s = signal_slice();
        s.nhit = 5;
        assert!(!cuts.passes(&s));
        let mut s = signal_slice();
        s.remid = 0.9;
        assert!(!cuts.passes(&s));
        let mut s = signal_slice();
        s.nu_energy = 12.0;
        assert!(!cuts.passes(&s));
    }

    #[test]
    fn selection_is_a_strong_downselection() {
        // Over a big synthetic sample the acceptance must be tiny but
        // nonzero (the paper's workloads both accept *some* slices and
        // reject the overwhelming majority).
        let g = NovaGenerator::new(99);
        let cuts = SelectionCuts::default();
        let mut accepted = 0usize;
        let mut total = 0usize;
        for e in 0..20_000u64 {
            let ev = g.generate(1, 0, e);
            total += ev.slices.len();
            accepted += select_slices(&ev, &cuts).len();
        }
        assert!(total > 70_000);
        let rate = accepted as f64 / total as f64;
        assert!(rate > 0.0, "selection accepted nothing");
        assert!(rate < 0.01, "acceptance rate too high: {rate}");
    }

    #[test]
    fn selection_is_deterministic() {
        let g = NovaGenerator::new(5);
        let cuts = SelectionCuts::default();
        let ev = g.generate(3, 1, 12345);
        assert_eq!(select_slices(&ev, &cuts), select_slices(&ev, &cuts));
    }
}
