//! The candidate selection — the CAFAna stand-in.
//!
//! The paper runs NOvA's published ν_e-appearance candidate selection
//! (unchanged!) inside both workflows and compares accepted slice IDs. Our
//! stand-in is a cut-based selection in the same style: fiducial
//! containment, PID score cuts, cosmic rejection, and an energy window.
//! Both workflows in this reproduction call exactly this function, so the
//! equal-results check carries the same meaning.

use crate::data::{EventRecord, SliceQuantities};

/// The selection cuts. Defaults approximate NOvA's ν_e appearance
/// selection style (CVN > 0.84 etc.); exact values only shape the
/// acceptance rate, not the workflow comparison.
#[derive(Debug, Clone)]
pub struct SelectionCuts {
    /// Minimum CVN ν_e score.
    pub min_cvn_nue: f32,
    /// Maximum cosmic-rejection score.
    pub max_cosmic_score: f32,
    /// Fiducial volume margin from the detector edge (cm).
    pub fiducial_margin: f32,
    /// Detector half-extent in x/y (cm).
    pub detector_half_xy: f32,
    /// Detector length (cm).
    pub detector_z: f32,
    /// Hit-count window.
    pub nhit_range: (u32, u32),
    /// Reconstructed-energy window (GeV), the appearance peak region.
    pub energy_range: (f32, f32),
    /// Maximum muon-id score (reject ν_μ charged-current).
    pub max_remid: f32,
}

impl Default for SelectionCuts {
    fn default() -> Self {
        SelectionCuts {
            min_cvn_nue: 0.84,
            max_cosmic_score: 0.45,
            fiducial_margin: 100.0,
            detector_half_xy: 780.0,
            detector_z: 6000.0,
            nhit_range: (30, 500),
            energy_range: (1.0, 4.5),
            max_remid: 0.5,
        }
    }
}

impl SelectionCuts {
    /// Whether one slice passes all cuts.
    pub fn passes(&self, s: &SliceQuantities) -> bool {
        // Fiducial containment.
        let half = self.detector_half_xy - self.fiducial_margin;
        if s.vertex_x.abs() > half || s.vertex_y.abs() > half {
            return false;
        }
        if s.vertex_z < self.fiducial_margin || s.vertex_z > self.detector_z - self.fiducial_margin
        {
            return false;
        }
        // Quality.
        if s.nhit < self.nhit_range.0 || s.nhit > self.nhit_range.1 {
            return false;
        }
        // Cosmic rejection.
        if s.cosmic_score > self.max_cosmic_score {
            return false;
        }
        // PID.
        if s.cvn_nue < self.min_cvn_nue {
            return false;
        }
        if s.remid > self.max_remid {
            return false;
        }
        // Energy window.
        s.nu_energy >= self.energy_range.0 && s.nu_energy <= self.energy_range.1
    }
}

/// Reusable column buffers for the vectorized selection kernel, so the
/// per-event hot loop allocates nothing after warm-up.
#[derive(Default)]
pub struct SelectScratch {
    vertex_x: ColF32,
    vertex_y: ColF32,
    vertex_z: ColF32,
    cosmic: ColF32,
    cvn_nue: ColF32,
    remid: ColF32,
    energy: ColF32,
    nhit: Vec<u32>,
    nhit_min: u32,
    nhit_max: u32,
    pass: Vec<bool>,
}

/// One transposed f32 column with its event-level zone map.
#[derive(Default)]
struct ColF32 {
    vals: Vec<f32>,
    /// Min/max over non-NaN values (`+inf`/`-inf` when all are NaN).
    min: f32,
    max: f32,
    has_nan: bool,
}

impl ColF32 {
    fn clear(&mut self) {
        self.vals.clear();
        self.min = f32::INFINITY;
        self.max = f32::NEG_INFINITY;
        self.has_nan = false;
    }

    fn push(&mut self, v: f32) {
        if v.is_nan() {
            self.has_nan = true;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.vals.push(v);
    }
}

impl SelectScratch {
    /// Fresh scratch (buffers grow to the largest event seen).
    pub fn new() -> SelectScratch {
        SelectScratch::default()
    }

    fn load(&mut self, event: &EventRecord) {
        for c in [
            &mut self.vertex_x,
            &mut self.vertex_y,
            &mut self.vertex_z,
            &mut self.cosmic,
            &mut self.cvn_nue,
            &mut self.remid,
            &mut self.energy,
        ] {
            c.clear();
        }
        self.nhit.clear();
        self.nhit_min = u32::MAX;
        self.nhit_max = 0;
        self.pass.clear();
        for s in &event.slices {
            self.vertex_x.push(s.vertex_x);
            self.vertex_y.push(s.vertex_y);
            self.vertex_z.push(s.vertex_z);
            self.cosmic.push(s.cosmic_score);
            self.cvn_nue.push(s.cvn_nue);
            self.remid.push(s.remid);
            self.energy.push(s.nu_energy);
            self.nhit_min = self.nhit_min.min(s.nhit);
            self.nhit_max = self.nhit_max.max(s.nhit);
            self.nhit.push(s.nhit);
        }
        self.pass.resize(event.slices.len(), true);
    }
}

/// Outcome of one cut's zone-map check against a column's min/max.
enum Zone {
    /// No slice can pass this cut — the whole event is rejected.
    AllFail,
    /// Every slice passes this cut — skip the column sweep.
    AllPass,
    /// Mixed: sweep the column into the bitmap.
    Mixed,
}

/// Zone check + column sweep for one predicate of the form
/// "reject when `reject(v)`" — NaN never rejects (mirroring the scalar
/// comparisons, where `NaN > b` and `NaN < b` are both false).
fn apply_not<R: Fn(f32) -> bool>(col: &ColF32, pass: &mut [bool], zone: Zone, reject: R) -> bool {
    match zone {
        Zone::AllFail => return false,
        Zone::AllPass => return true,
        Zone::Mixed => {}
    }
    for (b, &v) in pass.iter_mut().zip(&col.vals) {
        *b &= !reject(v);
    }
    true
}

/// [`select_slices`] through caller-owned scratch and output buffers: the
/// vectorized kernel. Each cut is evaluated over a whole transposed column
/// into a selection bitmap, and the event-level zone map (column min/max)
/// short-circuits cuts that provably reject everything or nothing —
/// the in-memory analogue of the storage tier's per-page pruning.
///
/// Appends the accepted global slice ids to `out` in slice order;
/// byte-identical to filtering with [`SelectionCuts::passes`].
pub fn select_slices_into(
    event: &EventRecord,
    cuts: &SelectionCuts,
    scratch: &mut SelectScratch,
    out: &mut Vec<u64>,
) {
    if event.slices.is_empty() {
        return;
    }
    scratch.load(event);
    let half = cuts.detector_half_xy - cuts.fiducial_margin;
    let z_lo = cuts.fiducial_margin;
    let z_hi = cuts.detector_z - cuts.fiducial_margin;
    let (nhit_lo, nhit_hi) = cuts.nhit_range;
    let (e_lo, e_hi) = cuts.energy_range;

    // Fiducial |x| <= half, |y| <= half (NaN passes: `NaN.abs() > half` is
    // false in the scalar code).
    for c in [&scratch.vertex_x, &scratch.vertex_y] {
        let zone = if !c.has_nan && (c.min > half || c.max < -half) {
            Zone::AllFail
        } else if c.max <= half && c.min >= -half {
            Zone::AllPass
        } else {
            Zone::Mixed
        };
        if !apply_not(c, &mut scratch.pass, zone, |v| v.abs() > half) {
            return;
        }
    }
    // z window: reject when z < z_lo or z > z_hi.
    {
        let c = &scratch.vertex_z;
        let zone = if !c.has_nan && (c.max < z_lo || c.min > z_hi) {
            Zone::AllFail
        } else if c.min >= z_lo && c.max <= z_hi {
            Zone::AllPass
        } else {
            Zone::Mixed
        };
        if !apply_not(c, &mut scratch.pass, zone, |v| v < z_lo || v > z_hi) {
            return;
        }
    }
    // Hit-count window (integers have no NaN case).
    if scratch.nhit_max < nhit_lo || scratch.nhit_min > nhit_hi {
        return;
    }
    if scratch.nhit_min < nhit_lo || scratch.nhit_max > nhit_hi {
        for (b, &n) in scratch.pass.iter_mut().zip(&scratch.nhit) {
            *b &= n >= nhit_lo && n <= nhit_hi;
        }
    }
    // Score cuts: reject when score compares out of bounds; NaN passes.
    for (c, max_bound) in [
        (&scratch.cosmic, cuts.max_cosmic_score),
        (&scratch.remid, cuts.max_remid),
    ] {
        let zone = if !c.has_nan && c.min > max_bound {
            Zone::AllFail
        } else if c.max <= max_bound {
            Zone::AllPass
        } else {
            Zone::Mixed
        };
        if !apply_not(c, &mut scratch.pass, zone, |v| v > max_bound) {
            return;
        }
    }
    {
        let c = &scratch.cvn_nue;
        let zone = if !c.has_nan && c.max < cuts.min_cvn_nue {
            Zone::AllFail
        } else if c.min >= cuts.min_cvn_nue {
            Zone::AllPass
        } else {
            Zone::Mixed
        };
        if !apply_not(c, &mut scratch.pass, zone, |v| v < cuts.min_cvn_nue) {
            return;
        }
    }
    // Energy window: pass iff `e_lo <= v <= e_hi`; NaN *fails* (the scalar
    // code requires the comparisons to hold). An all-NaN column has
    // min=+inf, which correctly lands in AllFail.
    {
        let c = &scratch.energy;
        if c.max < e_lo || c.min > e_hi {
            return;
        }
        if c.has_nan || c.min < e_lo || c.max > e_hi {
            for (b, &v) in scratch.pass.iter_mut().zip(&c.vals) {
                *b &= v >= e_lo && v <= e_hi;
            }
        }
    }
    for (&keep, s) in scratch.pass.iter().zip(&event.slices) {
        debug_assert_eq!(keep, cuts.passes(s));
        if keep {
            out.push(event.global_slice_id(s));
        }
    }
}

/// Run the selection over one event, returning the **global** IDs of
/// accepted slices (what both workflows accumulate and compare, §IV).
///
/// Allocates fresh buffers per call; hot loops should hold a
/// [`SelectScratch`] and call [`select_slices_into`] instead.
pub fn select_slices(event: &EventRecord, cuts: &SelectionCuts) -> Vec<u64> {
    let mut scratch = SelectScratch::new();
    let mut out = Vec::new();
    select_slices_into(event, cuts, &mut scratch, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::NovaGenerator;

    fn signal_slice() -> SliceQuantities {
        SliceQuantities {
            slice_id: 0,
            nhit: 120,
            cal_e: 2.1,
            shower_energy: 1.5,
            shower_length: 320.0,
            track_length: 40.0,
            cvn_nue: 0.95,
            cvn_numu: 0.05,
            cvn_nc: 0.1,
            cosmic_score: 0.1,
            vertex_x: 50.0,
            vertex_y: -120.0,
            vertex_z: 2500.0,
            time_ns: 220_000.0,
            remid: 0.1,
            nu_energy: 2.2,
        }
    }

    #[test]
    fn clear_signal_passes() {
        assert!(SelectionCuts::default().passes(&signal_slice()));
    }

    #[test]
    fn each_cut_rejects() {
        let cuts = SelectionCuts::default();
        let mut s = signal_slice();
        s.cvn_nue = 0.5;
        assert!(!cuts.passes(&s));
        let mut s = signal_slice();
        s.cosmic_score = 0.9;
        assert!(!cuts.passes(&s));
        let mut s = signal_slice();
        s.vertex_x = 760.0; // outside fiducial margin
        assert!(!cuts.passes(&s));
        let mut s = signal_slice();
        s.vertex_z = 5950.0;
        assert!(!cuts.passes(&s));
        let mut s = signal_slice();
        s.nhit = 5;
        assert!(!cuts.passes(&s));
        let mut s = signal_slice();
        s.remid = 0.9;
        assert!(!cuts.passes(&s));
        let mut s = signal_slice();
        s.nu_energy = 12.0;
        assert!(!cuts.passes(&s));
    }

    #[test]
    fn selection_is_a_strong_downselection() {
        // Over a big synthetic sample the acceptance must be tiny but
        // nonzero (the paper's workloads both accept *some* slices and
        // reject the overwhelming majority).
        let g = NovaGenerator::new(99);
        let cuts = SelectionCuts::default();
        let mut accepted = 0usize;
        let mut total = 0usize;
        for e in 0..20_000u64 {
            let ev = g.generate(1, 0, e);
            total += ev.slices.len();
            accepted += select_slices(&ev, &cuts).len();
        }
        assert!(total > 70_000);
        let rate = accepted as f64 / total as f64;
        assert!(rate > 0.0, "selection accepted nothing");
        assert!(rate < 0.01, "acceptance rate too high: {rate}");
    }

    #[test]
    fn selection_is_deterministic() {
        let g = NovaGenerator::new(5);
        let cuts = SelectionCuts::default();
        let ev = g.generate(3, 1, 12345);
        assert_eq!(select_slices(&ev, &cuts), select_slices(&ev, &cuts));
    }
}
