//! The HDF2HEPnOS analogue (paper §IV-B).
//!
//! The paper's `HDF2HEPnOS` tool (1) analyzes the structure of an HDF5
//! file, (2) deduces the stored class and generates C++ code for it along
//! with load/store functions, and (3) provides a `DataLoader` that is run
//! in parallel to ingest files — "the only step whose scalability is
//! constrained by the number of files".
//!
//! This module reproduces all three: [`generate_class_code`] emits Rust
//! source from a table schema, and [`DataLoader`] ingests files (or
//! pre-generated events) into a [`hepnos::DataStore`] through a
//! [`hepnos::WriteBatch`].

use crate::data::EventRecord;

use crate::files;
use hepfile::table::{GroupSchema, TableError};
use hepnos::{DataSet, DataStore, HepnosError, ProductLabel, WriteBatch};
use std::path::Path;

/// The product label under which slice vectors are stored.
pub fn slice_label() -> ProductLabel {
    ProductLabel::new("rec.slc").expect("static label is valid")
}

/// The product type name of the stored slice vectors, as recorded in
/// product keys (needed for [`hepnos::PepOptions::prefetch`]).
pub fn slice_type_name() -> String {
    hepnos::keys::short_type_name::<Vec<crate::data::SliceQuantities>>()
}

/// The product label under which event summaries are stored.
pub fn summary_label() -> ProductLabel {
    ProductLabel::new("rec.summary").expect("static label is valid")
}

/// The product type name of stored event summaries.
pub fn summary_type_name() -> String {
    hepnos::keys::short_type_name::<crate::data::EventSummary>()
}

/// Load an event's slices regardless of stored representation: the
/// columnar page blob when present, the opaque serialized vector
/// otherwise. Returns `None` when the event has no slice product at all.
pub fn load_slices(
    event: &hepnos::Event,
) -> Result<Option<Vec<crate::data::SliceQuantities>>, HepnosError> {
    if let Some(blob) = event.load_raw(&slice_label(), &crate::columnar::columnar_type_name())? {
        return crate::columnar::decode_slices(&blob).map(Some);
    }
    event.load(&slice_label())
}

/// The [`load_slices`] twin for PEP callbacks: serves from the prefetched
/// bytes when the columnar/opaque slice labels were in
/// [`hepnos::PepOptions::prefetch`] — zero-copy for the columnar blob —
/// and falls back to a storage read otherwise.
pub fn load_slices_prefetched(
    pe: &hepnos::PrefetchedEvent,
) -> Result<Option<Vec<crate::data::SliceQuantities>>, HepnosError> {
    if let Some(blob) = pe.load_raw(&slice_label(), &crate::columnar::columnar_type_name())? {
        return crate::columnar::decode_slices(&blob).map(Some);
    }
    pe.load(&slice_label())
}

/// Generate Rust source for the class stored in `schema` — the codegen
/// half of HDF2HEPnOS. Index columns (`run`, `subrun`, `event`) identify
/// the owning event and are not members.
pub fn generate_class_code(schema: &GroupSchema) -> String {
    let struct_name = schema
        .name
        .rsplit('.')
        .next()
        .unwrap_or(&schema.name)
        .to_string();
    let struct_name = {
        let mut c = struct_name.chars();
        match c.next() {
            Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
            None => struct_name,
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "/// Generated from table group `{}` by hdf2hepnos.\n",
        schema.name
    ));
    out.push_str("#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]\n");
    out.push_str(&format!("pub struct {struct_name} {{\n"));
    for col in &schema.columns {
        if matches!(col.name.as_str(), "run" | "subrun" | "event") {
            continue;
        }
        out.push_str(&format!("    pub {}: {},\n", col.name, col.ty.rust_type()));
    }
    out.push_str("}\n");
    out
}

/// Ingestion statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Files ingested.
    pub files: u64,
    /// Events created.
    pub events: u64,
    /// Slices stored (rows).
    pub slices: u64,
    /// Write-pipeline counters of the product batch, when the overlapped
    /// (async) path was used.
    pub batch: Option<hepnos::BatchStats>,
}

impl IngestStats {
    /// Fold another loader's statistics into this one (batch counters
    /// aggregate per [`hepnos::BatchStats::merge`]).
    pub fn merge(&mut self, other: &IngestStats) {
        self.files += other.files;
        self.events += other.events;
        self.slices += other.slices;
        if let Some(b) = &other.batch {
            self.batch.get_or_insert_with(Default::default).merge(b);
        }
    }
}

/// Errors from ingestion.
#[derive(Debug)]
pub enum LoaderError {
    /// File could not be read.
    Table(TableError),
    /// The datastore rejected a write.
    Hepnos(HepnosError),
}

impl std::fmt::Display for LoaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoaderError::Table(e) => write!(f, "loader table error: {e}"),
            LoaderError::Hepnos(e) => write!(f, "loader hepnos error: {e}"),
        }
    }
}

impl std::error::Error for LoaderError {}

impl From<TableError> for LoaderError {
    fn from(e: TableError) -> Self {
        LoaderError::Table(e)
    }
}

impl From<HepnosError> for LoaderError {
    fn from(e: HepnosError) -> Self {
        LoaderError::Hepnos(e)
    }
}

/// Ingests NOvA-layout files into HEPnOS.
pub struct DataLoader {
    store: DataStore,
    dataset: DataSet,
    /// When set, slice products are stored as columnar page blobs with this
    /// many rows per page (under the same `rec.slc` label, but the columnar
    /// type name) instead of opaque serialized vectors.
    columnar_page_rows: Option<u32>,
}

impl DataLoader {
    /// Create a loader targeting `dataset` (blob-path storage).
    pub fn new(store: DataStore, dataset: DataSet) -> DataLoader {
        DataLoader {
            store,
            dataset,
            columnar_page_rows: None,
        }
    }

    /// Store slice products through the columnar encoder
    /// ([`crate::columnar::encode_event`]) so selections can be pushed down
    /// to the storage tier. `page_rows` is the page granularity of zone-map
    /// pruning; [`crate::columnar::DEFAULT_PAGE_ROWS`] is a good default.
    pub fn with_columnar(mut self, page_rows: u32) -> DataLoader {
        self.columnar_page_rows = Some(page_rows.max(1));
        self
    }

    /// Store one event's slices on `batch` in the configured representation.
    fn store_slices(
        &self,
        batch: &mut WriteBatch,
        event: &hepnos::Event,
        ev: &EventRecord,
        label: &ProductLabel,
    ) -> Result<(), HepnosError> {
        match self.columnar_page_rows {
            Some(rows) => batch.store_raw(
                event,
                label,
                &crate::columnar::columnar_type_name(),
                crate::columnar::encode_event(ev, rows),
            ),
            None => batch.store(event, label, &ev.slices),
        }
    }

    /// Ingest one file.
    pub fn ingest_file(&self, path: &Path) -> Result<IngestStats, LoaderError> {
        let events = files::read_file(path)?;
        let mut stats = self.ingest_events(&events)?;
        stats.files = 1;
        Ok(stats)
    }

    /// Ingest pre-generated events (used by simulated-scale benchmarks to
    /// skip the disk round trip).
    pub fn ingest_events(&self, events: &[EventRecord]) -> Result<IngestStats, LoaderError> {
        let uuid = self
            .dataset
            .uuid()
            .ok_or_else(|| HepnosError::InvalidPath("cannot ingest into the root".into()))?;
        let label = slice_label();
        let mut stats = IngestStats::default();
        let mut batch = WriteBatch::new(&self.store);
        // Events in one file share (run, subrun); create the containers
        // once per change.
        let mut current: Option<(u64, u64, hepnos::SubRun)> = None;
        for ev in events {
            let subrun = match &current {
                Some((r, s, sr)) if (*r, *s) == (ev.run, ev.subrun) => sr.clone(),
                _ => {
                    let run = batch.create_run(&self.dataset, ev.run)?;
                    let sr = batch.create_subrun(&run, ev.subrun)?;
                    current = Some((ev.run, ev.subrun, sr.clone()));
                    sr
                }
            };
            let event = batch.create_event(&subrun, &uuid, ev.event)?;
            self.store_slices(&mut batch, &event, ev, &label)?;
            batch.store(&event, &summary_label(), &ev.summary())?;
            stats.events += 1;
            stats.slices += ev.slices.len() as u64;
        }
        batch.flush()?;
        Ok(stats)
    }

    /// Like [`DataLoader::ingest_events`] but overlapping the batched
    /// writes with event generation using an [`hepnos::AsyncWriteBatch`]
    /// flushing on `pool` — "the loader MPI ranks fetch products in bulk
    /// ... and also send these products to the worker MPI ranks in bulk"
    /// (§IV-D); overlap hides the send latency behind the parse.
    pub fn ingest_events_overlapped(
        &self,
        events: &[EventRecord],
        pool: argos::Pool,
    ) -> Result<IngestStats, LoaderError> {
        let uuid = self
            .dataset
            .uuid()
            .ok_or_else(|| HepnosError::InvalidPath("cannot ingest into the root".into()))?;
        let label = slice_label();
        let mut stats = IngestStats::default();
        // Containers go through a synchronous batch (they are tiny and the
        // children's keys embed no dependency on their completion); the
        // heavyweight product payloads ship asynchronously.
        let mut containers = hepnos::WriteBatch::new(&self.store);
        let mut products = hepnos::AsyncWriteBatch::new(&self.store, pool);
        let mut current: Option<(u64, u64, hepnos::SubRun)> = None;
        let mut body = || -> Result<(), LoaderError> {
            for ev in events {
                let subrun = match &current {
                    Some((r, s, sr)) if (*r, *s) == (ev.run, ev.subrun) => sr.clone(),
                    _ => {
                        let run = containers.create_run(&self.dataset, ev.run)?;
                        let sr = containers.create_subrun(&run, ev.subrun)?;
                        current = Some((ev.run, ev.subrun, sr.clone()));
                        sr
                    }
                };
                let event = containers.create_event(&subrun, &uuid, ev.event)?;
                match self.columnar_page_rows {
                    Some(rows) => products.store_raw(
                        &event,
                        &label,
                        &crate::columnar::columnar_type_name(),
                        crate::columnar::encode_event(ev, rows),
                    )?,
                    None => products.store(&event, &label, &ev.slices)?,
                }
                products.store(&event, &summary_label(), &ev.summary())?;
                stats.events += 1;
                stats.slices += ev.slices.len() as u64;
            }
            Ok(())
        };
        let body_result = body();
        // Both batches are drained unconditionally: their destructors panic
        // on an unreported flush failure, so an early error from one channel
        // must not reach the other's `Drop` unconsumed (a dead service would
        // otherwise turn a clean `Err` into a loader-thread panic).
        let flush_result = containers.flush();
        let wait_result = products.wait();
        body_result?;
        flush_result?;
        wait_result?;
        stats.batch = Some(products.stats());
        Ok(stats)
    }

    /// Ingest many files; returns aggregate statistics. The paper runs this
    /// step file-parallel across loader ranks — see
    /// [`parallel_ingest`] for the multi-loader version.
    pub fn ingest_files(&self, paths: &[std::path::PathBuf]) -> Result<IngestStats, LoaderError> {
        let mut total = IngestStats::default();
        for p in paths {
            let s = self.ingest_file(p)?;
            total.files += s.files;
            total.events += s.events;
            total.slices += s.slices;
        }
        Ok(total)
    }
}

/// Ingest `paths` with `n_loaders` parallel loader "ranks" (threads), each
/// pulling files from a shared queue — the paper's parallel DataLoader,
/// "the first step of an HEPnOS-based HEP workflow, and the only step whose
/// scalability is constrained by the number of files" (§IV-B).
pub fn parallel_ingest(
    store: &DataStore,
    dataset: &DataSet,
    paths: &[std::path::PathBuf],
    n_loaders: usize,
) -> Result<IngestStats, LoaderError> {
    parallel_ingest_with(store, dataset, paths, n_loaders, None)
}

/// [`parallel_ingest`] with an optional columnar page size: `Some(rows)`
/// stores slice products as column pages (see [`crate::columnar`]),
/// `None` keeps the opaque-blob representation.
pub fn parallel_ingest_with(
    store: &DataStore,
    dataset: &DataSet,
    paths: &[std::path::PathBuf],
    n_loaders: usize,
    columnar_page_rows: Option<u32>,
) -> Result<IngestStats, LoaderError> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let n_loaders = n_loaders.max(1);
    let results: Vec<Result<IngestStats, LoaderError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_loaders)
            .map(|_| {
                let next = &next;
                let mut loader = DataLoader::new(store.clone(), dataset.clone());
                if let Some(rows) = columnar_page_rows {
                    loader = loader.with_columnar(rows);
                }
                scope.spawn(move || {
                    let mut total = IngestStats::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(path) = paths.get(i) else {
                            return Ok(total);
                        };
                        let s = loader.ingest_file(path)?;
                        total.files += s.files;
                        total.events += s.events;
                        total.slices += s.slices;
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loader thread panicked"))
            .collect()
    });
    let mut total = IngestStats::default();
    for r in results {
        let s = r?;
        total.files += s.files;
        total.events += s.events;
        total.slices += s.slices;
    }
    Ok(total)
}

/// File-parallel ingest through the *overlapped* write pipeline: like
/// [`parallel_ingest`], but each loader ships product payloads through an
/// [`hepnos::AsyncWriteBatch`] flushing on `pool` — the paper's
/// batching + async combination (§IV-C). The returned
/// [`IngestStats::batch`] aggregates the per-loader pipeline counters.
pub fn parallel_ingest_overlapped(
    store: &DataStore,
    dataset: &DataSet,
    paths: &[std::path::PathBuf],
    n_loaders: usize,
    pool: argos::Pool,
) -> Result<IngestStats, LoaderError> {
    parallel_ingest_overlapped_with(store, dataset, paths, n_loaders, pool, None)
}

/// [`parallel_ingest_overlapped`] with an optional columnar page size —
/// the overlapped twin of [`parallel_ingest_with`].
pub fn parallel_ingest_overlapped_with(
    store: &DataStore,
    dataset: &DataSet,
    paths: &[std::path::PathBuf],
    n_loaders: usize,
    pool: argos::Pool,
    columnar_page_rows: Option<u32>,
) -> Result<IngestStats, LoaderError> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let n_loaders = n_loaders.max(1);
    let results: Vec<Result<IngestStats, LoaderError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_loaders)
            .map(|_| {
                let next = &next;
                let pool = pool.clone();
                let mut loader = DataLoader::new(store.clone(), dataset.clone());
                if let Some(rows) = columnar_page_rows {
                    loader = loader.with_columnar(rows);
                }
                scope.spawn(move || {
                    let mut total = IngestStats::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(path) = paths.get(i) else {
                            return Ok(total);
                        };
                        let events = files::read_file(path)?;
                        let s = loader.ingest_events_overlapped(&events, pool.clone())?;
                        total.merge(&s);
                        total.files += 1;
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loader thread panicked"))
            .collect()
    });
    let mut total = IngestStats::default();
    for r in results {
        total.merge(&r?);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::NovaGenerator;
    use bedrock::DbCounts;
    use hepfile::table::TableFileReader;
    use hepnos::testing::local_deployment;

    #[test]
    fn generated_code_matches_schema() {
        let d = std::env::temp_dir().join(format!("nova-loader-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("gen.hepf");
        files::write_file(&p, &NovaGenerator::new(1), 0, 5).unwrap();
        let r = TableFileReader::open(&p).unwrap();
        let code = generate_class_code(&r.schema()[0]);
        assert!(code.contains("pub struct Slc {"), "{code}");
        assert!(code.contains("pub cvn_nue: f32,"));
        assert!(code.contains("pub time_ns: f64,"));
        assert!(code.contains("pub nhit: u32,"));
        // Index columns are not members.
        assert!(!code.contains("pub run:"));
        assert!(code.contains("serde::Serialize"));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn ingest_round_trips_through_hepnos() {
        let d = std::env::temp_dir().join(format!("nova-ingest-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let g = NovaGenerator::new(7);
        let paths = files::write_dataset(&d.join("data"), &g, 3, 12).unwrap();

        let dep = local_deployment(1, DbCounts::default());
        let store = dep.datastore();
        let ds = store.root().create_dataset("nova").unwrap();
        let loader = DataLoader::new(store.clone(), ds.clone());
        let stats = loader.ingest_files(&paths).unwrap();
        assert_eq!(stats.files, 3);
        assert!(stats.events > 0 && stats.slices > 0);

        // Navigate and compare against the file contents.
        for (f, path) in paths.iter().enumerate() {
            let file_events = files::read_file(path).unwrap();
            let (run_n, subrun_n) = files::file_coordinates(f as u64);
            let sr = ds.run(run_n).unwrap().subrun(subrun_n).unwrap();
            let stored = sr.events().unwrap();
            assert_eq!(stored.len(), file_events.len());
            for (ev_handle, ev_rec) in stored.iter().zip(&file_events) {
                assert_eq!(ev_handle.number(), ev_rec.event);
                let slices: Vec<crate::data::SliceQuantities> =
                    ev_handle.load(&slice_label()).unwrap().unwrap();
                assert_eq!(slices, ev_rec.slices);
            }
        }
        dep.shutdown();
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn parallel_ingest_matches_serial() {
        let d = std::env::temp_dir().join(format!("nova-par-ingest-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let g = NovaGenerator::new(13);
        let paths = files::write_dataset(&d.join("data"), &g, 6, 25).unwrap();
        let dep = local_deployment(1, DbCounts::default());
        let store = dep.datastore();
        let ds = store.root().create_dataset("par").unwrap();
        let stats = parallel_ingest(&store, &ds, &paths, 4).unwrap();
        assert_eq!(stats.files, 6);
        // Verify contents equal the file contents, regardless of which
        // loader thread ingested which file.
        let mut total = 0u64;
        for (f, path) in paths.iter().enumerate() {
            let file_events = files::read_file(path).unwrap();
            let (r, s) = files::file_coordinates(f as u64);
            let sr = ds.run(r).unwrap().subrun(s).unwrap();
            assert_eq!(sr.events().unwrap().len(), file_events.len());
            total += file_events.len() as u64;
        }
        assert_eq!(stats.events, total);
        dep.shutdown();
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn slice_type_name_is_stable() {
        assert_eq!(slice_type_name(), "Vec<SliceQuantities>");
    }
}
