//! Columnar encoding of slice products and compilation of the selection
//! into a push-down predicate program.
//!
//! An event's `Vec<SliceQuantities>` is transposed into per-field column
//! pages ([`yokan::pages`]) before storage: sorted ids delta+varint
//! compress, float columns byte-shuffle, and each page carries a min/max
//! zone map. Column 0 holds the precomputed **global** slice id, so the
//! storage tier can answer a pushed-down selection with exactly the values
//! the analysis accumulates — no client-side id reconstruction.
//!
//! [`compile_cuts`] turns a [`SelectionCuts`] into a [`yokan::Program`]
//! whose predicates are the *negations of the exact reject comparisons* in
//! [`SelectionCuts::passes`], NaN behaviour included, which is what makes
//! pushed-down results byte-identical to the scalar loop.

use crate::data::{EventRecord, SliceQuantities};
use crate::selection::SelectionCuts;
use hepnos::HepnosError;
use yokan::pages::{encode_columns, Column, PageReader};
use yokan::{Predicate, Program};

/// Column index of the global slice id (what the filter RPC returns).
pub const COL_GID: u16 = 0;
/// Column index of the within-event slice id.
pub const COL_SLICE_ID: u16 = 1;
/// Column index of the hit count.
pub const COL_NHIT: u16 = 2;
/// Column index of the calorimetric energy.
pub const COL_CAL_E: u16 = 3;
/// Column index of the shower energy.
pub const COL_SHOWER_ENERGY: u16 = 4;
/// Column index of the shower length.
pub const COL_SHOWER_LENGTH: u16 = 5;
/// Column index of the track length.
pub const COL_TRACK_LENGTH: u16 = 6;
/// Column index of the CVN ν_e score.
pub const COL_CVN_NUE: u16 = 7;
/// Column index of the CVN ν_μ score.
pub const COL_CVN_NUMU: u16 = 8;
/// Column index of the CVN neutral-current score.
pub const COL_CVN_NC: u16 = 9;
/// Column index of the cosmic-rejection score.
pub const COL_COSMIC_SCORE: u16 = 10;
/// Column index of vertex x.
pub const COL_VERTEX_X: u16 = 11;
/// Column index of vertex y.
pub const COL_VERTEX_Y: u16 = 12;
/// Column index of vertex z.
pub const COL_VERTEX_Z: u16 = 13;
/// Column index of the slice time.
pub const COL_TIME_NS: u16 = 14;
/// Column index of the muon-id score.
pub const COL_REMID: u16 = 15;
/// Column index of the reconstructed neutrino energy.
pub const COL_NU_ENERGY: u16 = 16;
/// Total number of columns in the slice schema.
pub const N_COLUMNS: usize = 17;

/// Default rows per page for stored slice products.
pub const DEFAULT_PAGE_ROWS: u32 = yokan::pages::DEFAULT_PAGE_ROWS;

/// The product type name columnar slice blobs are stored under. Distinct
/// from the blob path's `Vec<SliceQuantities>` type name, so both
/// representations can coexist under the `rec.slc` label.
pub fn columnar_type_name() -> String {
    "nova::ColumnarSlices".to_string()
}

/// Transpose one event's slices into an encoded columnar page blob.
pub fn encode_event(ev: &EventRecord, page_rows: u32) -> Vec<u8> {
    let n = ev.slices.len();
    let mut gid = Vec::with_capacity(n);
    let mut slice_id = Vec::with_capacity(n);
    let mut nhit = Vec::with_capacity(n);
    let mut f32_cols: [Vec<f32>; 13] = Default::default();
    let mut time_ns = Vec::with_capacity(n);
    for s in &ev.slices {
        gid.push(ev.global_slice_id(s));
        slice_id.push(s.slice_id);
        nhit.push(s.nhit);
        for (col, v) in f32_cols.iter_mut().zip([
            s.cal_e,
            s.shower_energy,
            s.shower_length,
            s.track_length,
            s.cvn_nue,
            s.cvn_numu,
            s.cvn_nc,
            s.cosmic_score,
            s.vertex_x,
            s.vertex_y,
            s.vertex_z,
            s.remid,
            s.nu_energy,
        ]) {
            col.push(v);
        }
        time_ns.push(s.time_ns);
    }
    let [cal_e, shower_energy, shower_length, track_length, cvn_nue, cvn_numu, cvn_nc, cosmic_score, vertex_x, vertex_y, vertex_z, remid, nu_energy] =
        f32_cols;
    encode_columns(
        &[
            Column::U64(gid),
            Column::U64(slice_id),
            Column::U32(nhit),
            Column::F32(cal_e),
            Column::F32(shower_energy),
            Column::F32(shower_length),
            Column::F32(track_length),
            Column::F32(cvn_nue),
            Column::F32(cvn_numu),
            Column::F32(cvn_nc),
            Column::F32(cosmic_score),
            Column::F32(vertex_x),
            Column::F32(vertex_y),
            Column::F32(vertex_z),
            Column::F64(time_ns),
            Column::F32(remid),
            Column::F32(nu_energy),
        ],
        page_rows,
    )
}

fn decode_err(e: yokan::YokanError) -> HepnosError {
    HepnosError::Serialization(format!("columnar slice blob: {e}"))
}

fn u64_col(r: &PageReader<'_>, col: u16) -> Result<Vec<u64>, HepnosError> {
    match r.decode_column(col as usize).map_err(decode_err)? {
        Column::U64(v) => Ok(v),
        _ => Err(HepnosError::Serialization(format!(
            "column {col} is not u64"
        ))),
    }
}

fn u32_col(r: &PageReader<'_>, col: u16) -> Result<Vec<u32>, HepnosError> {
    match r.decode_column(col as usize).map_err(decode_err)? {
        Column::U32(v) => Ok(v),
        _ => Err(HepnosError::Serialization(format!(
            "column {col} is not u32"
        ))),
    }
}

fn f32_col(r: &PageReader<'_>, col: u16) -> Result<Vec<f32>, HepnosError> {
    match r.decode_column(col as usize).map_err(decode_err)? {
        Column::F32(v) => Ok(v),
        _ => Err(HepnosError::Serialization(format!(
            "column {col} is not f32"
        ))),
    }
}

fn f64_col(r: &PageReader<'_>, col: u16) -> Result<Vec<f64>, HepnosError> {
    match r.decode_column(col as usize).map_err(decode_err)? {
        Column::F64(v) => Ok(v),
        _ => Err(HepnosError::Serialization(format!(
            "column {col} is not f64"
        ))),
    }
}

/// Decode a columnar blob back into slices (bit-exact round trip; the
/// global-id column is redundant for reconstruction and is ignored).
pub fn decode_slices(blob: &[u8]) -> Result<Vec<SliceQuantities>, HepnosError> {
    let r = PageReader::open(blob).map_err(decode_err)?;
    if r.n_columns() != N_COLUMNS {
        return Err(HepnosError::Serialization(format!(
            "columnar slice blob has {} columns, expected {N_COLUMNS}",
            r.n_columns()
        )));
    }
    let slice_id = u64_col(&r, COL_SLICE_ID)?;
    let nhit = u32_col(&r, COL_NHIT)?;
    let cal_e = f32_col(&r, COL_CAL_E)?;
    let shower_energy = f32_col(&r, COL_SHOWER_ENERGY)?;
    let shower_length = f32_col(&r, COL_SHOWER_LENGTH)?;
    let track_length = f32_col(&r, COL_TRACK_LENGTH)?;
    let cvn_nue = f32_col(&r, COL_CVN_NUE)?;
    let cvn_numu = f32_col(&r, COL_CVN_NUMU)?;
    let cvn_nc = f32_col(&r, COL_CVN_NC)?;
    let cosmic_score = f32_col(&r, COL_COSMIC_SCORE)?;
    let vertex_x = f32_col(&r, COL_VERTEX_X)?;
    let vertex_y = f32_col(&r, COL_VERTEX_Y)?;
    let vertex_z = f32_col(&r, COL_VERTEX_Z)?;
    let time_ns = f64_col(&r, COL_TIME_NS)?;
    let remid = f32_col(&r, COL_REMID)?;
    let nu_energy = f32_col(&r, COL_NU_ENERGY)?;
    Ok((0..r.n_rows() as usize)
        .map(|i| SliceQuantities {
            slice_id: slice_id[i],
            nhit: nhit[i],
            cal_e: cal_e[i],
            shower_energy: shower_energy[i],
            shower_length: shower_length[i],
            track_length: track_length[i],
            cvn_nue: cvn_nue[i],
            cvn_numu: cvn_numu[i],
            cvn_nc: cvn_nc[i],
            cosmic_score: cosmic_score[i],
            vertex_x: vertex_x[i],
            vertex_y: vertex_y[i],
            vertex_z: vertex_z[i],
            time_ns: time_ns[i],
            remid: remid[i],
            nu_energy: nu_energy[i],
        })
        .collect())
}

/// Compile the selection into a push-down predicate program returning
/// global slice ids.
///
/// Each predicate is the negation of one reject comparison in
/// [`SelectionCuts::passes`], with derived bounds (`half_xy - margin`,
/// `detector_z - margin`) computed in `f32` exactly as the scalar code
/// does before widening — so pushed-down evaluation is byte-identical to
/// the scalar loop, NaN scores included.
pub fn compile_cuts(cuts: &SelectionCuts) -> Program {
    let half = (cuts.detector_half_xy - cuts.fiducial_margin) as f64;
    let z_max = (cuts.detector_z - cuts.fiducial_margin) as f64;
    Program {
        id_column: COL_GID,
        predicates: vec![
            Predicate::AbsNotGt {
                col: COL_VERTEX_X,
                bound: half,
            },
            Predicate::AbsNotGt {
                col: COL_VERTEX_Y,
                bound: half,
            },
            Predicate::NotLt {
                col: COL_VERTEX_Z,
                bound: cuts.fiducial_margin as f64,
            },
            Predicate::NotGt {
                col: COL_VERTEX_Z,
                bound: z_max,
            },
            Predicate::UIntInRange {
                col: COL_NHIT,
                lo: cuts.nhit_range.0 as u64,
                hi: cuts.nhit_range.1 as u64,
            },
            Predicate::NotGt {
                col: COL_COSMIC_SCORE,
                bound: cuts.max_cosmic_score as f64,
            },
            Predicate::NotLt {
                col: COL_CVN_NUE,
                bound: cuts.min_cvn_nue as f64,
            },
            Predicate::NotGt {
                col: COL_REMID,
                bound: cuts.max_remid as f64,
            },
            Predicate::InRange {
                col: COL_NU_ENERGY,
                lo: cuts.energy_range.0 as f64,
                hi: cuts.energy_range.1 as f64,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::NovaGenerator;
    use crate::selection::select_slices;

    #[test]
    fn encode_decode_round_trips() {
        let g = NovaGenerator::new(11);
        for e in 0..50u64 {
            let ev = g.generate(2, 1, e);
            let blob = encode_event(&ev, 16);
            assert!(yokan::pages::is_columnar(&blob));
            assert_eq!(decode_slices(&blob).unwrap(), ev.slices);
        }
    }

    #[test]
    fn empty_event_round_trips() {
        let ev = EventRecord {
            run: 1,
            subrun: 2,
            event: 3,
            slices: Vec::new(),
        };
        let blob = encode_event(&ev, DEFAULT_PAGE_ROWS);
        assert_eq!(decode_slices(&blob).unwrap(), Vec::new());
    }

    #[test]
    fn local_eval_matches_scalar_selection() {
        let g = NovaGenerator::new(23);
        let cuts = SelectionCuts::default();
        let prog = compile_cuts(&cuts);
        let mut selected = 0usize;
        for e in 0..2_000u64 {
            let ev = g.generate(4, 0, e);
            let blob = encode_event(&ev, 8);
            let out = yokan::filter::eval_program(&blob, &prog).unwrap();
            assert_eq!(out.ids, select_slices(&ev, &cuts));
            selected += out.ids.len();
        }
        assert!(selected > 0, "selection accepted nothing");
    }

    #[test]
    fn nan_scores_match_scalar_selection() {
        let g = NovaGenerator::new(7);
        let cuts = SelectionCuts::default();
        let prog = compile_cuts(&cuts);
        let mut ev = g.generate(1, 0, 0);
        for (i, s) in ev.slices.iter_mut().enumerate() {
            match i % 4 {
                0 => s.cosmic_score = f32::NAN,
                1 => s.nu_energy = f32::NAN,
                2 => s.vertex_x = f32::NAN,
                _ => s.cvn_nue = f32::NAN,
            }
        }
        let blob = encode_event(&ev, 4);
        let out = yokan::filter::eval_program(&blob, &prog).unwrap();
        assert_eq!(out.ids, select_slices(&ev, &cuts));
    }
}
