//! Property tests for the columnar selection path: the vectorized kernel
//! and the pushed-down predicate program must return byte-identical
//! surviving slice ids to the scalar `SelectionCuts::passes` loop across
//! randomized events — NaN scores and empty events included — and the
//! column codec must round-trip bit-exactly.

use nova::columnar::{compile_cuts, decode_slices, encode_event};
use nova::selection::{select_slices_into, SelectScratch};
use nova::{EventRecord, SelectionCuts, SliceQuantities};
use proptest::prelude::*;
use yokan::filter::eval_program;
use yokan::pages::{encode_columns, Column, PageReader};

/// A score-like f32: mostly in-range values, with NaN, infinities, exact
/// cut boundaries, and negative zero mixed in.
fn score() -> impl Strategy<Value = f32> {
    prop_oneof![
        8 => (-2.0f64..2.0).prop_map(|v| v as f32),
        1 => Just(f32::NAN),
        1 => Just(f32::INFINITY),
        1 => Just(f32::NEG_INFINITY),
        1 => Just(0.84f32),
        1 => Just(0.45f32),
        1 => Just(-0.0f32),
    ]
}

/// A coordinate-like f32 spanning the detector and beyond.
fn coord() -> impl Strategy<Value = f32> {
    prop_oneof![
        8 => (-8000.0f64..8000.0).prop_map(|v| v as f32),
        1 => Just(f32::NAN),
        1 => Just(680.0f32),
        1 => Just(-680.0f32),
        1 => Just(100.0f32),
        1 => Just(5900.0f32),
    ]
}

fn slice_strategy() -> impl Strategy<Value = SliceQuantities> {
    (
        (
            any::<u16>(),
            0u32..700,
            score(),
            score(),
            coord(),
            coord(),
            score(),
            score(),
        ),
        (
            score(),
            score(),
            coord(),
            coord(),
            coord(),
            (-1.0f64..1e6).prop_map(|v| v),
            score(),
            prop_oneof![
                6 => (-1.0f64..8.0).prop_map(|v| v as f32),
                1 => Just(f32::NAN),
                1 => Just(1.0f32),
                1 => Just(4.5f32),
            ],
        ),
    )
        .prop_map(
            |(
                (
                    slice_id,
                    nhit,
                    cal_e,
                    shower_energy,
                    shower_length,
                    track_length,
                    cvn_nue,
                    cvn_numu,
                ),
                (cvn_nc, cosmic_score, vertex_x, vertex_y, vertex_z, time_ns, remid, nu_energy),
            )| SliceQuantities {
                slice_id: slice_id as u64,
                nhit,
                cal_e,
                shower_energy,
                shower_length,
                track_length,
                cvn_nue,
                cvn_numu,
                cvn_nc,
                cosmic_score,
                vertex_x,
                vertex_y,
                vertex_z,
                time_ns,
                remid,
                nu_energy,
            },
        )
}

fn event_strategy() -> impl Strategy<Value = EventRecord> {
    (
        0u64..100,
        0u64..100,
        0u64..10_000,
        proptest::collection::vec(slice_strategy(), 0..40),
    )
        .prop_map(|(run, subrun, event, slices)| EventRecord {
            run,
            subrun,
            event,
            slices,
        })
}

fn cuts_strategy() -> impl Strategy<Value = SelectionCuts> {
    (
        0.0f64..1.0,
        0.0f64..1.0,
        0.0f64..300.0,
        (10u32..100, 100u32..700),
        (0.0f64..2.0, 2.0f64..6.0),
        0.0f64..1.0,
    )
        .prop_map(|(cvn, cosmic, margin, nhit, energy, remid)| SelectionCuts {
            min_cvn_nue: cvn as f32,
            max_cosmic_score: cosmic as f32,
            fiducial_margin: margin as f32,
            detector_half_xy: 780.0,
            detector_z: 6000.0,
            nhit_range: nhit,
            energy_range: (energy.0 as f32, energy.1 as f32),
            max_remid: remid as f32,
        })
}

/// The scalar oracle: the original per-slice loop.
fn scalar_select(ev: &EventRecord, cuts: &SelectionCuts) -> Vec<u64> {
    ev.slices
        .iter()
        .filter(|s| cuts.passes(s))
        .map(|s| ev.global_slice_id(s))
        .collect()
}

proptest! {
    #[test]
    fn vectorized_kernel_matches_scalar(ev in event_strategy(), cuts in cuts_strategy()) {
        let mut scratch = SelectScratch::new();
        let mut out = Vec::new();
        select_slices_into(&ev, &cuts, &mut scratch, &mut out);
        prop_assert_eq!(out, scalar_select(&ev, &cuts));
    }

    #[test]
    fn scratch_reuse_is_stateless(
        evs in proptest::collection::vec(event_strategy(), 1..6),
        cuts in cuts_strategy(),
    ) {
        // One scratch across many events must give the same answers as a
        // fresh scratch per event.
        let mut scratch = SelectScratch::new();
        for ev in &evs {
            let mut reused = Vec::new();
            select_slices_into(ev, &cuts, &mut scratch, &mut reused);
            prop_assert_eq!(reused, scalar_select(ev, &cuts));
        }
    }

    #[test]
    fn pushdown_program_matches_scalar(
        ev in event_strategy(),
        cuts in cuts_strategy(),
        page_rows in 1u32..64,
    ) {
        let blob = encode_event(&ev, page_rows);
        let out = eval_program(&blob, &compile_cuts(&cuts)).unwrap();
        prop_assert_eq!(out.ids, scalar_select(&ev, &cuts));
        prop_assert_eq!(out.rows_in as usize, ev.slices.len());
    }

    #[test]
    fn columnar_round_trip_is_bit_exact(ev in event_strategy(), page_rows in 1u32..64) {
        let blob = encode_event(&ev, page_rows);
        let back = decode_slices(&blob).unwrap();
        prop_assert_eq!(back.len(), ev.slices.len());
        for (a, b) in back.iter().zip(&ev.slices) {
            // PartialEq would treat NaN != NaN; compare bit patterns.
            prop_assert_eq!(a.slice_id, b.slice_id);
            prop_assert_eq!(a.nhit, b.nhit);
            prop_assert_eq!(a.cal_e.to_bits(), b.cal_e.to_bits());
            prop_assert_eq!(a.shower_energy.to_bits(), b.shower_energy.to_bits());
            prop_assert_eq!(a.shower_length.to_bits(), b.shower_length.to_bits());
            prop_assert_eq!(a.track_length.to_bits(), b.track_length.to_bits());
            prop_assert_eq!(a.cvn_nue.to_bits(), b.cvn_nue.to_bits());
            prop_assert_eq!(a.cvn_numu.to_bits(), b.cvn_numu.to_bits());
            prop_assert_eq!(a.cvn_nc.to_bits(), b.cvn_nc.to_bits());
            prop_assert_eq!(a.cosmic_score.to_bits(), b.cosmic_score.to_bits());
            prop_assert_eq!(a.vertex_x.to_bits(), b.vertex_x.to_bits());
            prop_assert_eq!(a.vertex_y.to_bits(), b.vertex_y.to_bits());
            prop_assert_eq!(a.vertex_z.to_bits(), b.vertex_z.to_bits());
            prop_assert_eq!(a.time_ns.to_bits(), b.time_ns.to_bits());
            prop_assert_eq!(a.remid.to_bits(), b.remid.to_bits());
            prop_assert_eq!(a.nu_energy.to_bits(), b.nu_energy.to_bits());
        }
    }

    #[test]
    fn page_codec_round_trips_raw_columns(
        u64s in proptest::collection::vec(any::<u64>(), 0..200),
        u32s in proptest::collection::vec(any::<u32>(), 0..200),
        f32s in proptest::collection::vec(any::<f32>(), 0..200),
        f64s in proptest::collection::vec(any::<f64>(), 0..200),
        page_rows in 1u32..48,
    ) {
        // Columns of one blob must share a length; truncate to the min.
        let n = u64s.len().min(u32s.len()).min(f32s.len()).min(f64s.len());
        let cols = [
            Column::U64(u64s[..n].to_vec()),
            Column::U32(u32s[..n].to_vec()),
            Column::F32(f32s[..n].to_vec()),
            Column::F64(f64s[..n].to_vec()),
        ];
        let blob = encode_columns(&cols, page_rows);
        let r = PageReader::open(&blob).unwrap();
        prop_assert_eq!(r.n_rows() as usize, n);
        for (i, col) in cols.iter().enumerate() {
            let got = r.decode_column(i).unwrap();
            match (col, &got) {
                (Column::U64(a), Column::U64(b)) => prop_assert_eq!(a, b),
                (Column::U32(a), Column::U32(b)) => prop_assert_eq!(a, b),
                (Column::F32(a), Column::F32(b)) => {
                    let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
                    let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
                    prop_assert_eq!(ab, bb);
                }
                (Column::F64(a), Column::F64(b)) => {
                    let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                    let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                    prop_assert_eq!(ab, bb);
                }
                _ => prop_assert!(false, "column {} changed type", i),
            }
        }
    }

    #[test]
    fn corrupt_blobs_never_panic(
        mut blob in proptest::collection::vec(any::<u8>(), 0..256),
        flip in any::<usize>(),
    ) {
        // Arbitrary bytes, and real blobs with one flipped byte, must be
        // rejected (or decoded) without panicking.
        let _ = decode_slices(&blob);
        if !blob.is_empty() {
            let real = encode_event(
                &EventRecord { run: 1, subrun: 2, event: 3, slices: Vec::new() },
                8,
            );
            blob = real;
            let i = flip % blob.len().max(1);
            if i < blob.len() {
                blob[i] ^= 0x55;
            }
            let _ = decode_slices(&blob);
        }
    }
}
