//! Multi-product events: each ingested event carries two products of
//! different types (`Vec<SliceQuantities>` and `EventSummary`) under
//! different labels — and the ParallelEventProcessor can prefetch both.

use bedrock::DbCounts;
use hepnos::testing::local_deployment;
use hepnos::{ParallelEventProcessor, PepOptions};
use nova::loader::{slice_label, slice_type_name, summary_label, summary_type_name, DataLoader};
use nova::{files, EventRecord, NovaGenerator, SliceQuantities};
use parking_lot::Mutex;

#[test]
fn ingest_stores_both_products() {
    let dep = local_deployment(1, DbCounts::default());
    let store = dep.datastore();
    let ds = store.root().create_dataset("multi").unwrap();
    let gen = NovaGenerator::new(21);
    let events = files::generate_file_events(&gen, 0, 40);
    DataLoader::new(store.clone(), ds.clone())
        .ingest_events(&events)
        .unwrap();
    let sr = ds.run(0).unwrap().subrun(0).unwrap();
    for (handle, rec) in sr.events().unwrap().iter().zip(&events) {
        let slices: Vec<SliceQuantities> = handle.load(&slice_label()).unwrap().unwrap();
        assert_eq!(&slices, &rec.slices);
        let summary: nova::EventSummary = handle.load(&summary_label()).unwrap().unwrap();
        assert_eq!(summary, rec.summary());
        assert_eq!(summary.n_slices as usize, rec.slices.len());
    }
    dep.shutdown();
}

#[test]
fn pep_prefetches_multiple_labels() {
    let dep = local_deployment(1, DbCounts::default());
    let store = dep.datastore();
    let ds = store.root().create_dataset("multi-prefetch").unwrap();
    let gen = NovaGenerator::new(22);
    let events = files::generate_file_events(&gen, 0, 60);
    DataLoader::new(store.clone(), ds.clone())
        .ingest_events(&events)
        .unwrap();
    let pep = ParallelEventProcessor::new(
        store.clone(),
        PepOptions {
            num_workers: 2,
            prefetch: vec![
                (slice_label(), slice_type_name()),
                (summary_label(), summary_type_name()),
            ],
            ..Default::default()
        },
    );
    let checked = Mutex::new(0usize);
    let stats = pep
        .process(&ds, |_w, pe| {
            let slices: Vec<SliceQuantities> = pe.load(&slice_label()).unwrap().unwrap_or_default();
            let summary: nova::EventSummary = pe.load(&summary_label()).unwrap().unwrap();
            // Cross-check the two prefetched products against each other.
            assert_eq!(summary.n_slices as usize, slices.len());
            let (run, subrun, event) = pe.event().coordinates();
            let rec = EventRecord {
                run,
                subrun,
                event,
                slices,
            };
            assert_eq!(rec.summary(), summary);
            *checked.lock() += 1;
        })
        .unwrap();
    assert_eq!(stats.total_events as usize, *checked.lock());
    assert!(*checked.lock() > 0);
    dep.shutdown();
}

#[test]
fn summary_type_name_is_stable() {
    assert_eq!(summary_type_name(), "EventSummary");
}

#[test]
fn overlapped_ingest_matches_synchronous() {
    let dep = local_deployment(1, DbCounts::default());
    let store = dep.datastore();
    let gen = NovaGenerator::new(77);
    let events = files::generate_file_events(&gen, 3, 80);
    let rt = argos::Runtime::simple(2);
    let ds = store.root().create_dataset("overlapped").unwrap();
    let stats = DataLoader::new(store.clone(), ds.clone())
        .ingest_events_overlapped(&events, rt.default_pool().unwrap())
        .unwrap();
    assert_eq!(stats.events, events.len() as u64);
    let (run_n, subrun_n) = files::file_coordinates(3);
    let sr = ds.run(run_n).unwrap().subrun(subrun_n).unwrap();
    for (handle, rec) in sr.events().unwrap().iter().zip(&events) {
        let slices: Vec<SliceQuantities> = handle.load(&slice_label()).unwrap().unwrap();
        assert_eq!(&slices, &rec.slices);
        let summary: nova::EventSummary = handle.load(&summary_label()).unwrap().unwrap();
        assert_eq!(summary, rec.summary());
    }
    rt.shutdown();
    dep.shutdown();
}

/// Regression: an ingest hitting a dead service must come back as `Err`
/// from `ingest_events_overlapped`, not as a loader panic — the batches'
/// destructors panic on unreported failures, so the loader has to drain
/// both error channels before they drop.
#[test]
fn overlapped_ingest_surfaces_dead_service_as_error() {
    let dep = local_deployment(1, DbCounts::default());
    let store = dep.datastore();
    let ds = store.root().create_dataset("doomed").unwrap();
    let gen = NovaGenerator::new(78);
    let events = files::generate_file_events(&gen, 0, 40);
    let rt = argos::Runtime::simple(2);
    dep.shutdown();
    let result = DataLoader::new(store.clone(), ds.clone())
        .ingest_events_overlapped(&events, rt.default_pool().unwrap());
    assert!(
        result.is_err(),
        "a dead service must yield Err, not a panic"
    );
    rt.shutdown();
}

#[test]
fn parallel_overlapped_ingest_matches_files() {
    let dir = std::env::temp_dir().join(format!("nova-par-overlap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let gen = NovaGenerator::new(79);
    let paths = files::write_dataset(&dir.join("data"), &gen, 5, 30).unwrap();
    let dep = local_deployment(1, DbCounts::default());
    let store = dep.datastore();
    let ds = store.root().create_dataset("par-overlap").unwrap();
    let rt = argos::Runtime::simple(2);
    let stats = nova::loader::parallel_ingest_overlapped(
        &store,
        &ds,
        &paths,
        3,
        rt.default_pool().unwrap(),
    )
    .unwrap();
    assert_eq!(stats.files, 5);
    let mut total = 0u64;
    for (f, path) in paths.iter().enumerate() {
        let file_events = files::read_file(path).unwrap();
        let (r, s) = files::file_coordinates(f as u64);
        let sr = ds.run(r).unwrap().subrun(s).unwrap();
        assert_eq!(sr.events().unwrap().len(), file_events.len());
        total += file_events.len() as u64;
    }
    assert_eq!(stats.events, total);
    // The aggregated pipeline counters must balance after a clean ingest.
    let batch = stats.batch.expect("overlapped ingest reports batch stats");
    assert_eq!(batch.acked_pairs, batch.shipped_pairs);
    assert_eq!(batch.acked_rpcs, batch.flush_rpcs);
    assert_eq!(batch.shipped_pairs, 2 * total);
    rt.shutdown();
    dep.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cosmic_sample_flows_through_the_pipeline() {
    // The 12x-rate cosmic sample (§III-A) must flow through files and
    // ingestion exactly like beam data.
    let dir = std::env::temp_dir().join(format!("nova-cosmic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let gen = nova::NovaGenerator::with_config(5, nova::GeneratorConfig::cosmic());
    let path = dir.join("cosmic.hepf");
    let (events, slices) = files::write_file(&path, &gen, 0, 50).unwrap();
    assert_eq!(events, 50);
    assert!(
        slices > 50 * 30,
        "cosmic file should be dense: {slices} slices for {events} events"
    );
    let dep = local_deployment(1, DbCounts::default());
    let store = dep.datastore();
    let ds = store.root().create_dataset("cosmic").unwrap();
    let stats = DataLoader::new(store.clone(), ds.clone())
        .ingest_file(&path)
        .unwrap();
    assert_eq!(stats.slices, slices);
    // Selection still rejects nearly everything (cosmics are background).
    let cuts = nova::SelectionCuts::default();
    let mut accepted = 0usize;
    for ev in ds.run(0).unwrap().subrun(0).unwrap().events().unwrap() {
        let sl: Vec<SliceQuantities> = ev.load(&slice_label()).unwrap().unwrap();
        let (run, subrun, event) = ev.coordinates();
        let rec = EventRecord {
            run,
            subrun,
            event,
            slices: sl,
        };
        accepted += nova::select_slices(&rec, &cuts).len();
    }
    assert!(
        (accepted as f64) < slices as f64 * 0.01,
        "cosmic acceptance too high: {accepted}/{slices}"
    );
    dep.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
