//! The grid-style file workflow runner.
//!
//! The paper's baseline (§IV-A) decomposes the input file list into blocks
//! of work and schedules them over worker processes with Python
//! `multiprocessing`; each worker runs the selection sequentially over its
//! files, and pipelining (workers pull the next file when done) absorbs
//! some of the file-size imbalance. This module reproduces that runner with
//! threads standing in for grid processes.
//!
//! The defining property carried over: **the file is the atomic unit of
//! work**. When there are fewer files than workers, the extra workers idle
//! — exactly the effect that caps the traditional workflow's scaling in
//! Fig. 2 once "the number of cores outnumbers the number of files".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-worker accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerReport {
    /// Files this worker processed.
    pub files_processed: u64,
    /// Time spent processing (open + read + compute).
    pub busy: Duration,
    /// Time between this worker finishing and the slowest worker finishing
    /// — the end-of-job idle the paper describes as "large scale idling of
    /// resources near the end of each stage".
    pub tail_idle: Duration,
}

/// Result of one workflow execution.
#[derive(Debug, Clone)]
pub struct GridStats {
    /// Wall-clock duration from first file start to last file end.
    pub makespan: Duration,
    /// Per-worker breakdown.
    pub workers: Vec<WorkerReport>,
    /// Total files processed.
    pub total_files: u64,
}

impl GridStats {
    /// Fraction of worker-time actually spent busy (1.0 = no idling).
    pub fn utilization(&self) -> f64 {
        if self.makespan.is_zero() || self.workers.is_empty() {
            return 1.0;
        }
        let busy: Duration = self.workers.iter().map(|w| w.busy).sum();
        busy.as_secs_f64() / (self.makespan.as_secs_f64() * self.workers.len() as f64)
    }
}

/// Run `process(file_index)` over `n_files` files using `n_workers` workers
/// pulling from a shared queue (the pipelined file-list protocol).
///
/// `process` receives the file index and returns when the file is fully
/// handled; it is called exactly once per file.
pub fn run_file_workflow<F>(n_files: usize, n_workers: usize, process: F) -> GridStats
where
    F: Fn(usize) + Send + Sync,
{
    assert!(n_workers > 0, "need at least one worker");
    let next = Arc::new(AtomicUsize::new(0));
    let process = &process;
    let t0 = Instant::now();
    let mut finish_times: Vec<Duration> = vec![Duration::ZERO; n_workers];
    let mut reports: Vec<WorkerReport> = vec![WorkerReport::default(); n_workers];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                let next = Arc::clone(&next);
                scope.spawn(move || {
                    let mut report = WorkerReport::default();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n_files {
                            break;
                        }
                        let t = Instant::now();
                        process(idx);
                        report.busy += t.elapsed();
                        report.files_processed += 1;
                    }
                    (report, t0.elapsed())
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let (report, finished_at) = h.join().expect("worker panicked");
            reports[i] = report;
            finish_times[i] = finished_at;
        }
    });
    let makespan = t0.elapsed();
    let last = finish_times.iter().copied().max().unwrap_or(Duration::ZERO);
    for (r, f) in reports.iter_mut().zip(&finish_times) {
        r.tail_idle = last.saturating_sub(*f);
    }
    GridStats {
        makespan,
        workers: reports,
        total_files: n_files as u64,
    }
}

/// Run with a **static block decomposition**: the file list is split into
/// contiguous blocks of `files_per_block` assigned round-robin to workers up
/// front (the paper's configurable "number of files assigned to each
/// process", §IV-A). Compared with [`run_file_workflow`]'s pulled queue,
/// static blocks cannot adapt to uneven file costs — the comparison the
/// paper's pipelining argument rests on.
pub fn run_file_workflow_blocks<F>(
    n_files: usize,
    n_workers: usize,
    files_per_block: usize,
    process: F,
) -> GridStats
where
    F: Fn(usize) + Send + Sync,
{
    assert!(n_workers > 0, "need at least one worker");
    let files_per_block = files_per_block.max(1);
    let process = &process;
    let t0 = Instant::now();
    let mut reports: Vec<WorkerReport> = vec![WorkerReport::default(); n_workers];
    let mut finish_times: Vec<Duration> = vec![Duration::ZERO; n_workers];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut report = WorkerReport::default();
                    // Blocks w, w + n_workers, w + 2*n_workers, ...
                    let mut block = w;
                    loop {
                        let start = block * files_per_block;
                        if start >= n_files {
                            break;
                        }
                        for idx in start..(start + files_per_block).min(n_files) {
                            let t = Instant::now();
                            process(idx);
                            report.busy += t.elapsed();
                            report.files_processed += 1;
                        }
                        block += n_workers;
                    }
                    (report, t0.elapsed())
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let (report, finished_at) = h.join().expect("worker panicked");
            reports[i] = report;
            finish_times[i] = finished_at;
        }
    });
    let makespan = t0.elapsed();
    let last = finish_times.iter().copied().max().unwrap_or(Duration::ZERO);
    for (r, f) in reports.iter_mut().zip(&finish_times) {
        r.tail_idle = last.saturating_sub(*f);
    }
    GridStats {
        makespan,
        workers: reports,
        total_files: n_files as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    #[test]
    fn every_file_processed_exactly_once() {
        let seen = Mutex::new(vec![0u32; 100]);
        let stats = run_file_workflow(100, 8, |i| {
            seen.lock()[i] += 1;
        });
        assert!(seen.lock().iter().all(|&c| c == 1));
        assert_eq!(stats.total_files, 100);
        assert_eq!(
            stats.workers.iter().map(|w| w.files_processed).sum::<u64>(),
            100
        );
    }

    #[test]
    fn more_workers_than_files_leaves_workers_idle() {
        let stats = run_file_workflow(3, 8, |_i| {
            std::thread::sleep(Duration::from_millis(20));
        });
        let with_work = stats
            .workers
            .iter()
            .filter(|w| w.files_processed > 0)
            .count();
        assert!(with_work <= 3);
        // Utilization collapses: at most 3 of 8 workers were ever busy.
        assert!(
            stats.utilization() < 0.5,
            "utilization {}",
            stats.utilization()
        );
    }

    #[test]
    fn pipelining_absorbs_moderate_imbalance() {
        // 7 quick files + 1 slow one, 2 workers: one worker takes the slow
        // file while the other does the quick ones.
        let stats = run_file_workflow(8, 2, |i| {
            let ms = if i == 0 { 60 } else { 10 };
            std::thread::sleep(Duration::from_millis(ms));
        });
        // Perfect schedule: worker A does file0 (60ms) + ~1 more; worker B
        // does ~6 quick files (60ms). Makespan stays near 70-80 ms rather
        // than 130 (serial imbalance).
        assert!(
            stats.makespan < Duration::from_millis(110),
            "makespan {:?}",
            stats.makespan
        );
    }

    #[test]
    fn tail_idle_measures_stragglers() {
        // One giant file among small ones with 4 workers: three workers sit
        // idle at the end.
        let stats = run_file_workflow(4, 4, |i| {
            let ms = if i == 0 { 80 } else { 5 };
            std::thread::sleep(Duration::from_millis(ms));
        });
        let idle_workers = stats
            .workers
            .iter()
            .filter(|w| w.tail_idle > Duration::from_millis(40))
            .count();
        assert!(idle_workers >= 3, "reports: {:?}", stats.workers);
        dbg!(stats.utilization());
    }

    #[test]
    fn static_blocks_process_everything_once() {
        let seen = Mutex::new(vec![0u32; 37]);
        let stats = run_file_workflow_blocks(37, 4, 5, |i| {
            seen.lock()[i] += 1;
        });
        assert!(seen.lock().iter().all(|&c| c == 1));
        assert_eq!(stats.total_files, 37);
    }

    #[test]
    fn pulled_queue_beats_static_blocks_on_skewed_files() {
        // File 0 is 15x more expensive. With static blocks of 4 over 2
        // workers, the worker owning block 0 also owns files 1-3 and ends
        // up the straggler; the pulled queue re-balances.
        let cost = |i: usize| Duration::from_millis(if i == 0 { 60 } else { 4 });
        let static_stats = run_file_workflow_blocks(8, 2, 4, |i| std::thread::sleep(cost(i)));
        let pulled_stats = run_file_workflow(8, 2, |i| std::thread::sleep(cost(i)));
        assert!(
            pulled_stats.makespan < static_stats.makespan,
            "pulled {:?} >= static {:?}",
            pulled_stats.makespan,
            static_stats.makespan
        );
    }

    #[test]
    fn zero_files_is_fine() {
        let stats = run_file_workflow(0, 4, |_| panic!("no files"));
        assert_eq!(stats.total_files, 0);
    }
}
