//! A simulated parallel file system.
//!
//! The paper's Fig. 3 attributes the traditional workflow's poor throughput
//! on small datasets to "constraints set by the performance of the parallel
//! file system". Two properties produce that behaviour and are modeled
//! here:
//!
//! * a **shared aggregate bandwidth**: concurrent readers queue behind one
//!   another, so doubling readers does not double delivered bytes/second;
//! * a **per-open metadata latency**: every file open pays a fixed cost on
//!   the metadata server, which dominates when files are small or many.
//!
//! The model is a virtual-time queue: each request reserves the next free
//! slot on the shared resource and the caller sleeps until its reservation
//! completes. This reproduces convoy effects without any real disk.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of the simulated PFS.
#[derive(Debug, Clone)]
pub struct PfsConfig {
    /// Aggregate delivered bandwidth in bytes/second (shared by all
    /// readers). `f64::INFINITY` disables the data-path model.
    pub aggregate_bandwidth: f64,
    /// Fixed latency charged per `open` (metadata server round trip).
    pub metadata_latency: Duration,
    /// Time scale: all modeled waits are multiplied by this factor, so a
    /// benchmark can run a "Theta-scale" workload in milliseconds. 1.0 =
    /// real time.
    pub time_scale: f64,
}

impl Default for PfsConfig {
    /// Roughly Theta's `theta-fs0` Lustre delivered to one job: ~ tens of
    /// GB/s aggregate and ~1 ms metadata operations.
    fn default() -> Self {
        PfsConfig {
            aggregate_bandwidth: 40.0e9,
            metadata_latency: Duration::from_millis(1),
            time_scale: 1.0,
        }
    }
}

struct PfsState {
    /// Virtual time (relative to `epoch`) at which the shared data path is
    /// next free.
    next_free: Duration,
}

/// A shared, simulated parallel file system.
#[derive(Clone)]
pub struct SimPfs {
    config: PfsConfig,
    state: Arc<Mutex<PfsState>>,
    epoch: Instant,
    opens: Arc<AtomicU64>,
    bytes_read: Arc<AtomicU64>,
}

impl SimPfs {
    /// Create a PFS with the given parameters.
    pub fn new(config: PfsConfig) -> SimPfs {
        SimPfs {
            config,
            state: Arc::new(Mutex::new(PfsState {
                next_free: Duration::ZERO,
            })),
            epoch: Instant::now(),
            opens: Arc::new(AtomicU64::new(0)),
            bytes_read: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PfsConfig {
        &self.config
    }

    /// Charge one file open (metadata latency); blocks the caller.
    pub fn open(&self) {
        self.opens.fetch_add(1, Ordering::Relaxed);
        let wait = self.config.metadata_latency.mul_f64(self.config.time_scale);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }

    /// Charge a read of `bytes`; blocks the caller until its reservation on
    /// the shared data path completes.
    pub fn read(&self, bytes: u64) {
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        if self.config.aggregate_bandwidth.is_infinite() {
            return;
        }
        let service = Duration::from_secs_f64(
            bytes as f64 / self.config.aggregate_bandwidth * self.config.time_scale,
        );
        let completion = {
            let mut st = self.state.lock();
            let now = self.epoch.elapsed();
            let start = st.next_free.max(now);
            st.next_free = start + service;
            st.next_free
        };
        let now = self.epoch.elapsed();
        if completion > now {
            std::thread::sleep(completion - now);
        }
    }

    /// Total opens charged so far.
    pub fn total_opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// Total bytes charged so far.
    pub fn total_bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_bandwidth_is_free() {
        let pfs = SimPfs::new(PfsConfig {
            aggregate_bandwidth: f64::INFINITY,
            metadata_latency: Duration::ZERO,
            time_scale: 1.0,
        });
        let t = Instant::now();
        for _ in 0..100 {
            pfs.open();
            pfs.read(1 << 30);
        }
        assert!(t.elapsed() < Duration::from_millis(100));
        assert_eq!(pfs.total_opens(), 100);
        assert_eq!(pfs.total_bytes_read(), 100 << 30);
    }

    #[test]
    fn metadata_latency_is_charged_per_open() {
        let pfs = SimPfs::new(PfsConfig {
            aggregate_bandwidth: f64::INFINITY,
            metadata_latency: Duration::from_millis(5),
            time_scale: 1.0,
        });
        let t = Instant::now();
        for _ in 0..4 {
            pfs.open();
        }
        assert!(t.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn bandwidth_is_shared_not_per_reader() {
        // 10 MB/s aggregate; two threads each read 0.25 MB => 0.5 MB total
        // => >= 50 ms wall time even though the reads are concurrent.
        let pfs = SimPfs::new(PfsConfig {
            aggregate_bandwidth: 10.0e6,
            metadata_latency: Duration::ZERO,
            time_scale: 1.0,
        });
        let t = Instant::now();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let pfs = pfs.clone();
                std::thread::spawn(move || pfs.read(250_000))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = t.elapsed();
        assert!(
            elapsed >= Duration::from_millis(48),
            "bandwidth not shared: {elapsed:?}"
        );
    }

    #[test]
    fn time_scale_compresses_waits() {
        let pfs = SimPfs::new(PfsConfig {
            aggregate_bandwidth: 1.0e6, // 1 MB/s: 1 MB would take 1 s...
            metadata_latency: Duration::from_secs(1),
            time_scale: 0.001, // ...but scaled to 1 ms
        });
        let t = Instant::now();
        pfs.open();
        pfs.read(1_000_000);
        let elapsed = t.elapsed();
        assert!(elapsed >= Duration::from_millis(2));
        assert!(elapsed < Duration::from_millis(500));
    }
}
