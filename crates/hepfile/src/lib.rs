//! `hepfile` — the file-based substrate of the traditional HEP workflow.
//!
//! The paper's baseline (§III, §IV-A) is the grid-style workflow: data lives
//! in HDF5 files on a parallel file system, and a pool of independent
//! processes pulls files from a shared list, each processing its files
//! sequentially. This crate provides the three pieces needed to reproduce
//! that baseline without HDF5, Theta's Lustre, or Python multiprocessing:
//!
//! * [`table`] — a columnar event-file format with the paper's HDF5 layout
//!   (§IV-B): named leaf groups, one per stored C++ class, each holding
//!   1-D columns of identical length, three of which are `run`, `subrun`
//!   and `event`;
//! * [`pfs`] — a simulated parallel file system: shared aggregate bandwidth
//!   and per-open metadata latency, so that many concurrent readers contend
//!   the way they do on a real PFS (this is what makes the file-based
//!   workflow's small-dataset throughput collapse in Fig. 3);
//! * [`gridrun`] — the workflow runner: N workers pulling work (files) from
//!   a shared queue, with per-worker busy/idle accounting (the Python
//!   `multiprocessing` analogue of §IV-A).

#![warn(missing_docs)]

pub mod gridrun;
pub mod pfs;
pub mod table;

pub use gridrun::{run_file_workflow, run_file_workflow_blocks, GridStats, WorkerReport};
pub use pfs::{PfsConfig, SimPfs};
pub use table::{ColumnData, ColumnType, TableFileReader, TableFileWriter, TableGroup};
