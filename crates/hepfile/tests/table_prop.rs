//! Property tests for the columnar table-file format: arbitrary groups and
//! columns must round-trip exactly through disk, and readers must reject
//! mutations of the header.

use hepfile::table::{TableFileReader, TableFileWriter};
use hepfile::{ColumnData, TableGroup};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpfile() -> PathBuf {
    let d = std::env::temp_dir().join(format!("hepfile-prop-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d.join(format!(
        "case-{}.hepf",
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn column_strategy(len: usize) -> impl Strategy<Value = ColumnData> {
    prop_oneof![
        proptest::collection::vec(any::<u64>(), len..=len).prop_map(ColumnData::U64),
        proptest::collection::vec(any::<u32>(), len..=len).prop_map(ColumnData::U32),
        proptest::collection::vec(any::<f64>(), len..=len).prop_map(ColumnData::F64),
        proptest::collection::vec(any::<f32>(), len..=len).prop_map(ColumnData::F32),
    ]
}

fn group_strategy() -> impl Strategy<Value = TableGroup> {
    (0usize..50, "[a-z.]{1,12}", 1usize..6).prop_flat_map(|(rows, name, n_cols)| {
        let cols = (0..n_cols)
            .map(|i| column_strategy(rows).prop_map(move |c| (format!("col{i}"), c)))
            .collect::<Vec<_>>();
        (Just(name), cols).prop_map(|(name, columns)| TableGroup { name, columns })
    })
}

fn groups_eq(a: &TableGroup, b: &TableGroup) -> bool {
    // Bitwise comparison (NaN-safe) through re-encoding.
    if a.name != b.name || a.columns.len() != b.columns.len() {
        return false;
    }
    a.columns
        .iter()
        .zip(&b.columns)
        .all(|((an, ac), (bn, bc))| {
            an == bn
                && match (ac, bc) {
                    (ColumnData::U64(x), ColumnData::U64(y)) => x == y,
                    (ColumnData::U32(x), ColumnData::U32(y)) => x == y,
                    (ColumnData::F64(x), ColumnData::F64(y)) => {
                        x.len() == y.len()
                            && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
                    }
                    (ColumnData::F32(x), ColumnData::F32(y)) => {
                        x.len() == y.len()
                            && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
                    }
                    _ => false,
                }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn groups_round_trip(groups in proptest::collection::vec(group_strategy(), 0..4)) {
        let path = tmpfile();
        let mut w = TableFileWriter::create(&path);
        // Deduplicate group names (the format allows duplicates but reads
        // resolve by first match; keep the property crisp).
        let mut seen = std::collections::HashSet::new();
        let mut expected = Vec::new();
        for g in groups {
            if seen.insert(g.name.clone()) {
                w.add_group(g.clone()).unwrap();
                expected.push(g);
            }
        }
        w.finish().unwrap();
        let r = TableFileReader::open(&path).unwrap();
        prop_assert_eq!(r.schema().len(), expected.len());
        for g in &expected {
            let back = r.read_group(&g.name).unwrap();
            prop_assert!(groups_eq(&back, g), "group {} mismatch", g.name);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_corruption_is_detected(
        group in group_strategy(),
        flip_at in 4usize..16,
    ) {
        let path = tmpfile();
        let mut w = TableFileWriter::create(&path);
        w.add_group(group).unwrap();
        w.finish().unwrap();
        let mut data = std::fs::read(&path).unwrap();
        if data.len() > flip_at {
            data[flip_at] ^= 0x80;
            std::fs::write(&path, &data).unwrap();
            // Either the open fails, or the parsed schema differs; the file
            // must never be silently accepted as identical AND readable with
            // out-of-bounds columns.
            if let Ok(r) = TableFileReader::open(&path) {
                for g in r.schema().to_vec() {
                    let _ = r.read_group(&g.name); // must not panic
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
