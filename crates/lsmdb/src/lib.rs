//! `lsmdb` — a log-structured merge-tree storage engine.
//!
//! This crate is the reproduction's substitute for **RocksDB**, which the
//! paper uses (through Yokan) as HEPnOS's persistent backend writing to
//! node-local SSDs (§IV-D). The evaluation's in-memory-vs-RocksDB gap at
//! high node counts (Fig. 2) comes from the LSM cost structure — WAL
//! appends, memtable flushes, SST read paths and compaction — so the
//! substitute implements a faithful LSM rather than wrapping a hash map in
//! a file:
//!
//! * [`wal`] — a checksummed write-ahead log replayed on open;
//! * a sorted in-memory *memtable* with tombstones;
//! * [`sstable`] — immutable sorted-string tables with a sparse index and a
//!   [`bloom`] filter per table;
//! * [`levels`](crate) — N sorted runs with exponential size targets,
//!   compaction-score prioritization, trivial moves, and key-range
//!   partitioned outputs; tombstones drop only at the bottom of the tree;
//! * background flush/compaction on a dedicated worker draining an
//!   `argos::Pool`, with L0-buildup write stalls surfacing as
//!   [`DbError::Busy`] so overload degrades gracefully;
//! * a `MANIFEST` recording the set of live tables (atomic-rename updates),
//!   replayed on open alongside the numbered WALs.
//!
//! The public entry point is [`Db`].
//!
//! # Example
//!
//! ```
//! let dir = std::env::temp_dir().join(format!("lsmdb-doc-{}", std::process::id()));
//! let db = lsmdb::Db::open(&dir, lsmdb::Options::default()).unwrap();
//! db.put(b"run/0001", b"payload").unwrap();
//! assert_eq!(db.get(b"run/0001").unwrap().as_deref(), Some(&b"payload"[..]));
//! db.delete(b"run/0001").unwrap();
//! assert_eq!(db.get(b"run/0001").unwrap(), None);
//! # drop(db); std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]

pub mod bloom;
pub mod cache;
mod crc32;
mod db;
mod levels;
mod memtable;
pub mod sstable;
pub mod wal;

pub use cache::{CacheStats, ShardedReadCache};
pub use db::{CompactionMode, Db, DbError, DbStats, Failpoint, Options, WalSync, WriteBatch};
pub use memtable::Value;
