//! Sorted-string tables: immutable on-disk runs of sorted key/value entries.
//!
//! Layout:
//!
//! ```text
//! [ entries... ][ sparse index ][ bloom filter ][ footer ]
//! ```
//!
//! * entries — `key_len u32 | kind u8 | val_len u32 | key | value`, sorted
//!   by key, possibly containing tombstones;
//! * sparse index — every `INDEX_INTERVAL`-th key with its file offset, for
//!   binary search;
//! * bloom filter — all keys, consulted before any disk access;
//! * footer — offsets/lengths of the two metadata sections, entry count,
//!   min/max keys, and a magic number, all checksummed.
//!
//! Readers keep the index and bloom filter in memory and perform positioned
//! reads for data, which is the RocksDB cost structure (index/filter blocks
//! pinned, data blocks from disk).

use crate::bloom::BloomFilter;
use crate::crc32::crc32;
use crate::memtable::Value;
use parking_lot::Mutex;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: u64 = 0x4845_504E_4F53_5354; // "HEPNOSST"
const INDEX_INTERVAL: usize = 16;
const KIND_PUT: u8 = 1;
const KIND_TOMBSTONE: u8 = 2;

/// Errors from SSTable I/O.
#[derive(Debug)]
pub enum SstError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid SSTable (bad magic, checksum, or framing).
    Corrupt(String),
    /// Keys were added out of order.
    OutOfOrder,
}

impl std::fmt::Display for SstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SstError::Io(e) => write!(f, "sstable io error: {e}"),
            SstError::Corrupt(m) => write!(f, "corrupt sstable: {m}"),
            SstError::OutOfOrder => write!(f, "keys added out of sorted order"),
        }
    }
}

impl std::error::Error for SstError {}

impl From<std::io::Error> for SstError {
    fn from(e: std::io::Error) -> Self {
        SstError::Io(e)
    }
}

fn encode_entry(out: &mut Vec<u8>, key: &[u8], value: &Value) {
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    match value {
        Value::Put(v) => {
            out.push(KIND_PUT);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(key);
            out.extend_from_slice(v);
        }
        Value::Tombstone => {
            out.push(KIND_TOMBSTONE);
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(key);
        }
    }
}

fn read_entry<R: Read>(r: &mut R) -> Result<Option<(Vec<u8>, Value)>, SstError> {
    let mut hdr = [0u8; 9];
    match r.read_exact(&mut hdr[..4]) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    r.read_exact(&mut hdr[4..])?;
    let key_len = u32::from_le_bytes(hdr[..4].try_into().unwrap()) as usize;
    let kind = hdr[4];
    let val_len = u32::from_le_bytes(hdr[5..9].try_into().unwrap()) as usize;
    let mut key = vec![0u8; key_len];
    r.read_exact(&mut key)?;
    let value = match kind {
        KIND_PUT => {
            let mut v = vec![0u8; val_len];
            r.read_exact(&mut v)?;
            Value::Put(v)
        }
        KIND_TOMBSTONE => Value::Tombstone,
        k => return Err(SstError::Corrupt(format!("bad entry kind {k}"))),
    };
    Ok(Some((key, value)))
}

/// Builds an SSTable; keys must be added in strictly increasing order.
pub struct SstWriter {
    path: PathBuf,
    file: BufWriter<File>,
    offset: u64,
    index: Vec<(Vec<u8>, u64)>,
    keys: Vec<Vec<u8>>,
    last_key: Option<Vec<u8>>,
    first_key: Option<Vec<u8>>,
    count: usize,
    bits_per_key: usize,
}

impl SstWriter {
    /// Start writing a table at `path`.
    pub fn create(path: &Path, bits_per_key: usize) -> Result<SstWriter, SstError> {
        let file = BufWriter::new(File::create(path)?);
        Ok(SstWriter {
            path: path.to_path_buf(),
            file,
            offset: 0,
            index: Vec::new(),
            keys: Vec::new(),
            last_key: None,
            first_key: None,
            count: 0,
            bits_per_key,
        })
    }

    /// Append one entry.
    pub fn add(&mut self, key: &[u8], value: &Value) -> Result<(), SstError> {
        if let Some(last) = &self.last_key {
            if key <= last.as_slice() {
                return Err(SstError::OutOfOrder);
            }
        }
        if self.count.is_multiple_of(INDEX_INTERVAL) {
            self.index.push((key.to_vec(), self.offset));
        }
        let mut buf = Vec::with_capacity(9 + key.len() + 64);
        encode_entry(&mut buf, key, value);
        self.file.write_all(&buf)?;
        self.offset += buf.len() as u64;
        self.keys.push(key.to_vec());
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }
        self.last_key = Some(key.to_vec());
        self.count += 1;
        Ok(())
    }

    /// Bytes of entry data written so far (metadata sections excluded).
    pub fn data_bytes(&self) -> u64 {
        self.offset
    }

    /// Number of entries added so far.
    pub fn entry_count(&self) -> usize {
        self.count
    }

    /// Write metadata sections and the footer; returns a reader over the
    /// finished table.
    pub fn finish(mut self) -> Result<SstReader, SstError> {
        self.write_trailer()?;
        let path = self.path;
        SstReader::open(&path)
    }

    /// Finish the table, then atomically rename it to `final_path` (fsyncing
    /// the parent directory) before opening the reader. This is the
    /// crash-safe publication path: the table is built at a temporary path
    /// and only becomes visible under its real name once fully durable.
    pub fn finish_to(mut self, final_path: &Path) -> Result<SstReader, SstError> {
        self.write_trailer()?;
        std::fs::rename(&self.path, final_path)?;
        sync_dir(final_path)?;
        SstReader::open(final_path)
    }

    fn write_trailer(&mut self) -> Result<(), SstError> {
        // Index section.
        let index_offset = self.offset;
        let mut index_buf = Vec::new();
        index_buf.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for (key, off) in &self.index {
            index_buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
            index_buf.extend_from_slice(key);
            index_buf.extend_from_slice(&off.to_le_bytes());
        }
        self.file.write_all(&index_buf)?;
        // Bloom section.
        let bloom_offset = index_offset + index_buf.len() as u64;
        let mut bloom = BloomFilter::new(self.keys.len(), self.bits_per_key);
        for k in &self.keys {
            bloom.insert(k);
        }
        let bloom_buf = bloom.encode();
        self.file.write_all(&bloom_buf)?;
        // Footer: min/max keys then fixed trailer.
        let min_key = self.first_key.clone().unwrap_or_default();
        let max_key = self.last_key.clone().unwrap_or_default();
        let mut footer = Vec::new();
        footer.extend_from_slice(&(min_key.len() as u32).to_le_bytes());
        footer.extend_from_slice(&min_key);
        footer.extend_from_slice(&(max_key.len() as u32).to_le_bytes());
        footer.extend_from_slice(&max_key);
        footer.extend_from_slice(&index_offset.to_le_bytes());
        footer.extend_from_slice(&(index_buf.len() as u64).to_le_bytes());
        footer.extend_from_slice(&bloom_offset.to_le_bytes());
        footer.extend_from_slice(&(bloom_buf.len() as u64).to_le_bytes());
        footer.extend_from_slice(&(self.count as u64).to_le_bytes());
        let crc = crc32(&footer);
        self.file.write_all(&footer)?;
        self.file.write_all(&crc.to_le_bytes())?;
        self.file.write_all(&(footer.len() as u32).to_le_bytes())?;
        self.file.write_all(&MAGIC.to_le_bytes())?;
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        Ok(())
    }
}

/// fsync the parent directory of `path` so a just-performed rename survives
/// a crash. Best-effort no-op on platforms where directories cannot be
/// opened.
pub(crate) fn sync_dir(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            dir.sync_all()?;
        }
    }
    Ok(())
}

struct IndexEntry {
    key: Vec<u8>,
    offset: u64,
}

/// A reader over one finished SSTable. Index and bloom filter are held in
/// memory; entry data is read from disk on demand.
pub struct SstReader {
    path: PathBuf,
    file: Mutex<BufReader<File>>,
    index: Vec<IndexEntry>,
    bloom: BloomFilter,
    min_key: Vec<u8>,
    max_key: Vec<u8>,
    count: u64,
    data_end: u64,
    file_size: u64,
}

impl SstReader {
    /// Open and validate a table.
    pub fn open(path: &Path) -> Result<SstReader, SstError> {
        let mut f = File::open(path)?;
        let file_size = f.metadata()?.len();
        if file_size < 16 {
            return Err(SstError::Corrupt("file too small".into()));
        }
        // Trailer: crc u32 | footer_len u32 | magic u64.
        f.seek(SeekFrom::End(-16))?;
        let mut tail = [0u8; 16];
        f.read_exact(&mut tail)?;
        let crc_stored = u32::from_le_bytes(tail[..4].try_into().unwrap());
        let footer_len = u32::from_le_bytes(tail[4..8].try_into().unwrap()) as u64;
        let magic = u64::from_le_bytes(tail[8..].try_into().unwrap());
        if magic != MAGIC {
            return Err(SstError::Corrupt("bad magic".into()));
        }
        if footer_len + 16 > file_size {
            return Err(SstError::Corrupt("bad footer length".into()));
        }
        f.seek(SeekFrom::End(-16 - footer_len as i64))?;
        let mut footer = vec![0u8; footer_len as usize];
        f.read_exact(&mut footer)?;
        if crc32(&footer) != crc_stored {
            return Err(SstError::Corrupt("footer checksum mismatch".into()));
        }
        let mut pos = 0usize;
        let take_u32 = |pos: &mut usize| -> Result<u32, SstError> {
            let v = footer
                .get(*pos..*pos + 4)
                .ok_or_else(|| SstError::Corrupt("short footer".into()))?;
            *pos += 4;
            Ok(u32::from_le_bytes(v.try_into().unwrap()))
        };
        let min_len = take_u32(&mut pos)? as usize;
        let min_key = footer
            .get(pos..pos + min_len)
            .ok_or_else(|| SstError::Corrupt("short footer".into()))?
            .to_vec();
        pos += min_len;
        let max_len = take_u32(&mut pos)? as usize;
        let max_key = footer
            .get(pos..pos + max_len)
            .ok_or_else(|| SstError::Corrupt("short footer".into()))?
            .to_vec();
        pos += max_len;
        let take_u64 = |pos: &mut usize| -> Result<u64, SstError> {
            let v = footer
                .get(*pos..*pos + 8)
                .ok_or_else(|| SstError::Corrupt("short footer".into()))?;
            *pos += 8;
            Ok(u64::from_le_bytes(v.try_into().unwrap()))
        };
        let index_offset = take_u64(&mut pos)?;
        let index_len = take_u64(&mut pos)?;
        let bloom_offset = take_u64(&mut pos)?;
        let bloom_len = take_u64(&mut pos)?;
        let count = take_u64(&mut pos)?;
        // Load index.
        f.seek(SeekFrom::Start(index_offset))?;
        let mut index_buf = vec![0u8; index_len as usize];
        f.read_exact(&mut index_buf)?;
        let mut index = Vec::new();
        let mut ip = 0usize;
        if index_buf.len() < 4 {
            return Err(SstError::Corrupt("short index".into()));
        }
        let n_index = u32::from_le_bytes(index_buf[..4].try_into().unwrap()) as usize;
        ip += 4;
        for _ in 0..n_index {
            let klen = u32::from_le_bytes(
                index_buf
                    .get(ip..ip + 4)
                    .ok_or_else(|| SstError::Corrupt("short index".into()))?
                    .try_into()
                    .unwrap(),
            ) as usize;
            ip += 4;
            let key = index_buf
                .get(ip..ip + klen)
                .ok_or_else(|| SstError::Corrupt("short index".into()))?
                .to_vec();
            ip += klen;
            let offset = u64::from_le_bytes(
                index_buf
                    .get(ip..ip + 8)
                    .ok_or_else(|| SstError::Corrupt("short index".into()))?
                    .try_into()
                    .unwrap(),
            );
            ip += 8;
            index.push(IndexEntry { key, offset });
        }
        // Load bloom.
        f.seek(SeekFrom::Start(bloom_offset))?;
        let mut bloom_buf = vec![0u8; bloom_len as usize];
        f.read_exact(&mut bloom_buf)?;
        let bloom = BloomFilter::decode(&bloom_buf)
            .ok_or_else(|| SstError::Corrupt("bad bloom filter".into()))?;
        Ok(SstReader {
            path: path.to_path_buf(),
            file: Mutex::new(BufReader::new(File::open(path)?)),
            index,
            bloom,
            min_key,
            max_key,
            count,
            data_end: index_offset,
            file_size,
        })
    }

    /// Number of entries (including tombstones).
    pub fn entry_count(&self) -> u64 {
        self.count
    }

    /// Smallest key in the table.
    pub fn min_key(&self) -> &[u8] {
        &self.min_key
    }

    /// Largest key in the table.
    pub fn max_key(&self) -> &[u8] {
        &self.max_key
    }

    /// On-disk size in bytes.
    pub fn file_size(&self) -> u64 {
        self.file_size
    }

    /// The table's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the key may be present, per the bloom filter and key range.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        if self.count == 0 {
            return false;
        }
        key >= self.min_key.as_slice()
            && key <= self.max_key.as_slice()
            && self.bloom.may_contain(key)
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Value>, SstError> {
        if !self.may_contain(key) {
            return Ok(None);
        }
        let start = self.seek_offset(key);
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(start))?;
        let mut pos = start;
        while pos < self.data_end {
            match read_entry(&mut *f)? {
                None => break,
                Some((k, v)) => {
                    pos = f.stream_position()?;
                    match k.as_slice().cmp(key) {
                        std::cmp::Ordering::Less => continue,
                        std::cmp::Ordering::Equal => return Ok(Some(v)),
                        std::cmp::Ordering::Greater => return Ok(None),
                    }
                }
            }
        }
        Ok(None)
    }

    /// Greatest indexed offset whose key is `<= key` (0 if none).
    fn seek_offset(&self, key: &[u8]) -> u64 {
        match self.index.binary_search_by(|e| e.key.as_slice().cmp(key)) {
            Ok(i) => self.index[i].offset,
            Err(0) => 0,
            Err(i) => self.index[i - 1].offset,
        }
    }

    /// Iterate entries with keys in `[lower, upper)`; `upper = None` means
    /// unbounded. Entries stream from disk in order.
    pub fn iter_range(&self, lower: &[u8], upper: Option<&[u8]>) -> Result<SstRangeIter, SstError> {
        let start = self.seek_offset(lower);
        let mut reader = BufReader::new(File::open(&self.path)?);
        reader.seek(SeekFrom::Start(start))?;
        Ok(SstRangeIter {
            reader,
            pos: start,
            data_end: self.data_end,
            lower: lower.to_vec(),
            upper: upper.map(|u| u.to_vec()),
        })
    }

    /// Iterate the entire table.
    pub fn iter_all(&self) -> Result<SstRangeIter, SstError> {
        self.iter_range(&[], None)
    }
}

/// Streaming iterator over a key range of one table.
pub struct SstRangeIter {
    reader: BufReader<File>,
    pos: u64,
    data_end: u64,
    lower: Vec<u8>,
    upper: Option<Vec<u8>>,
}

impl Iterator for SstRangeIter {
    type Item = (Vec<u8>, Value);

    fn next(&mut self) -> Option<Self::Item> {
        while self.pos < self.data_end {
            let entry = read_entry(&mut self.reader).ok()??;
            self.pos = self.reader.stream_position().ok()?;
            let (k, v) = entry;
            if k.as_slice() < self.lower.as_slice() {
                continue;
            }
            if let Some(u) = &self.upper {
                if k.as_slice() >= u.as_slice() {
                    return None;
                }
            }
            return Some((k, v));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lsmdb-sst-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn build_table(path: &Path, n: u32) -> SstReader {
        let mut w = SstWriter::create(path, 10).unwrap();
        for i in 0..n {
            let key = format!("key{i:06}");
            if i % 7 == 3 {
                w.add(key.as_bytes(), &Value::Tombstone).unwrap();
            } else {
                w.add(key.as_bytes(), &Value::Put(format!("val{i}").into_bytes()))
                    .unwrap();
            }
        }
        w.finish().unwrap()
    }

    #[test]
    fn write_read_round_trip() {
        let d = tmpdir("rt");
        let r = build_table(&d.join("t1.sst"), 1000);
        assert_eq!(r.entry_count(), 1000);
        assert_eq!(r.min_key(), b"key000000");
        assert_eq!(r.max_key(), b"key000999");
        // 501 % 7 != 3, so it is a live entry (500 is a tombstone).
        assert_eq!(
            r.get(b"key000501").unwrap(),
            Some(Value::Put(b"val501".to_vec()))
        );
        assert_eq!(r.get(b"key000003").unwrap(), Some(Value::Tombstone));
        assert_eq!(r.get(b"key001000").unwrap(), None);
        assert_eq!(r.get(b"absent").unwrap(), None);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn every_key_is_retrievable() {
        let d = tmpdir("all");
        let r = build_table(&d.join("t.sst"), 500);
        for i in 0..500u32 {
            let key = format!("key{i:06}");
            let got = r.get(key.as_bytes()).unwrap().unwrap();
            if i % 7 == 3 {
                assert_eq!(got, Value::Tombstone);
            } else {
                assert_eq!(got, Value::Put(format!("val{i}").into_bytes()));
            }
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn range_iteration() {
        let d = tmpdir("range");
        let r = build_table(&d.join("t.sst"), 100);
        let got: Vec<_> = r
            .iter_range(b"key000010", Some(b"key000015"))
            .unwrap()
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        assert_eq!(
            got,
            vec![
                "key000010",
                "key000011",
                "key000012",
                "key000013",
                "key000014"
            ]
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn full_iteration_is_sorted_and_complete() {
        let d = tmpdir("full");
        let r = build_table(&d.join("t.sst"), 300);
        let keys: Vec<_> = r.iter_all().unwrap().map(|(k, _)| k).collect();
        assert_eq!(keys.len(), 300);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn out_of_order_add_is_rejected() {
        let d = tmpdir("ooo");
        let mut w = SstWriter::create(&d.join("t.sst"), 10).unwrap();
        w.add(b"b", &Value::Put(b"1".to_vec())).unwrap();
        assert!(matches!(
            w.add(b"a", &Value::Put(b"2".to_vec())),
            Err(SstError::OutOfOrder)
        ));
        assert!(matches!(
            w.add(b"b", &Value::Put(b"2".to_vec())),
            Err(SstError::OutOfOrder)
        ));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn empty_table() {
        let d = tmpdir("empty");
        let w = SstWriter::create(&d.join("t.sst"), 10).unwrap();
        let r = w.finish().unwrap();
        assert_eq!(r.entry_count(), 0);
        assert_eq!(r.get(b"anything").unwrap(), None);
        assert_eq!(r.iter_all().unwrap().count(), 0);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn finish_to_renames_atomically() {
        let d = tmpdir("rename");
        let tmp = d.join("000001.sst.tmp");
        let fin = d.join("000001.sst");
        let mut w = SstWriter::create(&tmp, 10).unwrap();
        w.add(b"a", &Value::Put(b"1".to_vec())).unwrap();
        w.add(b"b", &Value::Put(b"2".to_vec())).unwrap();
        let r = w.finish_to(&fin).unwrap();
        assert!(!tmp.exists());
        assert!(fin.exists());
        assert_eq!(r.path(), fin.as_path());
        assert_eq!(r.get(b"b").unwrap(), Some(Value::Put(b"2".to_vec())));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let d = tmpdir("badmagic");
        let p = d.join("t.sst");
        build_table(&p, 10);
        let mut data = std::fs::read(&p).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF;
        std::fs::write(&p, &data).unwrap();
        assert!(matches!(SstReader::open(&p), Err(SstError::Corrupt(_))));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn corrupt_footer_checksum_is_rejected() {
        let d = tmpdir("badcrc");
        let p = d.join("t.sst");
        build_table(&p, 10);
        let mut data = std::fs::read(&p).unwrap();
        let n = data.len();
        data[n - 20] ^= 0xFF; // inside the footer body
        std::fs::write(&p, &data).unwrap();
        assert!(matches!(SstReader::open(&p), Err(SstError::Corrupt(_))));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn bloom_filters_skip_absent_prefix() {
        let d = tmpdir("bloomskip");
        let r = build_table(&d.join("t.sst"), 1000);
        // Keys outside [min,max] short-circuit without bloom.
        assert!(!r.may_contain(b"aaa"));
        assert!(!r.may_contain(b"zzz"));
        // In-range absent keys: bloom should reject nearly all.
        let hits = (0..1000)
            .filter(|i| r.may_contain(format!("key{i:06}x").as_bytes()))
            .count();
        assert!(hits < 100, "bloom passes too many absent keys: {hits}");
        std::fs::remove_dir_all(&d).ok();
    }
}
