//! The in-memory write buffer.

use std::collections::BTreeMap;
use std::ops::Bound;

/// A memtable value: either live bytes or a deletion tombstone. Tombstones
/// must be kept (not simply removed) so that a flushed table can shadow
/// older versions of the key living in lower levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Live data.
    Put(Vec<u8>),
    /// Deletion marker.
    Tombstone,
}

/// A sorted in-memory buffer of recent writes.
///
/// RocksDB uses a concurrent skiplist; our databases are accessed through a
/// provider that serializes writes per database (the Mochi model maps each
/// database to one provider pool), so a `BTreeMap` behind the `Db` lock
/// gives the same semantics.
#[derive(Debug, Default)]
pub struct Memtable {
    map: BTreeMap<Vec<u8>, Value>,
    approx_bytes: usize,
}

impl Memtable {
    /// Create an empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or overwrite a key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.insert(key.to_vec(), Value::Put(value.to_vec()));
    }

    /// Insert a tombstone for a key.
    pub fn delete(&mut self, key: &[u8]) {
        self.insert(key.to_vec(), Value::Tombstone);
    }

    fn insert(&mut self, key: Vec<u8>, value: Value) {
        let val_len = match &value {
            Value::Put(v) => v.len(),
            Value::Tombstone => 0,
        };
        let key_len = key.len();
        if let Some(old) = self.map.insert(key, value) {
            let old_len = match &old {
                Value::Put(v) => v.len(),
                Value::Tombstone => 0,
            };
            // Key bytes were already accounted for on first insertion.
            self.approx_bytes = self.approx_bytes.saturating_sub(old_len) + val_len;
        } else {
            self.approx_bytes += key_len + val_len;
        }
    }

    /// Look up a key. `Some(Value::Tombstone)` means "known deleted" and
    /// must short-circuit the read path.
    pub fn get(&self, key: &[u8]) -> Option<&Value> {
        self.map.get(key)
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate memory footprint used to trigger flushes.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Iterate entries with keys in `[lower, upper)` in sorted order.
    pub fn range<'a>(
        &'a self,
        lower: Bound<&'a [u8]>,
        upper: Bound<&'a [u8]>,
    ) -> impl Iterator<Item = (&'a [u8], &'a Value)> + 'a {
        self.map
            .range::<[u8], _>((lower, upper))
            .map(|(k, v)| (k.as_slice(), v))
    }

    /// Iterate all entries in sorted order (for flushing).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &Value)> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut m = Memtable::new();
        m.put(b"a", b"1");
        assert_eq!(m.get(b"a"), Some(&Value::Put(b"1".to_vec())));
        m.delete(b"a");
        assert_eq!(m.get(b"a"), Some(&Value::Tombstone));
        assert_eq!(m.get(b"b"), None);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let mut m = Memtable::new();
        m.put(b"k", b"old");
        m.put(b"k", b"new");
        assert_eq!(m.get(b"k"), Some(&Value::Put(b"new".to_vec())));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn range_is_sorted() {
        let mut m = Memtable::new();
        for k in [&b"c"[..], b"a", b"e", b"b", b"d"] {
            m.put(k, b"x");
        }
        let keys: Vec<&[u8]> = m
            .range(Bound::Included(&b"b"[..]), Bound::Excluded(&b"e"[..]))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![&b"b"[..], b"c", b"d"]);
    }

    #[test]
    fn approx_bytes_grows_and_tracks_overwrites() {
        let mut m = Memtable::new();
        m.put(b"key", &[0u8; 100]);
        let b1 = m.approx_bytes();
        assert!(b1 >= 103);
        m.put(b"key", &[0u8; 10]);
        assert!(m.approx_bytes() < b1 + 100);
    }

    #[test]
    fn tombstones_appear_in_iteration() {
        let mut m = Memtable::new();
        m.put(b"a", b"1");
        m.delete(b"b");
        let all: Vec<_> = m.iter().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1], (&b"b"[..], &Value::Tombstone));
    }
}
