//! The LSM database: WAL + memtable + leveled SSTables.
//!
//! Two levels are maintained, which is enough to reproduce RocksDB's cost
//! structure at the scales HEPnOS databases see:
//!
//! * **L0** — tables flushed straight from the memtable; they may overlap,
//!   and the read path must consult them newest-first;
//! * **L1** — a sorted, non-overlapping run produced by compaction; it is
//!   the bottom level, so compaction into it drops tombstones.
//!
//! All mutations go through the WAL first; `open` replays any WAL left by a
//! crash. A plain-text `MANIFEST` (updated via atomic rename) records the
//! set of live tables.

use crate::cache::{CacheStats, ShardedReadCache};
use crate::memtable::{Memtable, Value};
use crate::sstable::{SstError, SstReader, SstWriter};
use crate::wal::{Wal, WalRecord};
use parking_lot::RwLock;
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs for a [`Db`].
#[derive(Debug, Clone)]
pub struct Options {
    /// Memtable size that triggers a flush to L0.
    pub memtable_bytes: usize,
    /// Number of L0 tables that triggers compaction into L1.
    pub l0_compaction_trigger: usize,
    /// Target size of each compacted L1 table.
    pub l1_target_bytes: usize,
    /// fsync the WAL on every write.
    pub sync_wal: bool,
    /// Bloom filter density.
    pub bloom_bits_per_key: usize,
    /// Byte budget of the read (value) cache; `0` disables it. This is the
    /// RocksDB block-cache analogue, serving repeated point lookups from
    /// memory.
    pub read_cache_bytes: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            memtable_bytes: 4 << 20,
            l0_compaction_trigger: 4,
            l1_target_bytes: 16 << 20,
            sync_wal: false,
            bloom_bits_per_key: 10,
            read_cache_bytes: 0,
        }
    }
}

/// Errors from database operations.
#[derive(Debug)]
pub enum DbError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// An SSTable was corrupt or unreadable.
    Sst(SstError),
    /// The manifest references a missing file or is malformed.
    Manifest(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "db io error: {e}"),
            DbError::Sst(e) => write!(f, "db sstable error: {e}"),
            DbError::Manifest(m) => write!(f, "db manifest error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

impl From<SstError> for DbError {
    fn from(e: SstError) -> Self {
        DbError::Sst(e)
    }
}

/// An owned key/value pair as returned by scans.
pub type KeyValue = (Vec<u8>, Vec<u8>);

/// One iterator source feeding the k-way merge.
type MergeSource = Box<dyn Iterator<Item = (Vec<u8>, Value)>>;

/// A batch of writes applied atomically (single lock acquisition, single WAL
/// flush). This is what Yokan's `put_multi` maps onto.
#[derive(Debug, Default, Clone)]
pub struct WriteBatch {
    ops: Vec<WalRecord>,
}

impl WriteBatch {
    /// Create an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an insertion.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> &mut Self {
        self.ops.push(WalRecord::Put(key.to_vec(), value.to_vec()));
        self
    }

    /// Queue a deletion.
    pub fn delete(&mut self, key: &[u8]) -> &mut Self {
        self.ops.push(WalRecord::Delete(key.to_vec()));
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Operational counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DbStats {
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Entries currently in the memtable.
    pub memtable_entries: usize,
    /// Live L0 table count.
    pub l0_tables: usize,
    /// Live L1 table count.
    pub l1_tables: usize,
}

struct State {
    memtable: Memtable,
    wal: Wal,
    l0: Vec<Arc<SstReader>>, // newest last
    l1: Vec<Arc<SstReader>>, // sorted by min_key, non-overlapping
    next_file: u64,
}

/// An LSM-tree key-value database rooted at a directory.
pub struct Db {
    dir: PathBuf,
    opts: Options,
    state: RwLock<State>,
    cache: Option<ShardedReadCache>,
    flushes: AtomicU64,
    compactions: AtomicU64,
}

impl Db {
    /// Open (creating if needed) a database in `dir`, replaying any WAL and
    /// manifest left by a previous incarnation.
    pub fn open(dir: &Path, opts: Options) -> Result<Db, DbError> {
        std::fs::create_dir_all(dir)?;
        let manifest = dir.join("MANIFEST");
        let mut l0 = Vec::new();
        let mut l1 = Vec::new();
        let mut next_file = 1u64;
        if manifest.exists() {
            let text = std::fs::read_to_string(&manifest)?;
            for line in text.lines() {
                let mut parts = line.split_whitespace();
                match (parts.next(), parts.next()) {
                    (Some("NEXT"), Some(n)) => {
                        next_file = n
                            .parse()
                            .map_err(|_| DbError::Manifest(format!("bad NEXT line: {line}")))?;
                    }
                    (Some("L0"), Some(name)) => {
                        l0.push(Arc::new(SstReader::open(&dir.join(name))?));
                    }
                    (Some("L1"), Some(name)) => {
                        l1.push(Arc::new(SstReader::open(&dir.join(name))?));
                    }
                    (None, _) => {}
                    _ => return Err(DbError::Manifest(format!("bad line: {line}"))),
                }
            }
        }
        l1.sort_by(|a, b| a.min_key().cmp(b.min_key()));
        // Replay the WAL into a fresh memtable, then start a new WAL
        // containing exactly the replayed state.
        let wal_path = dir.join("wal.log");
        let replayed = Wal::replay(&wal_path)?;
        let mut memtable = Memtable::new();
        let mut wal = Wal::create(&dir.join("wal.new"), opts.sync_wal)?;
        for rec in &replayed {
            wal.append(rec)?;
            match rec {
                WalRecord::Put(k, v) => memtable.put(k, v),
                WalRecord::Delete(k) => memtable.delete(k),
            }
        }
        wal.flush()?;
        std::fs::rename(dir.join("wal.new"), &wal_path)?;
        // The renamed file is still open under its old name on some
        // platforms; recreate the writer against the final path by
        // re-appending nothing (Unix: the fd follows the inode, which is now
        // at wal_path, so appends continue to land in the right file).
        let cache = if opts.read_cache_bytes > 0 {
            Some(ShardedReadCache::new(opts.read_cache_bytes))
        } else {
            None
        };
        let db = Db {
            dir: dir.to_path_buf(),
            opts,
            state: RwLock::new(State {
                memtable,
                wal,
                l0,
                l1,
                next_file,
            }),
            cache,
            flushes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        };
        Ok(db)
    }

    /// Insert or overwrite a key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), DbError> {
        let mut st = self.state.write();
        st.wal
            .append(&WalRecord::Put(key.to_vec(), value.to_vec()))?;
        if !self.opts.sync_wal {
            st.wal.flush()?;
        }
        st.memtable.put(key, value);
        if let Some(c) = &self.cache {
            c.invalidate(key);
        }
        self.maybe_flush(&mut st)
    }

    /// Delete a key (idempotent).
    pub fn delete(&self, key: &[u8]) -> Result<(), DbError> {
        let mut st = self.state.write();
        st.wal.append(&WalRecord::Delete(key.to_vec()))?;
        if !self.opts.sync_wal {
            st.wal.flush()?;
        }
        st.memtable.delete(key);
        if let Some(c) = &self.cache {
            c.invalidate(key);
        }
        self.maybe_flush(&mut st)
    }

    /// Apply a batch atomically.
    pub fn write(&self, batch: &WriteBatch) -> Result<(), DbError> {
        let mut st = self.state.write();
        for op in &batch.ops {
            st.wal.append(op)?;
        }
        st.wal.flush()?;
        for op in &batch.ops {
            match op {
                WalRecord::Put(k, v) => st.memtable.put(k, v),
                WalRecord::Delete(k) => st.memtable.delete(k),
            }
            if let Some(c) = &self.cache {
                let key = match op {
                    WalRecord::Put(k, _) | WalRecord::Delete(k) => k,
                };
                c.invalidate(key);
            }
        }
        self.maybe_flush(&mut st)
    }

    /// Point lookup over an already-held state guard (no cache involvement).
    fn get_in(st: &State, key: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        if let Some(v) = st.memtable.get(key) {
            return Ok(match v {
                Value::Put(data) => Some(data.clone()),
                Value::Tombstone => None,
            });
        }
        for sst in st.l0.iter().rev() {
            if let Some(v) = sst.get(key)? {
                return Ok(match v {
                    Value::Put(data) => Some(data),
                    Value::Tombstone => None,
                });
            }
        }
        let idx = st.l1.partition_point(|t| t.max_key() < key);
        if let Some(t) = st.l1.get(idx) {
            if let Some(v) = t.get(key)? {
                return Ok(match v {
                    Value::Put(data) => Some(data),
                    Value::Tombstone => None,
                });
            }
        }
        Ok(None)
    }

    /// Atomically insert `value` unless `key` already exists; returns the
    /// existing value if there is one (and writes nothing). This is the
    /// primitive concurrent creators race on (e.g. two clients registering
    /// the same dataset), so it must hold the write lock across the check
    /// and the insert.
    pub fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        let mut st = self.state.write();
        if let Some(existing) = Self::get_in(&st, key)? {
            return Ok(Some(existing));
        }
        st.wal
            .append(&WalRecord::Put(key.to_vec(), value.to_vec()))?;
        if !self.opts.sync_wal {
            st.wal.flush()?;
        }
        st.memtable.put(key, value);
        if let Some(c) = &self.cache {
            c.invalidate(key);
        }
        self.maybe_flush(&mut st)?;
        Ok(None)
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        let st = self.state.read();
        if let Some(v) = st.memtable.get(key) {
            return Ok(match v {
                Value::Put(data) => Some(data.clone()),
                Value::Tombstone => None,
            });
        }
        // Not in the write buffer: the read cache may serve it without
        // touching any table.
        if let Some(c) = &self.cache {
            if let Some(v) = c.get(key) {
                return Ok(Some(v));
            }
        }
        let fill = |data: &Vec<u8>| {
            if let Some(c) = &self.cache {
                c.insert(key, data);
            }
        };
        for sst in st.l0.iter().rev() {
            if let Some(v) = sst.get(key)? {
                return Ok(match v {
                    Value::Put(data) => {
                        fill(&data);
                        Some(data)
                    }
                    Value::Tombstone => None,
                });
            }
        }
        // L1 is non-overlapping: at most one candidate table.
        let idx = st.l1.partition_point(|t| t.max_key() < key);
        if let Some(t) = st.l1.get(idx) {
            if let Some(v) = t.get(key)? {
                return Ok(match v {
                    Value::Put(data) => {
                        fill(&data);
                        Some(data)
                    }
                    Value::Tombstone => None,
                });
            }
        }
        Ok(None)
    }

    /// `(hits, misses)` of the read cache (zeros when disabled).
    pub fn cache_stats(&self) -> (u64, u64) {
        match &self.cache {
            Some(c) => c.hit_miss(),
            None => (0, 0),
        }
    }

    /// Full per-shard read-cache counters (all zeros when the cache is
    /// disabled).
    pub fn read_cache_stats(&self) -> CacheStats {
        match &self.cache {
            Some(c) => c.stats(),
            None => CacheStats::default(),
        }
    }

    /// Whether the key exists.
    pub fn contains(&self, key: &[u8]) -> Result<bool, DbError> {
        Ok(self.get(key)?.is_some())
    }

    /// Collect up to `limit` live entries with key `>= lower` and
    /// (optionally) `< upper`, in sorted key order. `limit = 0` means
    /// unlimited. This is the primitive behind Yokan's `list_keys` /
    /// `list_keyvals`.
    pub fn scan(
        &self,
        lower: &[u8],
        upper: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<KeyValue>, DbError> {
        if upper.is_some_and(|u| u <= lower) {
            return Ok(Vec::new());
        }
        let st = self.state.read();
        // Sources in precedence order: memtable, L0 newest→oldest, L1.
        let mut sources: Vec<MergeSource> = Vec::new();
        let mem_iter = st
            .memtable
            .range(
                Bound::Included(lower),
                upper.map_or(Bound::Unbounded, Bound::Excluded),
            )
            .map(|(k, v)| (k.to_vec(), v.clone()))
            .collect::<Vec<_>>();
        sources.push(Box::new(mem_iter.into_iter()));
        for sst in st.l0.iter().rev() {
            sources.push(Box::new(sst.iter_range(lower, upper)?));
        }
        for sst in &st.l1 {
            if upper.is_some_and(|u| sst.min_key() >= u) {
                continue;
            }
            if sst.max_key() < lower {
                continue;
            }
            sources.push(Box::new(sst.iter_range(lower, upper)?));
        }
        drop(st);
        let mut merged = MergeIter::new(sources);
        let mut out = Vec::new();
        while let Some((k, v)) = merged.next_entry() {
            if let Value::Put(data) = v {
                out.push((k, data));
                if limit != 0 && out.len() >= limit {
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Count live entries in `[lower, upper)` (full scan; use sparingly).
    pub fn count_range(&self, lower: &[u8], upper: Option<&[u8]>) -> Result<usize, DbError> {
        Ok(self.scan(lower, upper, 0)?.len())
    }

    /// Force the memtable to L0 regardless of size.
    pub fn flush(&self) -> Result<(), DbError> {
        let mut st = self.state.write();
        self.flush_locked(&mut st)
    }

    /// Force compaction of all tables into a fresh L1 run.
    pub fn compact(&self) -> Result<(), DbError> {
        let mut st = self.state.write();
        self.flush_locked(&mut st)?;
        self.compact_locked(&mut st)
    }

    /// Operational counters.
    pub fn stats(&self) -> DbStats {
        let st = self.state.read();
        DbStats {
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            memtable_entries: st.memtable.len(),
            l0_tables: st.l0.len(),
            l1_tables: st.l1.len(),
        }
    }

    fn maybe_flush(&self, st: &mut State) -> Result<(), DbError> {
        if st.memtable.approx_bytes() >= self.opts.memtable_bytes {
            self.flush_locked(st)?;
            if st.l0.len() >= self.opts.l0_compaction_trigger {
                self.compact_locked(st)?;
            }
        }
        Ok(())
    }

    fn sst_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("{id:08}.sst"))
    }

    fn flush_locked(&self, st: &mut State) -> Result<(), DbError> {
        if st.memtable.is_empty() {
            return Ok(());
        }
        let id = st.next_file;
        st.next_file += 1;
        let path = self.sst_path(id);
        let mut w = SstWriter::create(&path, self.opts.bloom_bits_per_key)?;
        for (k, v) in st.memtable.iter() {
            w.add(k, v)?;
        }
        let reader = w.finish()?;
        st.l0.push(Arc::new(reader));
        st.memtable = Memtable::new();
        st.wal = Wal::create(&self.dir.join("wal.log"), self.opts.sync_wal)?;
        self.write_manifest(st)?;
        self.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn compact_locked(&self, st: &mut State) -> Result<(), DbError> {
        if st.l0.is_empty() && st.l1.len() <= 1 {
            return Ok(());
        }
        let mut sources: Vec<MergeSource> = Vec::new();
        for sst in st.l0.iter().rev() {
            sources.push(Box::new(sst.iter_all()?));
        }
        for sst in &st.l1 {
            sources.push(Box::new(sst.iter_all()?));
        }
        let mut merged = MergeIter::new(sources);
        let mut new_l1: Vec<Arc<SstReader>> = Vec::new();
        let mut writer: Option<SstWriter> = None;
        let mut written = 0usize;
        while let Some((k, v)) = merged.next_entry() {
            // Bottom level: tombstones shadow nothing below them, drop them.
            let Value::Put(data) = v else { continue };
            if writer.is_none() {
                let id = st.next_file;
                st.next_file += 1;
                writer = Some(SstWriter::create(
                    &self.sst_path(id),
                    self.opts.bloom_bits_per_key,
                )?);
                written = 0;
            }
            let w = writer.as_mut().expect("writer was just created");
            w.add(&k, &Value::Put(data.clone()))?;
            written += k.len() + data.len();
            if written >= self.opts.l1_target_bytes {
                let r = writer.take().expect("writer present").finish()?;
                new_l1.push(Arc::new(r));
            }
        }
        if let Some(w) = writer {
            new_l1.push(Arc::new(w.finish()?));
        }
        let old: Vec<PathBuf> = st
            .l0
            .iter()
            .chain(st.l1.iter())
            .map(|t| t.path().to_path_buf())
            .collect();
        st.l0.clear();
        st.l1 = new_l1;
        self.write_manifest(st)?;
        for p in old {
            std::fs::remove_file(&p).ok();
        }
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_manifest(&self, st: &State) -> Result<(), DbError> {
        let mut text = format!("NEXT {}\n", st.next_file);
        for t in &st.l0 {
            let name = t
                .path()
                .file_name()
                .and_then(|n| n.to_str())
                .ok_or_else(|| DbError::Manifest("bad sst filename".into()))?;
            text.push_str(&format!("L0 {name}\n"));
        }
        for t in &st.l1 {
            let name = t
                .path()
                .file_name()
                .and_then(|n| n.to_str())
                .ok_or_else(|| DbError::Manifest("bad sst filename".into()))?;
            text.push_str(&format!("L1 {name}\n"));
        }
        let tmp = self.dir.join("MANIFEST.tmp");
        std::fs::write(&tmp, &text)?;
        std::fs::rename(&tmp, self.dir.join("MANIFEST"))?;
        Ok(())
    }
}

/// K-way merge over precedence-ordered sources (earlier sources win on
/// duplicate keys). Sources must each yield sorted, per-source-unique keys.
struct MergeIter {
    sources: Vec<std::iter::Peekable<MergeSource>>,
}

impl MergeIter {
    fn new(sources: Vec<MergeSource>) -> Self {
        MergeIter {
            sources: sources.into_iter().map(|s| s.peekable()).collect(),
        }
    }

    fn next_entry(&mut self) -> Option<(Vec<u8>, Value)> {
        // Find the smallest key among the heads.
        let mut min_key: Option<Vec<u8>> = None;
        for src in self.sources.iter_mut() {
            if let Some((k, _)) = src.peek() {
                if min_key.as_ref().is_none_or(|m| k < m) {
                    min_key = Some(k.clone());
                }
            }
        }
        let key = min_key?;
        // Take from the highest-precedence source holding that key; advance
        // every other source past it.
        let mut winner: Option<Value> = None;
        for src in self.sources.iter_mut() {
            if src.peek().is_some_and(|(k, _)| k == &key) {
                let (_, v) = src.next().expect("peeked entry must exist");
                if winner.is_none() {
                    winner = Some(v);
                }
            }
        }
        Some((key, winner.expect("at least one source held the key")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "lsmdb-db-{}-{name}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn small_opts() -> Options {
        Options {
            memtable_bytes: 1024,
            l0_compaction_trigger: 3,
            l1_target_bytes: 4096,
            sync_wal: false,
            bloom_bits_per_key: 10,
            read_cache_bytes: 0,
        }
    }

    #[test]
    fn put_get_delete_basic() {
        let d = tmpdir("basic");
        let db = Db::open(&d, Options::default()).unwrap();
        db.put(b"k1", b"v1").unwrap();
        assert_eq!(db.get(b"k1").unwrap(), Some(b"v1".to_vec()));
        assert!(db.contains(b"k1").unwrap());
        db.delete(b"k1").unwrap();
        assert_eq!(db.get(b"k1").unwrap(), None);
        assert!(!db.contains(b"k1").unwrap());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn survives_flush_and_compaction() {
        let d = tmpdir("flushcompact");
        let db = Db::open(&d, small_opts()).unwrap();
        let mut model = BTreeMap::new();
        for i in 0..2000u32 {
            let k = format!("key{:06}", i % 700);
            let v = format!("value-{i}");
            db.put(k.as_bytes(), v.as_bytes()).unwrap();
            model.insert(k, v);
        }
        let stats = db.stats();
        assert!(stats.flushes > 0, "expected flushes, got {stats:?}");
        assert!(stats.compactions > 0, "expected compactions, got {stats:?}");
        for (k, v) in &model {
            assert_eq!(
                db.get(k.as_bytes()).unwrap(),
                Some(v.clone().into_bytes()),
                "key {k}"
            );
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn deletes_survive_compaction() {
        let d = tmpdir("delcompact");
        let db = Db::open(&d, small_opts()).unwrap();
        for i in 0..500u32 {
            db.put(format!("k{i:04}").as_bytes(), &[0u8; 16]).unwrap();
        }
        for i in (0..500u32).step_by(2) {
            db.delete(format!("k{i:04}").as_bytes()).unwrap();
        }
        db.compact().unwrap();
        for i in 0..500u32 {
            let got = db.get(format!("k{i:04}").as_bytes()).unwrap();
            if i % 2 == 0 {
                assert_eq!(got, None, "k{i:04} should be deleted");
            } else {
                assert!(got.is_some(), "k{i:04} should exist");
            }
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn scan_is_sorted_and_bounded() {
        let d = tmpdir("scan");
        let db = Db::open(&d, small_opts()).unwrap();
        for i in (0..100u32).rev() {
            db.put(format!("k{i:04}").as_bytes(), format!("{i}").as_bytes())
                .unwrap();
        }
        let all = db.scan(b"", None, 0).unwrap();
        assert_eq!(all.len(), 100);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        let bounded = db.scan(b"k0010", Some(b"k0020"), 0).unwrap();
        assert_eq!(bounded.len(), 10);
        assert_eq!(bounded[0].0, b"k0010".to_vec());
        let limited = db.scan(b"", None, 7).unwrap();
        assert_eq!(limited.len(), 7);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn scan_sees_through_levels_with_correct_precedence() {
        let d = tmpdir("scanlevels");
        let db = Db::open(&d, small_opts()).unwrap();
        db.put(b"a", b"old").unwrap();
        db.flush().unwrap();
        db.put(b"a", b"mid").unwrap();
        db.flush().unwrap();
        db.put(b"a", b"new").unwrap(); // memtable
        db.put(b"b", b"1").unwrap();
        db.delete(b"b").unwrap();
        let got = db.scan(b"", None, 0).unwrap();
        assert_eq!(got, vec![(b"a".to_vec(), b"new".to_vec())]);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn write_batch_is_atomic_and_visible() {
        let d = tmpdir("batch");
        let db = Db::open(&d, Options::default()).unwrap();
        let mut batch = WriteBatch::new();
        batch.put(b"x", b"1").put(b"y", b"2").delete(b"x");
        assert_eq!(batch.len(), 3);
        db.write(&batch).unwrap();
        assert_eq!(db.get(b"x").unwrap(), None);
        assert_eq!(db.get(b"y").unwrap(), Some(b"2".to_vec()));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn reopen_recovers_from_wal() {
        let d = tmpdir("walrecover");
        {
            let db = Db::open(&d, Options::default()).unwrap();
            db.put(b"persist", b"me").unwrap();
            db.delete(b"gone").unwrap();
            // Dropped without flush: data only in WAL.
        }
        let db = Db::open(&d, Options::default()).unwrap();
        assert_eq!(db.get(b"persist").unwrap(), Some(b"me".to_vec()));
        assert_eq!(db.get(b"gone").unwrap(), None);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn reopen_recovers_ssts_and_wal_together() {
        let d = tmpdir("fullrecover");
        {
            let db = Db::open(&d, small_opts()).unwrap();
            for i in 0..300u32 {
                db.put(format!("k{i:05}").as_bytes(), &[7u8; 32]).unwrap();
            }
            db.put(b"late", b"write").unwrap();
        }
        let db = Db::open(&d, small_opts()).unwrap();
        for i in 0..300u32 {
            assert!(db.get(format!("k{i:05}").as_bytes()).unwrap().is_some());
        }
        assert_eq!(db.get(b"late").unwrap(), Some(b"write".to_vec()));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn overwrite_across_reopen() {
        let d = tmpdir("overwrite");
        {
            let db = Db::open(&d, small_opts()).unwrap();
            db.put(b"k", b"v1").unwrap();
            db.flush().unwrap();
            db.put(b"k", b"v2").unwrap();
        }
        let db = Db::open(&d, small_opts()).unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v2".to_vec()));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn count_range() {
        let d = tmpdir("count");
        let db = Db::open(&d, Options::default()).unwrap();
        for i in 0..50u32 {
            db.put(format!("p{i:03}").as_bytes(), b"x").unwrap();
        }
        assert_eq!(db.count_range(b"p", None).unwrap(), 50);
        assert_eq!(db.count_range(b"p010", Some(b"p020")).unwrap(), 10);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let d = tmpdir("concurrent");
        let db = Arc::new(Db::open(&d, small_opts()).unwrap());
        let writer = {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..1000u32 {
                    db.put(format!("k{i:06}").as_bytes(), &[1u8; 64]).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        // Reads may or may not find the key; they must not
                        // error or return torn data.
                        if let Some(v) = db.get(format!("k{i:06}").as_bytes()).unwrap() {
                            assert_eq!(v, vec![1u8; 64]);
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        for i in 0..1000u32 {
            assert!(db.get(format!("k{i:06}").as_bytes()).unwrap().is_some());
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn empty_db_operations() {
        let d = tmpdir("empty");
        let db = Db::open(&d, Options::default()).unwrap();
        assert_eq!(db.get(b"nothing").unwrap(), None);
        assert!(db.scan(b"", None, 0).unwrap().is_empty());
        db.flush().unwrap();
        db.compact().unwrap();
        std::fs::remove_dir_all(&d).ok();
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lsmdb-cache-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn cached_opts() -> Options {
        Options {
            memtable_bytes: 512,
            read_cache_bytes: 1 << 20,
            ..Options::default()
        }
    }

    #[test]
    fn repeated_sst_reads_hit_the_cache() {
        let d = tmpdir("hits");
        let db = Db::open(&d, cached_opts()).unwrap();
        for i in 0..200u64 {
            db.put(&i.to_be_bytes(), &[7u8; 64]).unwrap();
        }
        db.flush().unwrap(); // everything on "disk"
        assert_eq!(db.get(&42u64.to_be_bytes()).unwrap(), Some(vec![7u8; 64]));
        let (h0, m0) = db.cache_stats();
        assert_eq!(db.get(&42u64.to_be_bytes()).unwrap(), Some(vec![7u8; 64]));
        let (h1, m1) = db.cache_stats();
        assert_eq!(h1, h0 + 1, "second read should hit");
        assert_eq!(m1, m0);
        drop(db);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn writes_invalidate_cached_values() {
        let d = tmpdir("invalidate");
        let db = Db::open(&d, cached_opts()).unwrap();
        db.put(b"k", b"v1").unwrap();
        db.flush().unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v1".to_vec())); // fills cache
        db.put(b"k", b"v2").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v2".to_vec()));
        db.flush().unwrap();
        db.delete(b"k").unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
        drop(db);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn batch_writes_invalidate_too() {
        let d = tmpdir("batch");
        let db = Db::open(&d, cached_opts()).unwrap();
        db.put(b"a", b"old").unwrap();
        db.flush().unwrap();
        assert_eq!(db.get(b"a").unwrap(), Some(b"old".to_vec()));
        let mut wb = WriteBatch::new();
        wb.put(b"a", b"new").delete(b"b");
        db.write(&wb).unwrap();
        assert_eq!(db.get(b"a").unwrap(), Some(b"new".to_vec()));
        drop(db);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn disabled_cache_reports_zeros() {
        let d = tmpdir("disabled");
        let db = Db::open(&d, Options::default()).unwrap();
        db.put(b"x", b"y").unwrap();
        db.flush().unwrap();
        db.get(b"x").unwrap();
        db.get(b"x").unwrap();
        assert_eq!(db.cache_stats(), (0, 0));
        drop(db);
        std::fs::remove_dir_all(&d).ok();
    }
}
