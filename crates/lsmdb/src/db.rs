//! The LSM database: WAL + memtables + N leveled SSTable runs.
//!
//! Structure (RocksDB cost model at HEPnOS scales):
//!
//! * **memtable** — the active write buffer, mirrored to a numbered WAL;
//! * **imm** — frozen memtables queued for flush, each still owning its WAL
//!   file until the flushed table is in the manifest;
//! * **L0** — tables flushed from memtables; may overlap, read newest-first;
//! * **L1..Lmax** — sorted non-overlapping runs with exponentially growing
//!   byte targets (`level_base_bytes * level_multiplier^(i-1)`).
//!
//! Flushes and compactions run on a background worker draining an
//! [`argos::Pool`] (flush jobs at higher priority), so the write path never
//! merges tables inside a lock. When L0 builds up faster than compaction
//! drains it, writers first soft-stall (bounded wait) and then shed with
//! [`DbError::Busy`], mirroring the service-level watermark machinery so
//! overload degrades gracefully end to end.
//!
//! Durability protocol: SSTs are built at `<id>.sst.tmp` and renamed into
//! place (parent dir fsynced); the plain-text `MANIFEST` is replaced via
//! atomic rename; WAL files are deleted only after the tables covering them
//! are in the manifest. `open` replays surviving WALs in id order and
//! removes `*.tmp` files and unreferenced tables left by a crash.

use crate::cache::{CacheStats, ShardedReadCache};
use crate::levels::{key_span, Levels};
use crate::memtable::{Memtable, Value};
use crate::sstable::{SstError, SstReader, SstWriter};
use crate::wal::{parse_wal_file_name, wal_file_name, Wal, WalRecord};
use argos::{Pool, SchedulingDiscipline};
use parking_lot::{Condvar, Mutex, RwLock};
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// When to fsync the WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalSync {
    /// fsync on every commit (maximum durability, slowest).
    Always,
    /// Group commit: concurrent writers share one fsync — a leader syncs
    /// the log once for every commit sequenced before it.
    Group,
    /// Never fsync from the write path; data reaches the OS on every
    /// commit and the disk on flush/close. Survives process crashes but
    /// not power loss.
    None,
}

impl WalSync {
    /// Parse from config strings.
    pub fn parse(s: &str) -> Option<WalSync> {
        match s {
            "always" => Some(WalSync::Always),
            "group" => Some(WalSync::Group),
            "none" => Some(WalSync::None),
            _ => None,
        }
    }
}

/// Where compaction work runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionMode {
    /// Flush + compact synchronously on the writing thread after a commit
    /// crosses a trigger (the pre-leveling behavior; useful as a bench
    /// baseline and for deterministic tests).
    Inline,
    /// Flush + compact on the background worker; the write path only
    /// freezes memtables and enqueues work.
    Background,
}

/// Tuning knobs for a [`Db`].
#[derive(Debug, Clone)]
pub struct Options {
    /// Memtable size that freezes it for flushing.
    pub memtable_bytes: usize,
    /// L0 table count at which compaction score reaches 1.0.
    pub l0_compaction_trigger: usize,
    /// L0 table count at which writers soft-stall (bounded wait).
    pub l0_slowdown_trigger: usize,
    /// L0 table count at which writers shed with [`DbError::Busy`].
    pub l0_stop_trigger: usize,
    /// Longest a writer will soft-stall before proceeding anyway.
    pub max_stall: Duration,
    /// Retry hint carried by [`DbError::Busy`].
    pub retry_after_hint: Duration,
    /// Number of levels (L0 plus `max_levels - 1` sorted runs).
    pub max_levels: usize,
    /// Byte target of L1; deeper levels multiply by `level_multiplier`.
    pub level_base_bytes: u64,
    /// Growth factor between consecutive level targets.
    pub level_multiplier: u64,
    /// Target size of each compaction output table (key-range partition).
    pub table_target_bytes: usize,
    /// Output tables are also cut when their grandparent-level overlap
    /// exceeds this, bounding future compaction fan-in; single-table
    /// inputs under this limit with no parent overlap move down trivially.
    pub grandparent_limit_bytes: u64,
    /// WAL fsync policy.
    pub wal_sync: WalSync,
    /// Inline or background compaction.
    pub compaction: CompactionMode,
    /// Bloom filter density.
    pub bloom_bits_per_key: usize,
    /// Byte budget of the read (value) cache; `0` disables it.
    pub read_cache_bytes: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            memtable_bytes: 4 << 20,
            l0_compaction_trigger: 4,
            l0_slowdown_trigger: 8,
            l0_stop_trigger: 16,
            max_stall: Duration::from_millis(50),
            retry_after_hint: Duration::from_millis(10),
            max_levels: 5,
            level_base_bytes: 16 << 20,
            level_multiplier: 10,
            table_target_bytes: 4 << 20,
            grandparent_limit_bytes: 40 << 20,
            wal_sync: WalSync::None,
            compaction: CompactionMode::Background,
            bloom_bits_per_key: 10,
            read_cache_bytes: 0,
        }
    }
}

/// Errors from database operations.
#[derive(Debug)]
pub enum DbError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// An SSTable was corrupt or unreadable.
    Sst(SstError),
    /// The manifest references a missing file or is malformed.
    Manifest(String),
    /// Write shed: L0 is at the stop trigger and compaction has not caught
    /// up. The client should back off for `retry_after` and retry — this is
    /// the storage-level twin of the service watermark `Busy`.
    Busy {
        /// Suggested backoff before retrying.
        retry_after: Duration,
    },
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "db io error: {e}"),
            DbError::Sst(e) => write!(f, "db sstable error: {e}"),
            DbError::Manifest(m) => write!(f, "db manifest error: {m}"),
            DbError::Busy { retry_after } => {
                write!(f, "db busy (L0 full): retry after {retry_after:?}")
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

impl From<SstError> for DbError {
    fn from(e: SstError) -> Self {
        DbError::Sst(e)
    }
}

/// An owned key/value pair as returned by scans.
pub type KeyValue = (Vec<u8>, Vec<u8>);

/// One iterator source feeding the k-way merge.
type MergeSource = Box<dyn Iterator<Item = (Vec<u8>, Value)>>;

/// A batch of writes applied atomically (single lock acquisition, single WAL
/// flush). This is what Yokan's `put_multi` maps onto.
#[derive(Debug, Default, Clone)]
pub struct WriteBatch {
    ops: Vec<WalRecord>,
}

impl WriteBatch {
    /// Create an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an insertion.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> &mut Self {
        self.ops.push(WalRecord::Put(key.to_vec(), value.to_vec()));
        self
    }

    /// Queue a deletion.
    pub fn delete(&mut self, key: &[u8]) -> &mut Self {
        self.ops.push(WalRecord::Delete(key.to_vec()));
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Operational counters.
#[derive(Debug, Clone, Default)]
pub struct DbStats {
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Merging compactions performed.
    pub compactions: u64,
    /// Compactions satisfied by relinking a table down a level (no I/O).
    pub trivial_moves: u64,
    /// Entries currently in the active memtable.
    pub memtable_entries: usize,
    /// Frozen memtables waiting to flush.
    pub imm_memtables: usize,
    /// Live table count per level (index 0 = L0).
    pub level_tables: Vec<usize>,
    /// Live bytes per level.
    pub level_bytes: Vec<u64>,
    /// WAL fsyncs performed (all logs, lifetime of this open).
    pub wal_syncs: u64,
    /// Bytes appended to WALs (lifetime of this open).
    pub wal_bytes: u64,
    /// Writers that soft-stalled on L0 buildup.
    pub write_stalls: u64,
    /// Writers shed with `Busy` at the stop trigger.
    pub write_sheds: u64,
    /// Total time writers spent soft-stalled, in microseconds.
    pub stall_micros: u64,
    /// Per-table filter consultations on the point-read path.
    pub bloom_checks: u64,
    /// Consultations that skipped the table (range or bloom negative).
    pub bloom_negatives: u64,
    /// Tables actually searched on disk by point reads.
    pub sst_point_reads: u64,
    /// Bytes written by memtable flushes.
    pub flush_write_bytes: u64,
    /// Bytes read by merging compactions.
    pub compaction_read_bytes: u64,
    /// Bytes written by merging compactions.
    pub compaction_write_bytes: u64,
    /// Tombstones dropped at the bottom of the tree.
    pub tombstones_dropped: u64,
}

impl DbStats {
    /// Live L0 table count.
    pub fn l0_tables(&self) -> usize {
        self.level_tables.first().copied().unwrap_or(0)
    }

    /// Total live tables across all levels.
    pub fn total_tables(&self) -> usize {
        self.level_tables.iter().sum()
    }

    /// Total live bytes on disk (tables only).
    pub fn disk_bytes(&self) -> u64 {
        self.level_bytes.iter().sum()
    }

    /// Total bytes written to storage (WAL + flush + compaction): the
    /// numerator of write amplification.
    pub fn storage_write_bytes(&self) -> u64 {
        self.wal_bytes + self.flush_write_bytes + self.compaction_write_bytes
    }
}

/// Deterministic crash injection for recovery tests.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Failpoint {
    /// Abort a flush after the table is renamed into place but before the
    /// manifest records it (leaves an orphaned `.sst`).
    FlushBeforeInstall,
    /// Abort a compaction midway through writing outputs (leaves a
    /// dangling `.sst.tmp` plus completed orphan outputs).
    CompactionMidOutput,
    /// Abort a compaction after all outputs are durable but before the
    /// manifest swap (leaves orphaned `.sst` files; inputs stay live).
    CompactionBeforeInstall,
}

fn injected() -> DbError {
    DbError::Io(std::io::Error::other("injected failpoint"))
}

/// A frozen memtable and the WAL file that covers it.
struct ImmEntry {
    mem: Arc<Memtable>,
    wal_id: u64,
}

struct State {
    memtable: Memtable,
    wal: Wal,
    wal_id: u64,
    /// Commit sequence number (group-commit ordering).
    wal_seq: u64,
    /// Frozen memtables, oldest first.
    imm: Vec<ImmEntry>,
    levels: Levels,
    next_file: u64,
    /// WAL byte/sync counters accumulated from rotated-out logs.
    wal_bytes_rotated: u64,
    wal_syncs_rotated: u64,
}

struct GroupState {
    synced_seq: u64,
    leader_active: bool,
}

/// Soft-stall threshold on the frozen-memtable queue.
const IMM_SLOWDOWN: usize = 2;

struct DbInner {
    dir: PathBuf,
    opts: Options,
    state: RwLock<State>,
    cache: Option<ShardedReadCache>,
    /// Serializes flush/compaction executors (background worker vs the
    /// inline `flush`/`compact`/`wait_idle` paths).
    work: Mutex<()>,
    /// The compaction queue: jobs pushed by writers, drained by the worker.
    jobs: Arc<Pool>,
    /// Guards job pushes against the pool closing during shutdown
    /// (`true` = closed).
    sched: Mutex<bool>,
    flush_queued: AtomicBool,
    compact_queued: AtomicBool,
    compaction_paused: AtomicBool,
    shutdown: Arc<AtomicBool>,
    stall_lock: Mutex<()>,
    stall_cv: Condvar,
    group: Mutex<GroupState>,
    group_cv: Condvar,
    bg_error: Mutex<Option<String>>,
    failpoint: Mutex<Option<Failpoint>>,
    // Counters.
    flushes: AtomicU64,
    compactions: AtomicU64,
    trivial_moves: AtomicU64,
    write_stalls: AtomicU64,
    write_sheds: AtomicU64,
    stall_micros: AtomicU64,
    bloom_checks: AtomicU64,
    bloom_negatives: AtomicU64,
    sst_point_reads: AtomicU64,
    flush_write_bytes: AtomicU64,
    compaction_read_bytes: AtomicU64,
    compaction_write_bytes: AtomicU64,
    tombstones_dropped: AtomicU64,
}

/// An LSM-tree key-value database rooted at a directory.
pub struct Db {
    inner: Arc<DbInner>,
    worker: Option<std::thread::JoinHandle<()>>,
}

const FLUSH_PRIO: u8 = 2;
const COMPACT_PRIO: u8 = 1;

impl Db {
    /// Open (creating if needed) a database in `dir`, replaying WALs,
    /// loading the manifest, and removing temp files and orphaned tables
    /// left by a crash.
    pub fn open(dir: &Path, opts: Options) -> Result<Db, DbError> {
        std::fs::create_dir_all(dir)?;
        let manifest = dir.join("MANIFEST");
        let mut entries: Vec<(usize, String)> = Vec::new();
        let mut next_file = 1u64;
        if manifest.exists() {
            let text = std::fs::read_to_string(&manifest)?;
            for line in text.lines() {
                let mut parts = line.split_whitespace();
                match (parts.next(), parts.next()) {
                    (Some("NEXT"), Some(n)) => {
                        next_file = n
                            .parse()
                            .map_err(|_| DbError::Manifest(format!("bad NEXT line: {line}")))?;
                    }
                    (Some(tag), Some(name)) if tag.starts_with('L') => {
                        let level: usize = tag[1..]
                            .parse()
                            .map_err(|_| DbError::Manifest(format!("bad level tag: {line}")))?;
                        entries.push((level, name.to_string()));
                    }
                    (None, _) => {}
                    _ => return Err(DbError::Manifest(format!("bad line: {line}"))),
                }
            }
        }
        // Remove temp files and tables the manifest does not reference —
        // debris from a crash mid-flush or mid-compaction.
        let mut wal_ids: Vec<u64> = Vec::new();
        let mut max_sst_id = 0u64;
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") || name == "wal.new" {
                std::fs::remove_file(entry.path()).ok();
            } else if let Some(stem) = name.strip_suffix(".sst") {
                if !entries.iter().any(|(_, n)| n == &name) {
                    std::fs::remove_file(entry.path()).ok();
                } else if let Ok(id) = stem.parse::<u64>() {
                    max_sst_id = max_sst_id.max(id);
                }
            } else if let Some(id) = parse_wal_file_name(&name) {
                wal_ids.push(id);
            }
        }
        next_file = next_file.max(max_sst_id + 1);
        let mut loaded: Vec<(usize, Arc<SstReader>)> = Vec::with_capacity(entries.len());
        for (level, name) in entries {
            loaded.push((level, Arc::new(SstReader::open(&dir.join(name))?)));
        }
        let levels = Levels::from_manifest(opts.max_levels, loaded);
        // Replay surviving WALs in id order (legacy single-log layout
        // first), funnel everything into one fresh memtable + log, then
        // retire the old logs.
        wal_ids.sort_unstable();
        let mut replayed: Vec<WalRecord> = Vec::new();
        let legacy = dir.join("wal.log");
        if legacy.exists() {
            replayed.extend(Wal::replay(&legacy)?);
        }
        for id in &wal_ids {
            replayed.extend(Wal::replay(&dir.join(wal_file_name(*id)))?);
        }
        let new_wal_id = wal_ids.last().copied().unwrap_or(0) + 1;
        let mut memtable = Memtable::new();
        let mut wal = Wal::create(&dir.join(wal_file_name(new_wal_id)))?;
        for rec in &replayed {
            wal.append(rec)?;
            match rec {
                WalRecord::Put(k, v) => memtable.put(k, v),
                WalRecord::Delete(k) => memtable.delete(k),
            }
        }
        wal.sync()?;
        if legacy.exists() {
            std::fs::remove_file(&legacy).ok();
        }
        for id in &wal_ids {
            std::fs::remove_file(dir.join(wal_file_name(*id))).ok();
        }
        let cache = if opts.read_cache_bytes > 0 {
            Some(ShardedReadCache::new(opts.read_cache_bytes))
        } else {
            None
        };
        let background = opts.compaction == CompactionMode::Background;
        let inner = Arc::new(DbInner {
            dir: dir.to_path_buf(),
            opts,
            state: RwLock::new(State {
                memtable,
                wal,
                wal_id: new_wal_id,
                wal_seq: 0,
                imm: Vec::new(),
                levels,
                next_file,
                wal_bytes_rotated: 0,
                wal_syncs_rotated: 0,
            }),
            cache,
            work: Mutex::new(()),
            jobs: Arc::new(Pool::new("lsm-compaction", SchedulingDiscipline::Priority)),
            sched: Mutex::new(false),
            flush_queued: AtomicBool::new(false),
            compact_queued: AtomicBool::new(false),
            compaction_paused: AtomicBool::new(false),
            shutdown: Arc::new(AtomicBool::new(false)),
            stall_lock: Mutex::new(()),
            stall_cv: Condvar::new(),
            group: Mutex::new(GroupState {
                synced_seq: 0,
                leader_active: false,
            }),
            group_cv: Condvar::new(),
            bg_error: Mutex::new(None),
            failpoint: Mutex::new(None),
            flushes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            trivial_moves: AtomicU64::new(0),
            write_stalls: AtomicU64::new(0),
            write_sheds: AtomicU64::new(0),
            stall_micros: AtomicU64::new(0),
            bloom_checks: AtomicU64::new(0),
            bloom_negatives: AtomicU64::new(0),
            sst_point_reads: AtomicU64::new(0),
            flush_write_bytes: AtomicU64::new(0),
            compaction_read_bytes: AtomicU64::new(0),
            compaction_write_bytes: AtomicU64::new(0),
            tombstones_dropped: AtomicU64::new(0),
        });
        let worker = if background {
            let jobs = Arc::clone(&inner.jobs);
            let shutdown = Arc::clone(&inner.shutdown);
            Some(
                std::thread::Builder::new()
                    .name("lsm-worker".into())
                    .spawn(move || loop {
                        match jobs.pop_timeout(Duration::from_millis(100)) {
                            Some(task) => task(),
                            None => {
                                if shutdown.load(Ordering::SeqCst) {
                                    break;
                                }
                            }
                        }
                    })?,
            )
        } else {
            None
        };
        // A reopened database may already be over its triggers.
        if background {
            let needs = {
                let st = inner.state.read();
                st.levels.max_score(&inner.opts) >= 1.0
            };
            if needs {
                inner.schedule_compact();
            }
        }
        Ok(Db { inner, worker })
    }

    /// Insert or overwrite a key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), DbError> {
        self.inner
            .commit(&[WalRecord::Put(key.to_vec(), value.to_vec())])
    }

    /// Delete a key (idempotent).
    pub fn delete(&self, key: &[u8]) -> Result<(), DbError> {
        self.inner.commit(&[WalRecord::Delete(key.to_vec())])
    }

    /// Apply a batch atomically.
    pub fn write(&self, batch: &WriteBatch) -> Result<(), DbError> {
        if batch.ops.is_empty() {
            return Ok(());
        }
        self.inner.commit(&batch.ops)
    }

    /// Atomically insert `value` unless `key` already exists; returns the
    /// existing value if there is one (and writes nothing). Concurrent
    /// creators race on this, so the check and insert share one write lock.
    pub fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        self.inner.put_if_absent(key, value)
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        self.inner.get(key)
    }

    /// Whether the key exists.
    pub fn contains(&self, key: &[u8]) -> Result<bool, DbError> {
        Ok(self.inner.get(key)?.is_some())
    }

    /// Collect up to `limit` live entries with key `>= lower` and
    /// (optionally) `< upper`, in sorted key order. `limit = 0` means
    /// unlimited. This is the primitive behind Yokan's `list_keys` /
    /// `list_keyvals`.
    pub fn scan(
        &self,
        lower: &[u8],
        upper: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<KeyValue>, DbError> {
        self.inner.scan(lower, upper, limit)
    }

    /// Count live entries in `[lower, upper)` (full scan; use sparingly).
    pub fn count_range(&self, lower: &[u8], upper: Option<&[u8]>) -> Result<usize, DbError> {
        Ok(self.inner.scan(lower, upper, 0)?.len())
    }

    /// Freeze the memtable (if non-empty) and flush every frozen memtable
    /// to L0 before returning.
    pub fn flush(&self) -> Result<(), DbError> {
        self.inner.flush_sync()
    }

    /// Targeted major compaction: flush, then repeatedly compact the
    /// neediest level until every compaction score is below 1.0. Leveling
    /// is preserved — this does **not** collapse the tree.
    pub fn compact(&self) -> Result<(), DbError> {
        self.inner.flush_sync()?;
        let _g = self.inner.work.lock();
        while self.inner.compact_once(None)? {}
        Ok(())
    }

    /// Compact one round of `level` into `level + 1` regardless of score
    /// (no-op on an empty or bottom level).
    pub fn compact_level(&self, level: usize) -> Result<(), DbError> {
        let _g = self.inner.work.lock();
        self.inner.compact_once(Some(level))?;
        Ok(())
    }

    /// Escape hatch for tests and benchmarks: flush, then push **every**
    /// table down until all data sits in a single sorted bottom-level run
    /// (tombstones fully dropped).
    pub fn compact_all(&self) -> Result<(), DbError> {
        self.inner.flush_sync()?;
        let _g = self.inner.work.lock();
        let n = {
            let st = self.inner.state.read();
            st.levels.num_levels()
        };
        for level in 0..n.saturating_sub(1) {
            loop {
                let empty = {
                    let st = self.inner.state.read();
                    st.levels.level(level).is_empty()
                };
                if empty {
                    break;
                }
                self.inner.compact_once(Some(level))?;
            }
        }
        Ok(())
    }

    /// Drain all pending flush and compaction work synchronously; returns
    /// once every frozen memtable is flushed and every level scores below
    /// 1.0. Background errors recorded by the worker surface here.
    pub fn wait_idle(&self) -> Result<(), DbError> {
        loop {
            {
                let _g = self.inner.work.lock();
                while self.inner.flush_one()? {}
                while self.inner.compact_once(None)? {}
            }
            if let Some(msg) = self.inner.bg_error.lock().take() {
                return Err(DbError::Io(std::io::Error::other(msg)));
            }
            let st = self.inner.state.read();
            if st.imm.is_empty()
                && (self.inner.compaction_paused.load(Ordering::SeqCst)
                    || st.levels.max_score(&self.inner.opts) < 1.0)
            {
                return Ok(());
            }
        }
    }

    /// Operational counters.
    pub fn stats(&self) -> DbStats {
        self.inner.stats()
    }

    /// `(hits, misses)` of the read cache (zeros when disabled).
    pub fn cache_stats(&self) -> (u64, u64) {
        match &self.inner.cache {
            Some(c) => c.hit_miss(),
            None => (0, 0),
        }
    }

    /// Full per-shard read-cache counters (all zeros when the cache is
    /// disabled).
    pub fn read_cache_stats(&self) -> CacheStats {
        match &self.inner.cache {
            Some(c) => c.stats(),
            None => CacheStats::default(),
        }
    }

    /// Last error recorded by the background worker, if any (cleared).
    pub fn take_background_error(&self) -> Option<String> {
        self.inner.bg_error.lock().take()
    }

    #[doc(hidden)]
    pub fn set_failpoint(&self, fp: Failpoint) {
        *self.inner.failpoint.lock() = Some(fp);
    }

    #[doc(hidden)]
    pub fn pause_compaction(&self, paused: bool) {
        self.inner.compaction_paused.store(paused, Ordering::SeqCst);
    }
}

impl Drop for Db {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            let mut closed = self.inner.sched.lock();
            *closed = true;
            self.inner.jobs.close();
        }
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
        // Push the WAL tail toward the disk on clean shutdown.
        let mut st = self.inner.state.write();
        let _ = match self.inner.opts.wal_sync {
            WalSync::Always | WalSync::Group => st.wal.sync(),
            WalSync::None => st.wal.flush(),
        };
    }
}

impl DbInner {
    fn sst_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("{id:08}.sst"))
    }

    fn tmp_sst_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("{id:08}.sst.tmp"))
    }

    fn wal_path(&self, id: u64) -> PathBuf {
        self.dir.join(wal_file_name(id))
    }

    fn take_failpoint(&self, fp: Failpoint) -> bool {
        let mut g = self.failpoint.lock();
        if *g == Some(fp) {
            *g = None;
            true
        } else {
            false
        }
    }

    fn background(&self) -> bool {
        self.opts.compaction == CompactionMode::Background
    }

    // ---- write path -----------------------------------------------------

    fn commit(self: &Arc<Self>, ops: &[WalRecord]) -> Result<(), DbError> {
        self.gate()?;
        let seq = {
            let mut st = self.state.write();
            self.apply_locked(&mut st, ops)?
        };
        self.after_commit(seq)
    }

    fn put_if_absent(
        self: &Arc<Self>,
        key: &[u8],
        value: &[u8],
    ) -> Result<Option<Vec<u8>>, DbError> {
        self.gate()?;
        let seq = {
            let mut st = self.state.write();
            if let Some(v) = self.lookup_no_cache(&st, key)? {
                return Ok(Some(v));
            }
            self.apply_locked(&mut st, &[WalRecord::Put(key.to_vec(), value.to_vec())])?
        };
        self.after_commit(seq)?;
        Ok(None)
    }

    /// Append + apply one commit under the held write lock; returns its
    /// sequence number for group commit.
    fn apply_locked(self: &Arc<Self>, st: &mut State, ops: &[WalRecord]) -> Result<u64, DbError> {
        for op in ops {
            st.wal.append(op)?;
        }
        match self.opts.wal_sync {
            WalSync::Always => st.wal.sync()?,
            WalSync::None => st.wal.flush()?,
            WalSync::Group => {}
        }
        for op in ops {
            match op {
                WalRecord::Put(k, v) => st.memtable.put(k, v),
                WalRecord::Delete(k) => st.memtable.delete(k),
            }
            if let Some(c) = &self.cache {
                let key = match op {
                    WalRecord::Put(k, _) | WalRecord::Delete(k) => k,
                };
                c.invalidate(key);
            }
        }
        st.wal_seq += 1;
        let seq = st.wal_seq;
        if st.memtable.approx_bytes() >= self.opts.memtable_bytes {
            self.freeze(st)?;
        }
        Ok(seq)
    }

    fn after_commit(self: &Arc<Self>, seq: u64) -> Result<(), DbError> {
        if self.opts.wal_sync == WalSync::Group {
            self.group_commit(seq)?;
        }
        if !self.background() {
            let pending = {
                let st = self.state.read();
                !st.imm.is_empty() || st.levels.max_score(&self.opts) >= 1.0
            };
            if pending {
                let _g = self.work.lock();
                while self.flush_one()? {}
                if !self.compaction_paused.load(Ordering::SeqCst) {
                    while self.compact_once(None)? {}
                }
            }
        }
        Ok(())
    }

    /// Admission gate for writers: shed at the L0 stop trigger, bounded
    /// soft-stall at the slowdown trigger or when flushes fall behind.
    /// Inline mode skips it — the writer is about to do the compaction
    /// itself.
    fn gate(&self) -> Result<(), DbError> {
        if !self.background() {
            return Ok(());
        }
        let (l0, imm) = {
            let st = self.state.read();
            (st.levels.level(0).len(), st.imm.len())
        };
        if l0 >= self.opts.l0_stop_trigger {
            self.write_sheds.fetch_add(1, Ordering::Relaxed);
            return Err(DbError::Busy {
                retry_after: self.opts.retry_after_hint,
            });
        }
        if l0 < self.opts.l0_slowdown_trigger && imm < IMM_SLOWDOWN {
            return Ok(());
        }
        // Soft stall: wait (bounded) for background progress.
        self.write_stalls.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        {
            let mut g = self.stall_lock.lock();
            while t0.elapsed() < self.opts.max_stall {
                let (l0, imm) = {
                    let st = self.state.read();
                    (st.levels.level(0).len(), st.imm.len())
                };
                if l0 < self.opts.l0_slowdown_trigger && imm < IMM_SLOWDOWN {
                    break;
                }
                let remaining = self.opts.max_stall.saturating_sub(t0.elapsed());
                self.stall_cv.wait_for(&mut g, remaining);
            }
        }
        self.stall_micros
            .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        // Re-check the hard limit after the stall.
        let l0 = self.state.read().levels.level(0).len();
        if l0 >= self.opts.l0_stop_trigger {
            self.write_sheds.fetch_add(1, Ordering::Relaxed);
            return Err(DbError::Busy {
                retry_after: self.opts.retry_after_hint,
            });
        }
        Ok(())
    }

    /// Rotate the active memtable into the frozen queue with a fresh WAL.
    /// Caller holds the state write lock.
    fn freeze(self: &Arc<Self>, st: &mut State) -> Result<(), DbError> {
        if st.memtable.is_empty() {
            return Ok(());
        }
        // The outgoing log must be fully on disk (or at the OS) before its
        // memtable leaves the write path.
        match self.opts.wal_sync {
            WalSync::Group => {
                st.wal.sync()?;
                let synced = st.wal_seq;
                let mut g = self.group.lock();
                g.synced_seq = g.synced_seq.max(synced);
                drop(g);
                self.group_cv.notify_all();
            }
            WalSync::Always => {}
            WalSync::None => st.wal.flush()?,
        }
        st.wal_bytes_rotated += st.wal.bytes_written();
        st.wal_syncs_rotated += st.wal.syncs();
        let old_wal_id = st.wal_id;
        let frozen = std::mem::replace(&mut st.memtable, Memtable::new());
        st.imm.push(ImmEntry {
            mem: Arc::new(frozen),
            wal_id: old_wal_id,
        });
        st.wal_id += 1;
        st.wal = Wal::create(&self.wal_path(st.wal_id))?;
        if self.background() {
            self.schedule_flush();
        }
        Ok(())
    }

    /// Group commit: wait until an fsync covering `my_seq` has happened,
    /// electing ourselves leader if nobody is syncing.
    fn group_commit(&self, my_seq: u64) -> Result<(), DbError> {
        let mut g = self.group.lock();
        loop {
            if g.synced_seq >= my_seq {
                return Ok(());
            }
            if !g.leader_active {
                g.leader_active = true;
                drop(g);
                // Leader: one fsync covers every commit sequenced so far.
                // The group mutex is NOT held here, so the state lock is
                // safe to take (no lock-order cycle with `freeze`).
                let result: Result<u64, DbError> = (|| {
                    let mut st = self.state.write();
                    let covered = st.wal_seq;
                    st.wal.sync()?;
                    Ok(covered)
                })();
                g = self.group.lock();
                g.leader_active = false;
                match result {
                    Ok(covered) => {
                        g.synced_seq = g.synced_seq.max(covered);
                        drop(g);
                        self.group_cv.notify_all();
                        return Ok(());
                    }
                    Err(e) => {
                        drop(g);
                        self.group_cv.notify_all();
                        return Err(e);
                    }
                }
            }
            self.group_cv.wait(&mut g);
        }
    }

    // ---- background scheduling ------------------------------------------

    fn schedule_flush(self: &Arc<Self>) {
        if self.flush_queued.swap(true, Ordering::SeqCst) {
            return;
        }
        let weak = Arc::downgrade(self);
        self.push_job(
            Box::new(move || DbInner::flush_job(&weak)),
            FLUSH_PRIO,
            &self.flush_queued,
        );
    }

    fn schedule_compact(self: &Arc<Self>) {
        if self.compact_queued.swap(true, Ordering::SeqCst) {
            return;
        }
        let weak = Arc::downgrade(self);
        self.push_job(
            Box::new(move || DbInner::compact_job(&weak)),
            COMPACT_PRIO,
            &self.compact_queued,
        );
    }

    fn push_job(&self, job: argos::Task, prio: u8, flag: &AtomicBool) {
        let closed = self.sched.lock();
        if *closed {
            flag.store(false, Ordering::SeqCst);
            return;
        }
        self.jobs.push_prio(job, prio);
    }

    fn flush_job(weak: &Weak<DbInner>) {
        let Some(db) = weak.upgrade() else { return };
        db.flush_queued.store(false, Ordering::SeqCst);
        let result = (|| -> Result<(), DbError> {
            let _g = db.work.lock();
            while db.flush_one()? {}
            Ok(())
        })();
        if let Err(e) = result {
            *db.bg_error.lock() = Some(e.to_string());
            return;
        }
        let needs = {
            let st = db.state.read();
            st.levels.max_score(&db.opts) >= 1.0
        };
        if needs {
            db.schedule_compact();
        }
    }

    fn compact_job(weak: &Weak<DbInner>) {
        let Some(db) = weak.upgrade() else { return };
        db.compact_queued.store(false, Ordering::SeqCst);
        let result = (|| -> Result<(), DbError> {
            let _g = db.work.lock();
            while db.compact_once(None)? {}
            Ok(())
        })();
        if let Err(e) = result {
            *db.bg_error.lock() = Some(e.to_string());
        }
    }

    /// Flush + drain used by `Db::flush` and the inline paths.
    fn flush_sync(self: &Arc<Self>) -> Result<(), DbError> {
        {
            let mut st = self.state.write();
            self.freeze(&mut st)?;
        }
        let _g = self.work.lock();
        while self.flush_one()? {}
        Ok(())
    }

    // ---- flush / compaction executors (caller holds `work`) -------------

    /// Flush the oldest frozen memtable to L0; `Ok(false)` when none.
    fn flush_one(&self) -> Result<bool, DbError> {
        let (mem, wal_id, final_path, tmp_path) = {
            let mut st = self.state.write();
            let Some(entry) = st.imm.first() else {
                return Ok(false);
            };
            let mem = Arc::clone(&entry.mem);
            let wal_id = entry.wal_id;
            let id = st.next_file;
            st.next_file += 1;
            (mem, wal_id, self.sst_path(id), self.tmp_sst_path(id))
        };
        // Build the table off-lock: the frozen memtable is immutable.
        let mut w = SstWriter::create(&tmp_path, self.opts.bloom_bits_per_key)?;
        for (k, v) in mem.iter() {
            w.add(k, v)?;
        }
        let reader = Arc::new(w.finish_to(&final_path)?);
        self.flush_write_bytes
            .fetch_add(reader.file_size(), Ordering::Relaxed);
        if self.take_failpoint(Failpoint::FlushBeforeInstall) {
            return Err(injected());
        }
        {
            let mut st = self.state.write();
            st.levels.push_l0(reader);
            st.imm.remove(0);
            self.write_manifest(&st)?;
        }
        // The WAL covering this memtable is no longer needed.
        std::fs::remove_file(self.wal_path(wal_id)).ok();
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.notify_progress();
        Ok(true)
    }

    /// Run one compaction: the neediest level (score ≥ 1.0), or `forced`
    /// regardless of score. `Ok(false)` when there is nothing to do.
    fn compact_once(&self, forced: Option<usize>) -> Result<bool, DbError> {
        if forced.is_none() && self.compaction_paused.load(Ordering::SeqCst) {
            return Ok(false);
        }
        let pick = {
            let st = self.state.read();
            match forced {
                Some(level) => {
                    if level + 1 >= st.levels.num_levels() || st.levels.level(level).is_empty() {
                        None
                    } else {
                        Some(st.levels.pick_level(level, &self.opts))
                    }
                }
                None => st.levels.pick(&self.opts),
            }
        };
        let Some(pick) = pick else {
            return Ok(false);
        };
        let target = pick.from + 1;
        let (in_min, in_max) = key_span(&pick.inputs);
        if pick.trivial {
            // Relink the table one level down — no I/O beyond the manifest.
            let moved = Arc::clone(&pick.inputs[0]);
            let mut st = self.state.write();
            st.levels.remove(pick.from, &pick.inputs);
            st.levels.insert_sorted(target, vec![moved]);
            if pick.from >= 1 {
                st.levels.advance_cursor(pick.from, &in_max);
            }
            self.write_manifest(&st)?;
            drop(st);
            self.trivial_moves.fetch_add(1, Ordering::Relaxed);
            self.notify_progress();
            return Ok(true);
        }
        let read_bytes: u64 = pick
            .inputs
            .iter()
            .chain(pick.overlaps.iter())
            .map(|t| t.file_size())
            .sum();
        self.compaction_read_bytes
            .fetch_add(read_bytes, Ordering::Relaxed);
        // Snapshot grandparent overlaps for output cutting. Only the
        // executor mutates levels ≥ 1, so this stays valid off-lock.
        let grandparents: Vec<(Vec<u8>, u64)> = {
            let st = self.state.read();
            st.levels
                .overlapping(target + 1, &in_min, &in_max)
                .iter()
                .map(|t| (t.min_key().to_vec(), t.file_size()))
                .collect()
        };
        // Merge inputs (newest-first for L0 precedence) with the overlap
        // set from the target level.
        let mut sources: Vec<MergeSource> = Vec::new();
        if pick.from == 0 {
            for t in pick.inputs.iter().rev() {
                sources.push(Box::new(t.iter_all()?));
            }
        } else {
            for t in &pick.inputs {
                sources.push(Box::new(t.iter_all()?));
            }
        }
        for t in &pick.overlaps {
            sources.push(Box::new(t.iter_all()?));
        }
        let mut merged = MergeIter::new(sources);
        let mut outputs: Vec<Arc<SstReader>> = Vec::new();
        let mut writer: Option<(SstWriter, PathBuf)> = None;
        let mut gp_idx = 0usize;
        let mut gp_acc = 0u64;
        while let Some((k, v)) = merged.next_entry() {
            if pick.drop_tombstones && matches!(v, Value::Tombstone) {
                self.tombstones_dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if writer.is_none() {
                let id = {
                    let mut st = self.state.write();
                    let id = st.next_file;
                    st.next_file += 1;
                    id
                };
                writer = Some((
                    SstWriter::create(&self.tmp_sst_path(id), self.opts.bloom_bits_per_key)?,
                    self.sst_path(id),
                ));
            }
            let (w, _) = writer.as_mut().expect("writer was just created");
            w.add(&k, &v)?;
            while gp_idx < grandparents.len() && grandparents[gp_idx].0.as_slice() <= k.as_slice() {
                gp_acc += grandparents[gp_idx].1;
                gp_idx += 1;
            }
            if w.data_bytes() >= self.opts.table_target_bytes as u64
                || gp_acc > self.opts.grandparent_limit_bytes
            {
                let (w, final_path) = writer.take().expect("writer present");
                outputs.push(Arc::new(w.finish_to(&final_path)?));
                gp_acc = 0;
                if self.take_failpoint(Failpoint::CompactionMidOutput) {
                    // Simulate dying with a half-written next output.
                    let id = {
                        let mut st = self.state.write();
                        let id = st.next_file;
                        st.next_file += 1;
                        id
                    };
                    std::fs::write(self.tmp_sst_path(id), b"partial garbage")?;
                    return Err(injected());
                }
            }
        }
        if let Some((w, final_path)) = writer {
            outputs.push(Arc::new(w.finish_to(&final_path)?));
        }
        let write_bytes: u64 = outputs.iter().map(|t| t.file_size()).sum();
        if self.take_failpoint(Failpoint::CompactionBeforeInstall) {
            return Err(injected());
        }
        let victims: Vec<PathBuf> = pick
            .inputs
            .iter()
            .chain(pick.overlaps.iter())
            .map(|t| t.path().to_path_buf())
            .collect();
        {
            let mut st = self.state.write();
            st.levels.remove(pick.from, &pick.inputs);
            st.levels.remove(target, &pick.overlaps);
            st.levels.insert_sorted(target, outputs);
            if pick.from >= 1 {
                st.levels.advance_cursor(pick.from, &in_max);
            }
            self.write_manifest(&st)?;
        }
        for p in victims {
            std::fs::remove_file(&p).ok();
        }
        self.compaction_write_bytes
            .fetch_add(write_bytes, Ordering::Relaxed);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.notify_progress();
        Ok(true)
    }

    fn notify_progress(&self) {
        let _g = self.stall_lock.lock();
        self.stall_cv.notify_all();
    }

    fn write_manifest(&self, st: &State) -> Result<(), DbError> {
        let mut text = format!("NEXT {}\n", st.next_file);
        for (level, t) in st.levels.iter_tables() {
            let name = t
                .path()
                .file_name()
                .and_then(|n| n.to_str())
                .ok_or_else(|| DbError::Manifest("bad sst filename".into()))?;
            text.push_str(&format!("L{level} {name}\n"));
        }
        let tmp = self.dir.join("MANIFEST.tmp");
        std::fs::write(&tmp, &text)?;
        std::fs::rename(&tmp, self.dir.join("MANIFEST"))?;
        crate::sstable::sync_dir(&self.dir.join("MANIFEST"))?;
        Ok(())
    }

    // ---- read path ------------------------------------------------------

    /// Memtable + frozen-memtable lookup (newest first).
    fn mem_lookup(st: &State, key: &[u8]) -> Option<Value> {
        if let Some(v) = st.memtable.get(key) {
            return Some(v.clone());
        }
        for entry in st.imm.iter().rev() {
            if let Some(v) = entry.mem.get(key) {
                return Some(v.clone());
            }
        }
        None
    }

    /// Table lookup across every level, bloom-gated, newest-first.
    fn table_lookup(&self, st: &State, key: &[u8]) -> Result<Option<Value>, DbError> {
        for sst in st.levels.level(0).iter().rev() {
            self.bloom_checks.fetch_add(1, Ordering::Relaxed);
            if !sst.may_contain(key) {
                self.bloom_negatives.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.sst_point_reads.fetch_add(1, Ordering::Relaxed);
            if let Some(v) = sst.get(key)? {
                return Ok(Some(v));
            }
        }
        for level in 1..st.levels.num_levels() {
            let Some(sst) = st.levels.find(level, key) else {
                continue;
            };
            self.bloom_checks.fetch_add(1, Ordering::Relaxed);
            if !sst.may_contain(key) {
                self.bloom_negatives.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            self.sst_point_reads.fetch_add(1, Ordering::Relaxed);
            if let Some(v) = sst.get(key)? {
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    /// Full lookup without read-cache involvement (used under write locks).
    fn lookup_no_cache(&self, st: &State, key: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        if let Some(v) = Self::mem_lookup(st, key) {
            return Ok(match v {
                Value::Put(data) => Some(data),
                Value::Tombstone => None,
            });
        }
        Ok(match self.table_lookup(st, key)? {
            Some(Value::Put(data)) => Some(data),
            _ => None,
        })
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        let st = self.state.read();
        if let Some(v) = Self::mem_lookup(&st, key) {
            return Ok(match v {
                Value::Put(data) => Some(data),
                Value::Tombstone => None,
            });
        }
        // Not in a write buffer: the read cache may serve it without
        // touching any table.
        if let Some(c) = &self.cache {
            if let Some(v) = c.get(key) {
                return Ok(Some(v));
            }
        }
        match self.table_lookup(&st, key)? {
            Some(Value::Put(data)) => {
                if let Some(c) = &self.cache {
                    c.insert(key, &data);
                }
                Ok(Some(data))
            }
            _ => Ok(None),
        }
    }

    fn scan(
        &self,
        lower: &[u8],
        upper: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<KeyValue>, DbError> {
        if upper.is_some_and(|u| u <= lower) {
            return Ok(Vec::new());
        }
        let st = self.state.read();
        // Sources in precedence order: memtable, frozen memtables newest
        // first, L0 newest first, then each deeper level (levels are
        // disjoint internally; shallower levels shadow deeper ones).
        let mut sources: Vec<MergeSource> = Vec::new();
        let collect_mem = |mem: &Memtable| {
            mem.range(
                Bound::Included(lower),
                upper.map_or(Bound::Unbounded, Bound::Excluded),
            )
            .map(|(k, v)| (k.to_vec(), v.clone()))
            .collect::<Vec<_>>()
        };
        sources.push(Box::new(collect_mem(&st.memtable).into_iter()));
        for entry in st.imm.iter().rev() {
            sources.push(Box::new(collect_mem(&entry.mem).into_iter()));
        }
        for sst in st.levels.level(0).iter().rev() {
            sources.push(Box::new(sst.iter_range(lower, upper)?));
        }
        for level in 1..st.levels.num_levels() {
            for sst in st.levels.level(level) {
                if upper.is_some_and(|u| sst.min_key() >= u) {
                    continue;
                }
                if sst.entry_count() > 0 && sst.max_key() < lower {
                    continue;
                }
                sources.push(Box::new(sst.iter_range(lower, upper)?));
            }
        }
        drop(st);
        let mut merged = MergeIter::new(sources);
        let mut out = Vec::new();
        while let Some((k, v)) = merged.next_entry() {
            if let Value::Put(data) = v {
                out.push((k, data));
                if limit != 0 && out.len() >= limit {
                    break;
                }
            }
        }
        Ok(out)
    }

    fn stats(&self) -> DbStats {
        let st = self.state.read();
        let n = st.levels.num_levels();
        DbStats {
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            trivial_moves: self.trivial_moves.load(Ordering::Relaxed),
            memtable_entries: st.memtable.len(),
            imm_memtables: st.imm.len(),
            level_tables: (0..n).map(|i| st.levels.level(i).len()).collect(),
            level_bytes: (0..n).map(|i| st.levels.level_bytes(i)).collect(),
            wal_syncs: st.wal_syncs_rotated + st.wal.syncs(),
            wal_bytes: st.wal_bytes_rotated + st.wal.bytes_written(),
            write_stalls: self.write_stalls.load(Ordering::Relaxed),
            write_sheds: self.write_sheds.load(Ordering::Relaxed),
            stall_micros: self.stall_micros.load(Ordering::Relaxed),
            bloom_checks: self.bloom_checks.load(Ordering::Relaxed),
            bloom_negatives: self.bloom_negatives.load(Ordering::Relaxed),
            sst_point_reads: self.sst_point_reads.load(Ordering::Relaxed),
            flush_write_bytes: self.flush_write_bytes.load(Ordering::Relaxed),
            compaction_read_bytes: self.compaction_read_bytes.load(Ordering::Relaxed),
            compaction_write_bytes: self.compaction_write_bytes.load(Ordering::Relaxed),
            tombstones_dropped: self.tombstones_dropped.load(Ordering::Relaxed),
        }
    }
}

/// K-way merge over precedence-ordered sources (earlier sources win on
/// duplicate keys). Sources must each yield sorted, per-source-unique keys.
struct MergeIter {
    sources: Vec<std::iter::Peekable<MergeSource>>,
}

impl MergeIter {
    fn new(sources: Vec<MergeSource>) -> Self {
        MergeIter {
            sources: sources.into_iter().map(|s| s.peekable()).collect(),
        }
    }

    fn next_entry(&mut self) -> Option<(Vec<u8>, Value)> {
        // Find the smallest key among the heads.
        let mut min_key: Option<Vec<u8>> = None;
        for src in self.sources.iter_mut() {
            if let Some((k, _)) = src.peek() {
                if min_key.as_ref().is_none_or(|m| k < m) {
                    min_key = Some(k.clone());
                }
            }
        }
        let key = min_key?;
        // Take from the highest-precedence source holding that key; advance
        // every other source past it.
        let mut winner: Option<Value> = None;
        for src in self.sources.iter_mut() {
            if src.peek().is_some_and(|(k, _)| k == &key) {
                let (_, v) = src.next().expect("peeked entry must exist");
                if winner.is_none() {
                    winner = Some(v);
                }
            }
        }
        Some((key, winner.expect("at least one source held the key")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "lsmdb-db-{}-{name}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn small_opts() -> Options {
        Options {
            memtable_bytes: 1024,
            l0_compaction_trigger: 3,
            l0_slowdown_trigger: 6,
            l0_stop_trigger: 12,
            max_levels: 4,
            level_base_bytes: 4096,
            level_multiplier: 4,
            table_target_bytes: 4096,
            grandparent_limit_bytes: 16384,
            compaction: CompactionMode::Inline,
            ..Options::default()
        }
    }

    fn bg_opts() -> Options {
        Options {
            compaction: CompactionMode::Background,
            ..small_opts()
        }
    }

    #[test]
    fn put_get_delete_basic() {
        let d = tmpdir("basic");
        let db = Db::open(&d, Options::default()).unwrap();
        db.put(b"k1", b"v1").unwrap();
        assert_eq!(db.get(b"k1").unwrap(), Some(b"v1".to_vec()));
        assert!(db.contains(b"k1").unwrap());
        db.delete(b"k1").unwrap();
        assert_eq!(db.get(b"k1").unwrap(), None);
        assert!(!db.contains(b"k1").unwrap());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn survives_flush_and_compaction() {
        let d = tmpdir("flushcompact");
        let db = Db::open(&d, small_opts()).unwrap();
        let mut model = BTreeMap::new();
        for i in 0..2000u32 {
            let k = format!("key{:06}", i % 700);
            let v = format!("value-{i}");
            db.put(k.as_bytes(), v.as_bytes()).unwrap();
            model.insert(k, v);
        }
        let stats = db.stats();
        assert!(stats.flushes > 0, "expected flushes, got {stats:?}");
        assert!(
            stats.compactions + stats.trivial_moves > 0,
            "expected compactions, got {stats:?}"
        );
        for (k, v) in &model {
            assert_eq!(
                db.get(k.as_bytes()).unwrap(),
                Some(v.clone().into_bytes()),
                "key {k}"
            );
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn background_compaction_catches_up() {
        let d = tmpdir("bg");
        let db = Db::open(&d, bg_opts()).unwrap();
        let mut model = BTreeMap::new();
        for i in 0..2000u32 {
            let k = format!("key{:06}", i % 700);
            let v = format!("value-{i}");
            db.put(k.as_bytes(), v.as_bytes()).unwrap();
            model.insert(k, v);
        }
        db.wait_idle().unwrap();
        let stats = db.stats();
        assert!(stats.flushes > 0, "expected flushes, got {stats:?}");
        assert!(
            stats.compactions + stats.trivial_moves > 0,
            "expected background compactions, got {stats:?}"
        );
        assert!(
            stats.l0_tables() < small_opts().l0_slowdown_trigger,
            "L0 should be drained, got {stats:?}"
        );
        for (k, v) in &model {
            assert_eq!(
                db.get(k.as_bytes()).unwrap(),
                Some(v.clone().into_bytes()),
                "key {k}"
            );
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn data_spreads_over_multiple_levels() {
        let d = tmpdir("deep");
        let opts = Options {
            level_base_bytes: 2048,
            level_multiplier: 2,
            ..small_opts()
        };
        let db = Db::open(&d, opts).unwrap();
        for i in 0..4000u32 {
            db.put(format!("key{i:06}").as_bytes(), &[3u8; 48]).unwrap();
        }
        let stats = db.stats();
        let deep_tables: usize = stats.level_tables.iter().skip(2).sum();
        assert!(
            deep_tables > 0,
            "expected tables below L1, got {:?}",
            stats.level_tables
        );
        for i in (0..4000u32).step_by(37) {
            assert!(
                db.get(format!("key{i:06}").as_bytes()).unwrap().is_some(),
                "key{i:06}"
            );
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn l0_stop_trigger_sheds_with_busy() {
        let d = tmpdir("busy");
        let opts = Options {
            l0_slowdown_trigger: 2,
            l0_stop_trigger: 3,
            max_stall: Duration::from_millis(1),
            ..bg_opts()
        };
        let db = Db::open(&d, opts).unwrap();
        db.pause_compaction(true);
        // Build L0 past the stop trigger via forced flushes (flush_one is
        // not paused, compaction is).
        for round in 0..3 {
            db.put(format!("k{round}").as_bytes(), &[0u8; 64]).unwrap();
            db.flush().unwrap();
        }
        let err = db.put(b"overflow", b"x").unwrap_err();
        match err {
            DbError::Busy { retry_after } => assert!(retry_after > Duration::ZERO),
            other => panic!("expected Busy, got {other:?}"),
        }
        let stats = db.stats();
        assert!(stats.write_sheds > 0, "{stats:?}");
        // Resume compaction: the same write must eventually succeed.
        db.pause_compaction(false);
        db.wait_idle().unwrap();
        db.put(b"overflow", b"x").unwrap();
        assert_eq!(db.get(b"overflow").unwrap(), Some(b"x".to_vec()));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let d = tmpdir("group");
        let opts = Options {
            wal_sync: WalSync::Group,
            ..Options::default()
        };
        let db = Arc::new(Db::open(&d, opts).unwrap());
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        db.put(format!("w{w}-{i:04}").as_bytes(), &[9u8; 32])
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in writers {
            t.join().unwrap();
        }
        let stats = db.stats();
        assert!(stats.wal_syncs > 0, "{stats:?}");
        assert!(
            stats.wal_syncs < 400,
            "group commit should batch fsyncs: {} syncs for 400 commits",
            stats.wal_syncs
        );
        drop(db);
        let db = Db::open(&d, Options::default()).unwrap();
        for w in 0..4 {
            for i in 0..100u32 {
                assert!(
                    db.get(format!("w{w}-{i:04}").as_bytes()).unwrap().is_some(),
                    "w{w}-{i:04}"
                );
            }
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn wal_sync_always_counts_every_commit() {
        let d = tmpdir("always");
        let opts = Options {
            wal_sync: WalSync::Always,
            ..Options::default()
        };
        let db = Db::open(&d, opts).unwrap();
        for i in 0..10u32 {
            db.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        let stats = db.stats();
        assert!(stats.wal_syncs >= 10, "{stats:?}");
        assert!(stats.wal_bytes > 0, "{stats:?}");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn deletes_survive_compaction() {
        let d = tmpdir("delcompact");
        let db = Db::open(&d, small_opts()).unwrap();
        for i in 0..500u32 {
            db.put(format!("k{i:04}").as_bytes(), &[0u8; 16]).unwrap();
        }
        for i in (0..500u32).step_by(2) {
            db.delete(format!("k{i:04}").as_bytes()).unwrap();
        }
        db.compact().unwrap();
        for i in 0..500u32 {
            let got = db.get(format!("k{i:04}").as_bytes()).unwrap();
            if i % 2 == 0 {
                assert_eq!(got, None, "k{i:04} should be deleted");
            } else {
                assert!(got.is_some(), "k{i:04} should exist");
            }
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn compact_all_collapses_to_bottom_level() {
        let d = tmpdir("compactall");
        let db = Db::open(&d, small_opts()).unwrap();
        for i in 0..800u32 {
            db.put(format!("k{i:05}").as_bytes(), &[1u8; 32]).unwrap();
        }
        for i in (0..800u32).step_by(3) {
            db.delete(format!("k{i:05}").as_bytes()).unwrap();
        }
        db.compact_all().unwrap();
        let stats = db.stats();
        let n = stats.level_tables.len();
        for (level, count) in stats.level_tables.iter().enumerate().take(n - 1) {
            assert_eq!(*count, 0, "level {level} should be empty: {stats:?}");
        }
        assert!(stats.level_tables[n - 1] > 0, "{stats:?}");
        assert!(stats.tombstones_dropped > 0, "{stats:?}");
        for i in 0..800u32 {
            let got = db.get(format!("k{i:05}").as_bytes()).unwrap();
            assert_eq!(got.is_some(), i % 3 != 0, "k{i:05}");
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn scan_is_sorted_and_bounded() {
        let d = tmpdir("scan");
        let db = Db::open(&d, small_opts()).unwrap();
        for i in (0..100u32).rev() {
            db.put(format!("k{i:04}").as_bytes(), format!("{i}").as_bytes())
                .unwrap();
        }
        let all = db.scan(b"", None, 0).unwrap();
        assert_eq!(all.len(), 100);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        let bounded = db.scan(b"k0010", Some(b"k0020"), 0).unwrap();
        assert_eq!(bounded.len(), 10);
        assert_eq!(bounded[0].0, b"k0010".to_vec());
        let limited = db.scan(b"", None, 7).unwrap();
        assert_eq!(limited.len(), 7);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn scan_sees_through_levels_with_correct_precedence() {
        let d = tmpdir("scanlevels");
        let db = Db::open(&d, small_opts()).unwrap();
        db.put(b"a", b"old").unwrap();
        db.flush().unwrap();
        db.put(b"a", b"mid").unwrap();
        db.flush().unwrap();
        db.put(b"a", b"new").unwrap(); // memtable
        db.put(b"b", b"1").unwrap();
        db.delete(b"b").unwrap();
        let got = db.scan(b"", None, 0).unwrap();
        assert_eq!(got, vec![(b"a".to_vec(), b"new".to_vec())]);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn write_batch_is_atomic_and_visible() {
        let d = tmpdir("batch");
        let db = Db::open(&d, Options::default()).unwrap();
        let mut batch = WriteBatch::new();
        batch.put(b"x", b"1").put(b"y", b"2").delete(b"x");
        assert_eq!(batch.len(), 3);
        db.write(&batch).unwrap();
        assert_eq!(db.get(b"x").unwrap(), None);
        assert_eq!(db.get(b"y").unwrap(), Some(b"2".to_vec()));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn reopen_recovers_from_wal() {
        let d = tmpdir("walrecover");
        {
            let db = Db::open(&d, Options::default()).unwrap();
            db.put(b"persist", b"me").unwrap();
            db.delete(b"gone").unwrap();
            // Dropped without flush: data only in WAL.
        }
        let db = Db::open(&d, Options::default()).unwrap();
        assert_eq!(db.get(b"persist").unwrap(), Some(b"me".to_vec()));
        assert_eq!(db.get(b"gone").unwrap(), None);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn reopen_recovers_ssts_and_wal_together() {
        let d = tmpdir("fullrecover");
        {
            let db = Db::open(&d, small_opts()).unwrap();
            for i in 0..300u32 {
                db.put(format!("k{i:05}").as_bytes(), &[7u8; 32]).unwrap();
            }
            db.put(b"late", b"write").unwrap();
        }
        let db = Db::open(&d, small_opts()).unwrap();
        for i in 0..300u32 {
            assert!(db.get(format!("k{i:05}").as_bytes()).unwrap().is_some());
        }
        assert_eq!(db.get(b"late").unwrap(), Some(b"write".to_vec()));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn frozen_memtables_survive_crash_via_numbered_wals() {
        let d = tmpdir("immwal");
        {
            // Large trigger thresholds + paused worker: freeze happens but
            // nothing flushes, so data lives only in numbered WALs.
            let opts = Options {
                memtable_bytes: 256,
                max_stall: Duration::from_millis(1),
                ..bg_opts()
            };
            let db = Db::open(&d, opts).unwrap();
            db.pause_compaction(true);
            let _work = db.inner.work.lock(); // block the flush executor
            for i in 0..40u32 {
                db.put(format!("k{i:04}").as_bytes(), &[5u8; 64]).unwrap();
            }
            let stats = db.stats();
            assert!(stats.imm_memtables > 0, "{stats:?}");
            // Simulate a crash: leak the Db so no clean shutdown runs.
            drop(_work);
            std::mem::forget(db);
        }
        let db = Db::open(&d, small_opts()).unwrap();
        for i in 0..40u32 {
            assert!(
                db.get(format!("k{i:04}").as_bytes()).unwrap().is_some(),
                "k{i:04} lost"
            );
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn overwrite_across_reopen() {
        let d = tmpdir("overwrite");
        {
            let db = Db::open(&d, small_opts()).unwrap();
            db.put(b"k", b"v1").unwrap();
            db.flush().unwrap();
            db.put(b"k", b"v2").unwrap();
        }
        let db = Db::open(&d, small_opts()).unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v2".to_vec()));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn count_range() {
        let d = tmpdir("count");
        let db = Db::open(&d, Options::default()).unwrap();
        for i in 0..50u32 {
            db.put(format!("p{i:03}").as_bytes(), b"x").unwrap();
        }
        assert_eq!(db.count_range(b"p", None).unwrap(), 50);
        assert_eq!(db.count_range(b"p010", Some(b"p020")).unwrap(), 10);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn concurrent_readers_during_background_writes() {
        let d = tmpdir("concurrent");
        let db = Arc::new(Db::open(&d, bg_opts()).unwrap());
        let writer = {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..1000u32 {
                    loop {
                        match db.put(format!("k{i:06}").as_bytes(), &[1u8; 64]) {
                            Ok(()) => break,
                            Err(DbError::Busy { retry_after }) => std::thread::sleep(retry_after),
                            Err(e) => panic!("{e}"),
                        }
                    }
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        // Reads may or may not find the key; they must not
                        // error or return torn data.
                        if let Some(v) = db.get(format!("k{i:06}").as_bytes()).unwrap() {
                            assert_eq!(v, vec![1u8; 64]);
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        db.wait_idle().unwrap();
        for i in 0..1000u32 {
            assert!(db.get(format!("k{i:06}").as_bytes()).unwrap().is_some());
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn empty_db_operations() {
        let d = tmpdir("empty");
        let db = Db::open(&d, Options::default()).unwrap();
        assert_eq!(db.get(b"nothing").unwrap(), None);
        assert!(db.scan(b"", None, 0).unwrap().is_empty());
        db.flush().unwrap();
        db.compact().unwrap();
        db.compact_all().unwrap();
        db.wait_idle().unwrap();
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn bloom_counters_move_on_point_reads() {
        let d = tmpdir("bloomctr");
        let db = Db::open(&d, small_opts()).unwrap();
        for i in 0..600u32 {
            db.put(format!("k{i:05}").as_bytes(), &[2u8; 32]).unwrap();
        }
        db.flush().unwrap();
        for _ in 0..50 {
            db.get(b"definitely-absent-key").unwrap();
        }
        let stats = db.stats();
        assert!(stats.bloom_checks > 0, "{stats:?}");
        assert!(stats.bloom_negatives > 0, "{stats:?}");
        std::fs::remove_dir_all(&d).ok();
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lsmdb-cache-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn cached_opts() -> Options {
        Options {
            memtable_bytes: 512,
            read_cache_bytes: 1 << 20,
            compaction: CompactionMode::Inline,
            ..Options::default()
        }
    }

    #[test]
    fn repeated_sst_reads_hit_the_cache() {
        let d = tmpdir("hits");
        let db = Db::open(&d, cached_opts()).unwrap();
        for i in 0..200u64 {
            db.put(&i.to_be_bytes(), &[7u8; 64]).unwrap();
        }
        db.flush().unwrap(); // everything on "disk"
        assert_eq!(db.get(&42u64.to_be_bytes()).unwrap(), Some(vec![7u8; 64]));
        let (h0, m0) = db.cache_stats();
        assert_eq!(db.get(&42u64.to_be_bytes()).unwrap(), Some(vec![7u8; 64]));
        let (h1, m1) = db.cache_stats();
        assert_eq!(h1, h0 + 1, "second read should hit");
        assert_eq!(m1, m0);
        drop(db);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn writes_invalidate_cached_values() {
        let d = tmpdir("invalidate");
        let db = Db::open(&d, cached_opts()).unwrap();
        db.put(b"k", b"v1").unwrap();
        db.flush().unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v1".to_vec())); // fills cache
        db.put(b"k", b"v2").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v2".to_vec()));
        db.flush().unwrap();
        db.delete(b"k").unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
        drop(db);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn batch_writes_invalidate_too() {
        let d = tmpdir("batch");
        let db = Db::open(&d, cached_opts()).unwrap();
        db.put(b"a", b"old").unwrap();
        db.flush().unwrap();
        assert_eq!(db.get(b"a").unwrap(), Some(b"old".to_vec()));
        let mut wb = WriteBatch::new();
        wb.put(b"a", b"new").delete(b"b");
        db.write(&wb).unwrap();
        assert_eq!(db.get(b"a").unwrap(), Some(b"new".to_vec()));
        drop(db);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn disabled_cache_reports_zeros() {
        let d = tmpdir("disabled");
        let db = Db::open(&d, Options::default()).unwrap();
        db.put(b"x", b"y").unwrap();
        db.flush().unwrap();
        db.get(b"x").unwrap();
        db.get(b"x").unwrap();
        assert_eq!(db.cache_stats(), (0, 0));
        drop(db);
        std::fs::remove_dir_all(&d).ok();
    }
}
