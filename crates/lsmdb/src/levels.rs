//! Level metadata and the compaction picker.
//!
//! The table set is organised RocksDB-style:
//!
//! * **L0** — tables flushed straight from memtables; key ranges may
//!   overlap, so reads consult them newest-first and compaction must take
//!   all of them together;
//! * **L1..Lmax** — sorted runs: tables within a level are ordered by
//!   `min_key` and non-overlapping, so a point read touches at most one
//!   table per level.
//!
//! Each level has a dynamic byte target: `target(L1) = level_base_bytes`,
//! `target(Li) = target(Li-1) * level_multiplier`. A level's *compaction
//! score* is `bytes / target` (for L0: `tables / l0_compaction_trigger`);
//! any score ≥ 1.0 makes the level eligible, and the picker always selects
//! the neediest level so background work goes where it relieves the most
//! pressure.
//!
//! For L1+ the picker round-robins through the level's key space with a
//! per-level cursor (the max key of the last compacted input), which
//! spreads write amplification instead of hammering one hot range. When the
//! chosen input has no overlap in the next level and limited overlap in the
//! grandparent level, the compaction degenerates to a *trivial move*: the
//! table is relinked one level down with no I/O at all.

use crate::db::Options;
use crate::sstable::SstReader;
use std::sync::Arc;

/// Whether key ranges `[amin, amax]` and `[bmin, bmax]` intersect.
fn ranges_overlap(amin: &[u8], amax: &[u8], bmin: &[u8], bmax: &[u8]) -> bool {
    amin <= bmax && bmin <= amax
}

/// A compaction selected by the picker. `inputs` come from `from` level,
/// `overlaps` from `from + 1` (the output level). When `trivial` is set the
/// input table can be relinked down without rewriting.
pub(crate) struct Pick {
    pub from: usize,
    pub inputs: Vec<Arc<SstReader>>, // L0: oldest→newest; L1+: single table
    pub overlaps: Vec<Arc<SstReader>>,
    pub drop_tombstones: bool,
    pub trivial: bool,
}

/// The leveled table set plus per-level compaction cursors.
pub(crate) struct Levels {
    /// `tables[0]` is L0 (newest last, may overlap); `tables[i>=1]` are
    /// sorted by `min_key` and disjoint.
    tables: Vec<Vec<Arc<SstReader>>>,
    /// Round-robin cursor per level: max key of the last compacted input.
    cursors: Vec<Vec<u8>>,
}

impl Levels {
    pub fn new(max_levels: usize) -> Levels {
        let n = max_levels.max(2);
        Levels {
            tables: vec![Vec::new(); n],
            cursors: vec![Vec::new(); n],
        }
    }

    /// Rebuild from manifest entries `(level, table)`. Levels ≥ 1 are
    /// sorted by min key; L0 keeps manifest (age) order. Entries at levels
    /// beyond `max_levels` are clamped into the bottom level.
    pub fn from_manifest(max_levels: usize, entries: Vec<(usize, Arc<SstReader>)>) -> Levels {
        let mut lv = Levels::new(max_levels);
        let bottom = lv.tables.len() - 1;
        for (level, t) in entries {
            lv.tables[level.min(bottom)].push(t);
        }
        for level in lv.tables.iter_mut().skip(1) {
            level.sort_by(|a, b| a.min_key().cmp(b.min_key()));
        }
        lv
    }

    pub fn num_levels(&self) -> usize {
        self.tables.len()
    }

    pub fn level(&self, i: usize) -> &[Arc<SstReader>] {
        &self.tables[i]
    }

    /// All `(level, table)` pairs, shallowest first.
    pub fn iter_tables(&self) -> impl Iterator<Item = (usize, &Arc<SstReader>)> {
        self.tables
            .iter()
            .enumerate()
            .flat_map(|(i, ts)| ts.iter().map(move |t| (i, t)))
    }

    pub fn push_l0(&mut self, t: Arc<SstReader>) {
        self.tables[0].push(t);
    }

    pub fn level_bytes(&self, i: usize) -> u64 {
        self.tables[i].iter().map(|t| t.file_size()).sum()
    }

    /// Byte target for level `i >= 1`.
    pub fn target_bytes(i: usize, opts: &Options) -> u64 {
        let mult = opts.level_multiplier.max(2);
        opts.level_base_bytes
            .max(1)
            .saturating_mul(mult.saturating_pow(i.saturating_sub(1) as u32))
    }

    /// Compaction score of level `i`; ≥ 1.0 means eligible. The bottom
    /// level never compacts further down, so it scores 0.
    pub fn score(&self, i: usize, opts: &Options) -> f64 {
        if i + 1 >= self.tables.len() {
            return 0.0;
        }
        if i == 0 {
            self.tables[0].len() as f64 / opts.l0_compaction_trigger.max(1) as f64
        } else {
            self.level_bytes(i) as f64 / Self::target_bytes(i, opts) as f64
        }
    }

    /// Score of the neediest level (the max over all levels).
    pub fn max_score(&self, opts: &Options) -> f64 {
        (0..self.tables.len())
            .map(|i| self.score(i, opts))
            .fold(0.0, f64::max)
    }

    /// Tables in `level` overlapping `[min, max]`, in level order.
    pub fn overlapping(&self, level: usize, min: &[u8], max: &[u8]) -> Vec<Arc<SstReader>> {
        if level >= self.tables.len() {
            return Vec::new();
        }
        self.tables[level]
            .iter()
            .filter(|t| t.entry_count() > 0 && ranges_overlap(t.min_key(), t.max_key(), min, max))
            .cloned()
            .collect()
    }

    /// Total bytes of tables in `level` overlapping `[min, max]`.
    pub fn overlap_bytes(&self, level: usize, min: &[u8], max: &[u8]) -> u64 {
        self.overlapping(level, min, max)
            .iter()
            .map(|t| t.file_size())
            .sum()
    }

    /// Whether every level strictly deeper than `level` is empty (the
    /// tombstone-drop condition for a compaction writing into `level`).
    pub fn empty_below(&self, level: usize) -> bool {
        self.tables.iter().skip(level + 1).all(|ts| ts.is_empty())
    }

    /// Pick the neediest compaction, or `None` when all scores are < 1.0.
    pub fn pick(&self, opts: &Options) -> Option<Pick> {
        let (level, score) = (0..self.tables.len())
            .map(|i| (i, self.score(i, opts)))
            .max_by(|a, b| a.1.total_cmp(&b.1))?;
        if score < 1.0 {
            return None;
        }
        Some(self.pick_level(level, opts))
    }

    /// Build the compaction job for `level` (assumed eligible): inputs,
    /// next-level overlaps, and the trivial-move / tombstone-drop verdicts.
    pub fn pick_level(&self, level: usize, opts: &Options) -> Pick {
        let target = level + 1;
        let inputs: Vec<Arc<SstReader>> = if level == 0 {
            // L0 tables overlap arbitrarily; take them all, oldest first.
            self.tables[0].clone()
        } else {
            vec![self.cursor_candidate(level)]
        };
        let (min, max) = key_span(&inputs);
        let overlaps = self.overlapping(target, &min, &max);
        // A single input with nothing to merge below and bounded grandparent
        // overlap can be relinked down without any I/O. (For L0 the single
        // table is necessarily the oldest, so moving it below newer L0
        // tables preserves precedence.)
        let trivial = inputs.len() == 1
            && overlaps.is_empty()
            && self.overlap_bytes(target + 1, &min, &max) <= opts.grandparent_limit_bytes;
        Pick {
            from: level,
            inputs,
            overlaps,
            drop_tombstones: self.empty_below(target),
            trivial,
        }
    }

    /// The round-robin input for a sorted level: the first table whose max
    /// key is strictly past the level cursor, wrapping to the first table.
    fn cursor_candidate(&self, level: usize) -> Arc<SstReader> {
        let ts = &self.tables[level];
        debug_assert!(!ts.is_empty());
        let cur = &self.cursors[level];
        ts.iter()
            .find(|t| t.max_key() > cur.as_slice())
            .unwrap_or(&ts[0])
            .clone()
    }

    /// Advance the round-robin cursor of `level` past `max_key`.
    pub fn advance_cursor(&mut self, level: usize, max_key: &[u8]) {
        self.cursors[level] = max_key.to_vec();
    }

    /// Remove `victims` (matched by path) from `level`.
    pub fn remove(&mut self, level: usize, victims: &[Arc<SstReader>]) {
        self.tables[level].retain(|t| !victims.iter().any(|v| v.path() == t.path()));
    }

    /// Insert tables into a sorted level (≥ 1), keeping min-key order.
    pub fn insert_sorted(&mut self, level: usize, new_tables: Vec<Arc<SstReader>>) {
        debug_assert!(level >= 1);
        self.tables[level].extend(new_tables);
        self.tables[level].sort_by(|a, b| a.min_key().cmp(b.min_key()));
    }

    /// The single table in a sorted level that may contain `key`.
    pub fn find(&self, level: usize, key: &[u8]) -> Option<&Arc<SstReader>> {
        debug_assert!(level >= 1);
        let ts = &self.tables[level];
        let idx = ts.partition_point(|t| t.max_key() < key);
        ts.get(idx).filter(|t| t.min_key() <= key)
    }
}

/// Combined key span of a non-empty input set.
pub(crate) fn key_span(tables: &[Arc<SstReader>]) -> (Vec<u8>, Vec<u8>) {
    let mut min: Option<&[u8]> = None;
    let mut max: Option<&[u8]> = None;
    for t in tables {
        if t.entry_count() == 0 {
            continue;
        }
        if min.is_none_or(|m| t.min_key() < m) {
            min = Some(t.min_key());
        }
        if max.is_none_or(|m| t.max_key() > m) {
            max = Some(t.max_key());
        }
    }
    (
        min.unwrap_or_default().to_vec(),
        max.unwrap_or_default().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memtable::Value;
    use crate::sstable::SstWriter;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lsmdb-levels-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn table(dir: &std::path::Path, name: &str, keys: &[&str]) -> Arc<SstReader> {
        let mut w = SstWriter::create(&dir.join(name), 10).unwrap();
        for k in keys {
            w.add(k.as_bytes(), &Value::Put(vec![0u8; 64])).unwrap();
        }
        Arc::new(w.finish().unwrap())
    }

    fn test_opts() -> Options {
        Options {
            l0_compaction_trigger: 4,
            level_base_bytes: 1000,
            level_multiplier: 10,
            ..Options::default()
        }
    }

    #[test]
    fn targets_follow_the_multiplier() {
        let opts = test_opts();
        assert_eq!(Levels::target_bytes(1, &opts), 1000);
        assert_eq!(Levels::target_bytes(2, &opts), 10_000);
        assert_eq!(Levels::target_bytes(3, &opts), 100_000);
    }

    #[test]
    fn l0_score_counts_tables() {
        let d = tmpdir("l0score");
        let opts = test_opts();
        let mut lv = Levels::new(3);
        assert_eq!(lv.score(0, &opts), 0.0);
        for i in 0..4 {
            lv.push_l0(table(&d, &format!("{i}.sst"), &["a", "z"]));
        }
        assert!(lv.score(0, &opts) >= 1.0);
        assert_eq!(lv.score(2, &opts), 0.0, "bottom level never scores");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn picker_prefers_neediest_level() {
        let d = tmpdir("pick");
        let opts = test_opts();
        let mut lv = Levels::new(4);
        // L1 barely over target, L0 far over trigger: L0 must win.
        lv.insert_sorted(1, vec![table(&d, "l1.sst", &["m", "n"])]);
        for i in 0..12 {
            lv.push_l0(table(&d, &format!("{i}.sst"), &["a", "z"]));
        }
        let pick = lv.pick(&opts).unwrap();
        assert_eq!(pick.from, 0);
        assert_eq!(pick.inputs.len(), 12);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn overlap_queries() {
        let d = tmpdir("overlap");
        let mut lv = Levels::new(3);
        lv.insert_sorted(1, vec![table(&d, "a.sst", &["a", "f"])]);
        lv.insert_sorted(1, vec![table(&d, "g.sst", &["g", "m"])]);
        lv.insert_sorted(1, vec![table(&d, "n.sst", &["n", "z"])]);
        assert_eq!(lv.overlapping(1, b"b", b"c").len(), 1);
        assert_eq!(lv.overlapping(1, b"f", b"g").len(), 2);
        assert_eq!(lv.overlapping(1, b"aa", b"zz").len(), 3);
        assert!(lv.overlapping(2, b"a", b"z").is_empty());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn trivial_move_detection() {
        let d = tmpdir("trivial");
        let opts = test_opts();
        let mut lv = Levels::new(4);
        // One L1 table, no L2 overlap → trivial.
        lv.insert_sorted(1, vec![table(&d, "solo.sst", &["a", "f"])]);
        let pick = lv.pick_level(1, &opts);
        assert!(pick.trivial);
        // Now give L2 an overlapping table → not trivial.
        lv.insert_sorted(2, vec![table(&d, "l2.sst", &["c", "d"])]);
        let pick = lv.pick_level(1, &opts);
        assert!(!pick.trivial);
        assert_eq!(pick.overlaps.len(), 1);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn tombstone_drop_only_when_nothing_deeper() {
        let d = tmpdir("tomb");
        let opts = test_opts();
        let mut lv = Levels::new(4);
        lv.push_l0(table(&d, "l0.sst", &["a", "z"]));
        // Writing into L1 with empty L2/L3 → may drop tombstones.
        assert!(lv.pick_level(0, &opts).drop_tombstones);
        lv.insert_sorted(3, vec![table(&d, "deep.sst", &["q", "r"])]);
        assert!(!lv.pick_level(0, &opts).drop_tombstones);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn cursor_round_robins_across_the_level() {
        let d = tmpdir("cursor");
        let mut lv = Levels::new(3);
        lv.insert_sorted(1, vec![table(&d, "a.sst", &["a", "c"])]);
        lv.insert_sorted(1, vec![table(&d, "d.sst", &["d", "f"])]);
        lv.insert_sorted(1, vec![table(&d, "g.sst", &["g", "i"])]);
        let first = lv.cursor_candidate(1);
        assert_eq!(first.min_key(), b"a");
        lv.advance_cursor(1, first.max_key());
        let second = lv.cursor_candidate(1);
        assert_eq!(second.min_key(), b"d");
        lv.advance_cursor(1, second.max_key());
        lv.advance_cursor(1, b"z"); // past the end → wraps
        assert_eq!(lv.cursor_candidate(1).min_key(), b"a");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn remove_and_insert_keep_sorted_order() {
        let d = tmpdir("edit");
        let mut lv = Levels::new(3);
        let a = table(&d, "a.sst", &["a", "c"]);
        let g = table(&d, "g.sst", &["g", "i"]);
        lv.insert_sorted(1, vec![g.clone(), a.clone()]);
        assert_eq!(lv.level(1)[0].min_key(), b"a");
        lv.remove(1, std::slice::from_ref(&a));
        assert_eq!(lv.level(1).len(), 1);
        assert_eq!(lv.find(1, b"h").unwrap().path(), g.path());
        assert!(lv.find(1, b"b").is_none());
        std::fs::remove_dir_all(&d).ok();
    }
}
