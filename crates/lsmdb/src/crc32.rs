//! CRC-32 (IEEE 802.3) used to checksum WAL records and SSTable footers.

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
