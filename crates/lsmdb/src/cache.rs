//! Read cache for point lookups — the analogue of RocksDB's block cache.
//!
//! The cache holds recently-read values keyed by user key, bounded by an
//! approximate byte budget with LRU eviction. Writes and deletes invalidate
//! their keys; compaction does not (values are unchanged by it).
//!
//! The cache is **sharded**: the byte budget is split across N independent
//! LRU shards, each behind its own mutex, with keys routed by an FNV-1a hash.
//! `Db::get` runs under a read lock on the tree state, so many reader threads
//! reach the cache concurrently; a single mutex in front of the LRU turns
//! those readers back into a serial stream (every hit mutates LRU order, so a
//! read lock does not help). Sharding restores reader parallelism at the cost
//! of LRU ordering being per-shard rather than global — an accepted trade-off
//! that block caches (RocksDB's `LRUCache` included) make for the same
//! reason. Keys are stored as `Arc<[u8]>` shared between the hash map and the
//! recency index, so touching an entry on a hit updates the LRU order without
//! allocating.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Aggregate counters of a sharded read cache.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the tables.
    pub misses: u64,
    /// Entries removed to make room (does not count invalidations).
    pub evictions: u64,
    /// Live entries across all shards.
    pub entries: usize,
    /// Approximate bytes held across all shards.
    pub used_bytes: usize,
    /// Total configured byte budget.
    pub capacity_bytes: usize,
    /// Live entry count per shard.
    pub shard_entries: Vec<usize>,
    /// Approximate bytes held per shard.
    pub shard_bytes: Vec<usize>,
}

/// Default shard count: `min(16, available parallelism)`, rounded up to a
/// power of two (for mask-based routing), capped at 16.
pub fn default_shard_count() -> usize {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cpus.min(16).next_power_of_two().min(16)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(key: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One LRU shard with its slice of the byte budget.
struct Shard {
    capacity_bytes: usize,
    used_bytes: usize,
    seq: u64,
    /// key -> (value, last-use sequence)
    map: HashMap<Arc<[u8]>, (Vec<u8>, u64)>,
    /// last-use sequence -> key (unique: sequences never repeat)
    order: BTreeMap<u64, Arc<[u8]>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Shard {
    fn new(capacity_bytes: usize) -> Shard {
        Shard {
            capacity_bytes,
            used_bytes: 0,
            seq: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn touch(&mut self, key: &[u8]) {
        if let Some((key_arc, &(_, old_seq))) = self.map.get_key_value(key) {
            let key_arc = Arc::clone(key_arc);
            self.order.remove(&old_seq);
            self.seq += 1;
            self.order.insert(self.seq, key_arc);
            self.map.get_mut(key).expect("key present").1 = self.seq;
        }
    }

    fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        if self.map.contains_key(key) {
            self.touch(key);
            self.hits += 1;
            self.map.get(key).map(|(v, _)| v.clone())
        } else {
            self.misses += 1;
            None
        }
    }

    fn insert(&mut self, key: &[u8], value: &[u8]) {
        let entry_size = key.len() + value.len();
        if entry_size > self.capacity_bytes {
            return; // larger than the whole shard: skip
        }
        self.invalidate(key);
        self.seq += 1;
        let key_arc: Arc<[u8]> = Arc::from(key);
        self.map
            .insert(Arc::clone(&key_arc), (value.to_vec(), self.seq));
        self.order.insert(self.seq, key_arc);
        self.used_bytes += entry_size;
        while self.used_bytes > self.capacity_bytes {
            let Some((&oldest, _)) = self.order.iter().next() else {
                break;
            };
            let victim = self.order.remove(&oldest).expect("entry exists");
            if let Some((v, _)) = self.map.remove(&victim[..]) {
                self.used_bytes -= victim.len() + v.len();
                self.evictions += 1;
            }
        }
    }

    fn invalidate(&mut self, key: &[u8]) {
        if let Some((v, seq)) = self.map.remove(key) {
            self.order.remove(&seq);
            self.used_bytes -= key.len() + v.len();
        }
    }
}

/// An N-way sharded LRU value cache with a split byte budget.
pub struct ShardedReadCache {
    shards: Box<[Mutex<Shard>]>,
    mask: u64,
    capacity_bytes: usize,
}

impl ShardedReadCache {
    /// Create a cache with [`default_shard_count`] shards sharing
    /// `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> ShardedReadCache {
        Self::with_shards(capacity_bytes, default_shard_count())
    }

    /// Create a cache with an explicit shard count (rounded up to a power of
    /// two). Each shard gets `capacity_bytes / shards`.
    pub fn with_shards(capacity_bytes: usize, shards: usize) -> ShardedReadCache {
        let n = shards.max(1).next_power_of_two();
        let per_shard = capacity_bytes / n;
        let shards: Vec<Mutex<Shard>> = (0..n).map(|_| Mutex::new(Shard::new(per_shard))).collect();
        ShardedReadCache {
            shards: shards.into_boxed_slice(),
            mask: (n - 1) as u64,
            capacity_bytes,
        }
    }

    fn shard(&self, key: &[u8]) -> &Mutex<Shard> {
        &self.shards[(fnv1a(key) & self.mask) as usize]
    }

    /// Look a key up, promoting it to most-recently-used on a hit.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.shard(key).lock().get(key)
    }

    /// Insert (or replace) a value. Entries larger than one shard's budget
    /// are skipped.
    pub fn insert(&self, key: &[u8], value: &[u8]) {
        self.shard(key).lock().insert(key, value)
    }

    /// Drop a key if cached (used by the write path).
    pub fn invalidate(&self, key: &[u8]) {
        self.shard(key).lock().invalidate(key)
    }

    /// `(hits, misses)` summed over all shards.
    pub fn hit_miss(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for s in self.shards.iter() {
            let s = s.lock();
            hits += s.hits;
            misses += s.misses;
        }
        (hits, misses)
    }

    /// Full per-shard and aggregate counters.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            capacity_bytes: self.capacity_bytes,
            ..CacheStats::default()
        };
        for s in self.shards.iter() {
            let s = s.lock();
            stats.hits += s.hits;
            stats.misses += s.misses;
            stats.evictions += s.evictions;
            stats.entries += s.map.len();
            stats.used_bytes += s.used_bytes;
            stats.shard_entries.push(s.map.len());
            stats.shard_bytes.push(s.used_bytes);
        }
        stats
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_invalidate() {
        let c = ShardedReadCache::with_shards(1024, 1);
        c.insert(b"a", b"1");
        assert_eq!(c.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(c.get(b"b"), None);
        c.invalidate(b"a");
        assert_eq!(c.get(b"a"), None);
        assert_eq!(c.hit_miss(), (1, 2));
    }

    #[test]
    fn lru_evicts_oldest_first() {
        // Single shard for deterministic ordering; each entry is 2 bytes,
        // capacity 6 = three entries.
        let c = ShardedReadCache::with_shards(6, 1);
        c.insert(b"a", b"1");
        c.insert(b"b", b"2");
        c.insert(b"c", b"3");
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get(b"a").is_some());
        c.insert(b"d", b"4");
        assert_eq!(c.get(b"b"), None, "b should have been evicted");
        assert!(c.get(b"a").is_some());
        assert!(c.get(b"c").is_some());
        assert!(c.get(b"d").is_some());
        assert_eq!(c.stats().entries, 3);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn overwrite_replaces_and_accounts_bytes() {
        let c = ShardedReadCache::with_shards(100, 1);
        c.insert(b"k", b"short");
        c.insert(b"k", b"a much longer value than before");
        assert_eq!(
            c.get(b"k"),
            Some(b"a much longer value than before".to_vec())
        );
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn oversized_entries_are_skipped() {
        let c = ShardedReadCache::with_shards(4, 1);
        c.insert(b"key", b"value-too-big");
        assert_eq!(c.get(b"key"), None);
    }

    #[test]
    fn sharded_budget_splits_across_shards() {
        let c = ShardedReadCache::with_shards(1 << 20, 8);
        assert_eq!(c.shard_count(), 8);
        for i in 0..1000u32 {
            let k = i.to_be_bytes();
            c.insert(&k, &[0u8; 32]);
        }
        let stats = c.stats();
        assert_eq!(stats.entries, 1000);
        assert_eq!(stats.shard_entries.len(), 8);
        assert_eq!(stats.shard_entries.iter().sum::<usize>(), 1000);
        // FNV spreads small integer keys: no shard should be empty.
        assert!(stats.shard_entries.iter().all(|&n| n > 0));
        for i in 0..1000u32 {
            assert!(c.get(&i.to_be_bytes()).is_some());
        }
        assert_eq!(c.hit_miss(), (1000, 0));
    }

    #[test]
    fn concurrent_mixed_access_is_safe_and_counted() {
        let c = Arc::new(ShardedReadCache::with_shards(1 << 20, 8));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..2000u32 {
                        let k = (i % 256).to_be_bytes();
                        match i % 3 {
                            0 => c.insert(&k, &[t as u8; 16]),
                            1 => {
                                let _ = c.get(&k);
                            }
                            _ => c.invalidate(&k),
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = c.stats();
        // Each thread issues exactly 667 gets (i % 3 == 1 for i in 0..2000);
        // every one must be counted exactly once as a hit or a miss.
        assert_eq!(stats.hits + stats.misses, 8 * 667);
        assert!(stats.used_bytes <= stats.capacity_bytes);
    }

    #[test]
    fn default_shard_count_is_bounded_power_of_two() {
        let n = default_shard_count();
        assert!((1..=16).contains(&n));
        assert!(n.is_power_of_two());
    }
}
