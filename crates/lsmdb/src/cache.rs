//! Read cache for point lookups — the analogue of RocksDB's block cache.
//!
//! The cache holds recently-read values keyed by user key, bounded by an
//! approximate byte budget with LRU eviction. Writes and deletes invalidate
//! their keys; compaction does not (values are unchanged by it).

use std::collections::{BTreeMap, HashMap};

/// An LRU value cache with byte-budget eviction.
pub(crate) struct ReadCache {
    capacity_bytes: usize,
    used_bytes: usize,
    seq: u64,
    /// key -> (value, last-use sequence)
    map: HashMap<Vec<u8>, (Vec<u8>, u64)>,
    /// last-use sequence -> key (unique: sequences never repeat)
    order: BTreeMap<u64, Vec<u8>>,
    hits: u64,
    misses: u64,
}

impl ReadCache {
    pub(crate) fn new(capacity_bytes: usize) -> ReadCache {
        ReadCache {
            capacity_bytes,
            used_bytes: 0,
            seq: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn touch(&mut self, key: &[u8]) {
        if let Some((_, old_seq)) = self.map.get(key) {
            let old_seq = *old_seq;
            self.order.remove(&old_seq);
            self.seq += 1;
            self.order.insert(self.seq, key.to_vec());
            self.map.get_mut(key).expect("key present").1 = self.seq;
        }
    }

    pub(crate) fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        if self.map.contains_key(key) {
            self.touch(key);
            self.hits += 1;
            self.map.get(key).map(|(v, _)| v.clone())
        } else {
            self.misses += 1;
            None
        }
    }

    pub(crate) fn insert(&mut self, key: &[u8], value: &[u8]) {
        let entry_size = key.len() + value.len();
        if entry_size > self.capacity_bytes {
            return; // larger than the whole cache: skip
        }
        self.invalidate(key);
        self.seq += 1;
        self.map
            .insert(key.to_vec(), (value.to_vec(), self.seq));
        self.order.insert(self.seq, key.to_vec());
        self.used_bytes += entry_size;
        while self.used_bytes > self.capacity_bytes {
            let Some((&oldest, _)) = self.order.iter().next() else {
                break;
            };
            let victim = self.order.remove(&oldest).expect("entry exists");
            if let Some((v, _)) = self.map.remove(&victim) {
                self.used_bytes -= victim.len() + v.len();
            }
        }
    }

    pub(crate) fn invalidate(&mut self, key: &[u8]) {
        if let Some((v, seq)) = self.map.remove(key) {
            self.order.remove(&seq);
            self.used_bytes -= key.len() + v.len();
        }
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_invalidate() {
        let mut c = ReadCache::new(1024);
        c.insert(b"a", b"1");
        assert_eq!(c.get(b"a"), Some(b"1".to_vec()));
        assert_eq!(c.get(b"b"), None);
        c.invalidate(b"a");
        assert_eq!(c.get(b"a"), None);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        // Each entry is 2 bytes; capacity 6 = three entries.
        let mut c = ReadCache::new(6);
        c.insert(b"a", b"1");
        c.insert(b"b", b"2");
        c.insert(b"c", b"3");
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get(b"a").is_some());
        c.insert(b"d", b"4");
        assert_eq!(c.get(b"b"), None, "b should have been evicted");
        assert!(c.get(b"a").is_some());
        assert!(c.get(b"c").is_some());
        assert!(c.get(b"d").is_some());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn overwrite_replaces_and_accounts_bytes() {
        let mut c = ReadCache::new(100);
        c.insert(b"k", b"short");
        c.insert(b"k", b"a much longer value than before");
        assert_eq!(
            c.get(b"k"),
            Some(b"a much longer value than before".to_vec())
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_entries_are_skipped() {
        let mut c = ReadCache::new(4);
        c.insert(b"key", b"value-too-big");
        assert_eq!(c.get(b"key"), None);
    }
}
