//! Write-ahead log.
//!
//! Every mutation is appended to the WAL before it reaches the memtable so
//! that a crash between commit and flush loses nothing. Records are
//! individually checksummed; replay stops at the first corrupt or truncated
//! record (standard torn-write handling — everything before it is intact).
//!
//! WAL files are numbered (`wal-00000001.log`, ...): each memtable owns one
//! log, frozen memtables keep theirs until their flush lands in L0, and
//! recovery replays every surviving log in id order. Syncing is the
//! *caller's* policy — [`Wal::append`] only buffers; the database layer
//! decides between per-commit fsync (`always`), leader-batched fsync
//! (`group`), and OS-buffered (`none`), and calls [`Wal::sync`] accordingly.
//!
//! Record layout (little-endian):
//!
//! ```text
//! crc32(u32) | kind(u8) | key_len(u32) | val_len(u32) | key | value
//! ```
//!
//! with the checksum covering everything after itself.

use crate::crc32::crc32;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// One replayed WAL operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A key/value insertion.
    Put(Vec<u8>, Vec<u8>),
    /// A deletion marker.
    Delete(Vec<u8>),
}

const KIND_PUT: u8 = 1;
const KIND_DELETE: u8 = 2;

/// Filename of WAL number `id` within a database directory.
pub fn wal_file_name(id: u64) -> String {
    format!("wal-{id:08}.log")
}

/// Parse a WAL id back out of a file name produced by [`wal_file_name`].
pub fn parse_wal_file_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    rest.parse().ok()
}

/// An append-only write-ahead log.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    bytes_written: u64,
    syncs: u64,
}

impl Wal {
    /// Create (or truncate) the log at `path`.
    pub fn create(path: &Path) -> std::io::Result<Wal> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Wal {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
            bytes_written: 0,
            syncs: 0,
        })
    }

    /// Append one record (buffered; call [`Wal::flush`] or [`Wal::sync`] to
    /// push it toward the disk).
    pub fn append(&mut self, rec: &WalRecord) -> std::io::Result<()> {
        let (kind, key, val): (u8, &[u8], &[u8]) = match rec {
            WalRecord::Put(k, v) => (KIND_PUT, k, v),
            WalRecord::Delete(k) => (KIND_DELETE, k, &[]),
        };
        let mut body = Vec::with_capacity(1 + 4 + 4 + key.len() + val.len());
        body.push(kind);
        body.extend_from_slice(&(key.len() as u32).to_le_bytes());
        body.extend_from_slice(&(val.len() as u32).to_le_bytes());
        body.extend_from_slice(key);
        body.extend_from_slice(val);
        self.writer.write_all(&crc32(&body).to_le_bytes())?;
        self.writer.write_all(&body)?;
        self.bytes_written += 4 + body.len() as u64;
        Ok(())
    }

    /// Flush buffered appends to the OS.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Flush and fsync — the durability point of `always` and `group`
    /// commit modes.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        self.syncs += 1;
        Ok(())
    }

    /// Bytes appended since creation.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// fsyncs performed since creation.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replay a log, returning all intact records in order. Stops silently
    /// at the first truncated or corrupt record.
    pub fn replay(path: &Path) -> std::io::Result<Vec<WalRecord>> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        }
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 4 + 9 <= data.len() {
            let stored_crc = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
            let body_start = pos + 4;
            let kind = data[body_start];
            let key_len =
                u32::from_le_bytes(data[body_start + 1..body_start + 5].try_into().unwrap())
                    as usize;
            let val_len =
                u32::from_le_bytes(data[body_start + 5..body_start + 9].try_into().unwrap())
                    as usize;
            let body_end = body_start + 9 + key_len + val_len;
            if body_end > data.len() {
                break; // truncated tail
            }
            let body = &data[body_start..body_end];
            if crc32(body) != stored_crc {
                break; // torn or corrupt record
            }
            let key = body[9..9 + key_len].to_vec();
            match kind {
                KIND_PUT => {
                    let val = body[9 + key_len..].to_vec();
                    out.push(WalRecord::Put(key, val));
                }
                KIND_DELETE => out.push(WalRecord::Delete(key)),
                _ => break, // unknown record kind: stop replay
            }
            pos = body_end;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lsmdb-wal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn append_and_replay() {
        let p = tmp("basic");
        let mut w = Wal::create(&p).unwrap();
        w.append(&WalRecord::Put(b"a".to_vec(), b"1".to_vec()))
            .unwrap();
        w.append(&WalRecord::Delete(b"a".to_vec())).unwrap();
        w.append(&WalRecord::Put(b"b".to_vec(), vec![0u8; 1000]))
            .unwrap();
        w.flush().unwrap();
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], WalRecord::Put(b"a".to_vec(), b"1".to_vec()));
        assert_eq!(recs[1], WalRecord::Delete(b"a".to_vec()));
        assert!(matches!(&recs[2], WalRecord::Put(k, v) if k == b"b" && v.len() == 1000));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let p = tmp("missing").with_file_name("never-created.log");
        assert!(Wal::replay(&p).unwrap().is_empty());
    }

    #[test]
    fn replay_stops_at_truncation() {
        let p = tmp("trunc");
        let mut w = Wal::create(&p).unwrap();
        w.append(&WalRecord::Put(b"keep".to_vec(), b"1".to_vec()))
            .unwrap();
        w.append(&WalRecord::Put(b"lost".to_vec(), b"2".to_vec()))
            .unwrap();
        w.flush().unwrap();
        drop(w);
        // Chop the last 3 bytes to simulate a torn write.
        let data = std::fs::read(&p).unwrap();
        std::fs::write(&p, &data[..data.len() - 3]).unwrap();
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0], WalRecord::Put(b"keep".to_vec(), b"1".to_vec()));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn replay_stops_at_corruption() {
        let p = tmp("corrupt");
        let mut w = Wal::create(&p).unwrap();
        w.append(&WalRecord::Put(b"ok".to_vec(), b"1".to_vec()))
            .unwrap();
        w.append(&WalRecord::Put(b"bad".to_vec(), b"2".to_vec()))
            .unwrap();
        w.flush().unwrap();
        drop(w);
        let mut data = std::fs::read(&p).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF; // flip a bit in the last record's value
        std::fs::write(&p, &data).unwrap();
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs.len(), 1);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_key_and_value() {
        let p = tmp("empty");
        let mut w = Wal::create(&p).unwrap();
        w.append(&WalRecord::Put(Vec::new(), Vec::new())).unwrap();
        w.flush().unwrap();
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs, vec![WalRecord::Put(Vec::new(), Vec::new())]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn sync_counts_and_persists() {
        let p = tmp("sync");
        let mut w = Wal::create(&p).unwrap();
        w.append(&WalRecord::Put(b"k".to_vec(), b"v".to_vec()))
            .unwrap();
        w.sync().unwrap();
        assert_eq!(w.syncs(), 1);
        let recs = Wal::replay(&p).unwrap();
        assert_eq!(recs.len(), 1);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bytes_written_accounting() {
        let p = tmp("bytes");
        let mut w = Wal::create(&p).unwrap();
        assert_eq!(w.bytes_written(), 0);
        w.append(&WalRecord::Put(b"ab".to_vec(), b"cde".to_vec()))
            .unwrap();
        // 4 (crc) + 1 (kind) + 4 + 4 (lens) + 2 + 3 = 18
        assert_eq!(w.bytes_written(), 18);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn wal_file_names_round_trip() {
        assert_eq!(wal_file_name(7), "wal-00000007.log");
        assert_eq!(parse_wal_file_name("wal-00000007.log"), Some(7));
        assert_eq!(parse_wal_file_name("wal-123456789.log"), Some(123456789));
        assert_eq!(parse_wal_file_name("wal.log"), None);
        assert_eq!(parse_wal_file_name("00000001.sst"), None);
    }
}
