//! Bloom filters for SSTables.
//!
//! One filter is built per table from all of its keys; a negative lookup
//! lets the read path skip the table without touching its blocks. This is
//! the standard RocksDB technique and matters for HEPnOS because product
//! `get`s for absent labels would otherwise scan every level.

/// A fixed-size bloom filter with `k` hash probes derived by double hashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    k: u32,
}

fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl BloomFilter {
    /// Build a filter sized for `n_keys` keys at `bits_per_key` bits each.
    pub fn new(n_keys: usize, bits_per_key: usize) -> Self {
        let n_bits = (n_keys.max(1) * bits_per_key).max(64);
        // k = ln(2) * bits/key, clamped to a sane range.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        BloomFilter {
            bits: vec![0u8; n_bits.div_ceil(8)],
            k,
        }
    }

    fn probes(&self, key: &[u8]) -> impl Iterator<Item = usize> + '_ {
        let h1 = fnv1a(key, 0);
        let h2 = fnv1a(key, 0x9E37_79B9_7F4A_7C15) | 1;
        let n_bits = self.bits.len() * 8;
        (0..self.k as u64)
            .map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % n_bits as u64) as usize)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &[u8]) {
        let idx: Vec<usize> = self.probes(key).collect();
        for i in idx {
            self.bits[i / 8] |= 1 << (i % 8);
        }
    }

    /// Whether the key *may* be present (no false negatives).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.probes(key)
            .collect::<Vec<_>>()
            .iter()
            .all(|&i| self.bits[i / 8] & (1 << (i % 8)) != 0)
    }

    /// Serialize: `k` (4 bytes LE) followed by the bit array.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.bits.len());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.bits);
        out
    }

    /// Deserialize from [`BloomFilter::encode`] output.
    pub fn decode(data: &[u8]) -> Option<BloomFilter> {
        if data.len() < 4 {
            return None;
        }
        let k = u32::from_le_bytes(data[..4].try_into().ok()?);
        if k == 0 || k > 30 {
            return None;
        }
        Some(BloomFilter {
            bits: data[4..].to_vec(),
            k,
        })
    }

    /// Size of the bit array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_keys_are_found() {
        let mut f = BloomFilter::new(1000, 10);
        for i in 0..1000u32 {
            f.insert(&i.to_be_bytes());
        }
        for i in 0..1000u32 {
            assert!(f.may_contain(&i.to_be_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::new(1000, 10);
        for i in 0..1000u32 {
            f.insert(&i.to_be_bytes());
        }
        let fp = (1000..11000u32)
            .filter(|i| f.may_contain(&i.to_be_bytes()))
            .count();
        // 10 bits/key should give ~1% FPR; allow generous slack.
        assert!(fp < 500, "false positive rate too high: {fp}/10000");
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut f = BloomFilter::new(100, 8);
        f.insert(b"alpha");
        f.insert(b"beta");
        let g = BloomFilter::decode(&f.encode()).unwrap();
        assert_eq!(f, g);
        assert!(g.may_contain(b"alpha"));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BloomFilter::decode(b"").is_none());
        assert!(BloomFilter::decode(&[0, 0, 0, 0, 1]).is_none()); // k = 0
    }

    #[test]
    fn empty_filter_contains_nothing_much() {
        let f = BloomFilter::new(10, 10);
        let hits = (0..1000u32)
            .filter(|i| f.may_contain(&i.to_be_bytes()))
            .count();
        assert_eq!(hits, 0);
    }
}
