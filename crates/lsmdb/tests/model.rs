//! Property tests: `lsmdb::Db` must behave exactly like an in-memory
//! `BTreeMap` under arbitrary operation sequences, including across flush,
//! compaction, and reopen boundaries.

use lsmdb::{Db, Options, WriteBatch};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Batch(Vec<(Vec<u8>, Option<Vec<u8>>)>),
    Flush,
    Compact,
    Reopen,
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small key space to force overwrites and delete-then-reinsert patterns.
    (0u32..64).prop_map(|i| format!("key{i:03}").into_bytes())
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (key_strategy(), proptest::collection::vec(any::<u8>(), 0..128))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => key_strategy().prop_map(Op::Delete),
        1 => proptest::collection::vec(
            (key_strategy(), proptest::option::of(proptest::collection::vec(any::<u8>(), 0..32))),
            1..8
        ).prop_map(Op::Batch),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        1 => Just(Op::Reopen),
    ]
}

fn tiny_opts() -> Options {
    Options {
        memtable_bytes: 256, // force frequent flushes
        l0_compaction_trigger: 2,
        max_levels: 4,
        level_base_bytes: 1024,
        level_multiplier: 4,
        table_target_bytes: 1024,
        grandparent_limit_bytes: 4096,
        bloom_bits_per_key: 8,
        read_cache_bytes: 64, // tiny, to exercise eviction under the model test
        compaction: lsmdb::CompactionMode::Inline, // deterministic interleavings
        ..Options::default()
    }
}

fn fresh_dir(case: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "lsmdb-prop-{}-{case}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn db_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..120), seed in any::<u64>()) {
        let dir = fresh_dir(seed);
        let mut db = Db::open(&dir, tiny_opts()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    db.put(k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Op::Delete(k) => {
                    db.delete(k).unwrap();
                    model.remove(k);
                }
                Op::Batch(items) => {
                    let mut batch = WriteBatch::new();
                    for (k, v) in items {
                        match v {
                            Some(v) => {
                                batch.put(k, v);
                                model.insert(k.clone(), v.clone());
                            }
                            None => {
                                batch.delete(k);
                                model.remove(k);
                            }
                        }
                    }
                    db.write(&batch).unwrap();
                }
                Op::Flush => db.flush().unwrap(),
                Op::Compact => db.compact().unwrap(),
                Op::Reopen => {
                    drop(db);
                    db = Db::open(&dir, tiny_opts()).unwrap();
                }
            }
        }
        // Point lookups agree for every key ever touched.
        for i in 0u32..64 {
            let k = format!("key{i:03}").into_bytes();
            prop_assert_eq!(db.get(&k).unwrap(), model.get(&k).cloned());
        }
        // Full scan agrees exactly (order and content).
        let scanned = db.scan(b"", None, 0).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scanned, expected);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_bounds_match_model(
        keys in proptest::collection::btree_set(key_strategy(), 1..40),
        lo in 0u32..64,
        hi in 0u32..64,
        limit in 0usize..20,
    ) {
        let dir = fresh_dir(lo as u64 * 1000 + hi as u64 + 7_000_000);
        let db = Db::open(&dir, tiny_opts()).unwrap();
        for k in &keys {
            db.put(k, b"v").unwrap();
        }
        let lower = format!("key{lo:03}").into_bytes();
        let upper = format!("key{hi:03}").into_bytes();
        let got = db.scan(&lower, Some(&upper), limit).unwrap();
        let mut expected: Vec<Vec<u8>> = keys
            .iter()
            .filter(|k| k.as_slice() >= lower.as_slice() && k.as_slice() < upper.as_slice())
            .cloned()
            .collect();
        expected.sort();
        if limit != 0 {
            expected.truncate(limit);
        }
        let got_keys: Vec<Vec<u8>> = got.into_iter().map(|(k, _)| k).collect();
        prop_assert_eq!(got_keys, expected);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
}
