//! Crash-recovery tests: kill the engine at the nastiest points of the
//! flush/compaction protocol (via failpoints), reopen, and require
//! byte-identical scans plus a debris-free directory.
//!
//! The durability protocol under test: SSTs are written to `<id>.sst.tmp`,
//! fsynced, renamed into place; the `MANIFEST` is swapped by atomic rename;
//! WAL files are only deleted once the manifest covers their data. So a
//! crash at *any* point leaves either (a) temp files, (b) renamed-but-
//! unreferenced tables, or (c) stale WALs — all of which `open` must sweep
//! up without losing a byte.

use lsmdb::{CompactionMode, Db, DbError, Failpoint, Options};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn fresh_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "lsmdb-recovery-{}-{name}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn opts() -> Options {
    Options {
        memtable_bytes: 512,
        l0_compaction_trigger: 2,
        max_levels: 4,
        level_base_bytes: 2048,
        level_multiplier: 4,
        table_target_bytes: 2048,
        grandparent_limit_bytes: 8192,
        compaction: CompactionMode::Inline, // failpoints fire deterministically
        ..Options::default()
    }
}

/// Every live `(key, value)` pair via a full scan.
fn full_scan(db: &Db) -> BTreeMap<Vec<u8>, Vec<u8>> {
    db.scan(b"", None, 0).unwrap().into_iter().collect()
}

/// Directory invariants after recovery: no temp files, and every `.sst`
/// on disk is referenced by the manifest.
fn assert_no_debris(dir: &Path) {
    let manifest = std::fs::read_to_string(dir.join("MANIFEST")).unwrap_or_default();
    let referenced: Vec<&str> = manifest
        .lines()
        .filter_map(|l| l.split_whitespace().nth(1))
        .collect();
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            !name.ends_with(".tmp"),
            "temp file left after recovery: {name}"
        );
        if name.ends_with(".sst") {
            assert!(
                referenced.contains(&name.as_str()),
                "orphaned table left after recovery: {name}"
            );
        }
    }
}

/// Load enough data to build several levels, with deletes mixed in.
fn seed_db(db: &Db, n: u32) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut model = BTreeMap::new();
    for i in 0..n {
        let k = format!("key{:05}", i % (n / 2)).into_bytes();
        let v = format!("value-{i}-{}", "x".repeat((i % 13) as usize)).into_bytes();
        db.put(&k, &v).unwrap();
        model.insert(k, v);
    }
    for i in (0..n).step_by(5) {
        let k = format!("key{:05}", i % (n / 2)).into_bytes();
        db.delete(&k).unwrap();
        model.remove(&k);
    }
    model
}

#[test]
fn crash_before_compaction_install_leaves_no_orphans() {
    let d = fresh_dir("preinstall");
    let model;
    {
        let db = Db::open(&d, opts()).unwrap();
        db.pause_compaction(true); // let L0 pile up so the merge is real
        model = seed_db(&db, 600);
        db.flush().unwrap();
        // Arm: the next compaction writes all outputs, then "crashes"
        // before the manifest swap — outputs become orphaned .sst files.
        db.set_failpoint(Failpoint::CompactionBeforeInstall);
        let err = db.compact_level(0).unwrap_err();
        assert!(matches!(err, DbError::Io(_)), "unexpected error: {err}");
        std::mem::forget(db); // crash: no clean shutdown
    }
    // Orphans exist before recovery (outputs were renamed into place).
    let orphan_count = {
        let manifest = std::fs::read_to_string(d.join("MANIFEST")).unwrap();
        std::fs::read_dir(&d)
            .unwrap()
            .filter(|e| {
                let n = e
                    .as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .into_owned();
                n.ends_with(".sst") && !manifest.contains(&n)
            })
            .count()
    };
    assert!(orphan_count > 0, "failpoint should leave orphaned tables");
    let db = Db::open(&d, opts()).unwrap();
    assert_eq!(full_scan(&db), model, "scan differs after recovery");
    assert_no_debris(&d);
    // The engine keeps working: the interrupted compaction can rerun.
    db.compact().unwrap();
    assert_eq!(full_scan(&db), model);
    drop(db);
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn crash_mid_compaction_output_leaves_no_temp_files() {
    let d = fresh_dir("midoutput");
    let model;
    {
        let db = Db::open(&d, opts()).unwrap();
        db.pause_compaction(true); // let L0 pile up so the merge is real
        model = seed_db(&db, 900);
        db.flush().unwrap();
        db.set_failpoint(Failpoint::CompactionMidOutput);
        // The failpoint only fires if the compaction cuts more than one
        // output; with 900 keys over a 2 KiB table target it always does.
        let err = db.compact_level(0).unwrap_err();
        assert!(matches!(err, DbError::Io(_)), "unexpected error: {err}");
        std::mem::forget(db);
    }
    assert!(
        std::fs::read_dir(&d).unwrap().any(|e| e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .ends_with(".tmp")),
        "failpoint should leave a dangling .sst.tmp"
    );
    let db = Db::open(&d, opts()).unwrap();
    assert_eq!(full_scan(&db), model, "scan differs after recovery");
    assert_no_debris(&d);
    drop(db);
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn crash_before_flush_install_replays_the_wal() {
    let d = fresh_dir("flushcrash");
    let model;
    {
        let db = Db::open(&d, opts()).unwrap();
        model = seed_db(&db, 200);
        db.set_failpoint(Failpoint::FlushBeforeInstall);
        let err = db.flush().unwrap_err();
        assert!(matches!(err, DbError::Io(_)), "unexpected error: {err}");
        std::mem::forget(db);
    }
    // The flushed-but-uninstalled table is an orphan; its WAL survives, so
    // recovery must rebuild the same state from the log.
    let db = Db::open(&d, opts()).unwrap();
    assert_eq!(full_scan(&db), model, "scan differs after recovery");
    assert_no_debris(&d);
    drop(db);
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn repeated_crashes_converge() {
    let d = fresh_dir("repeat");
    let mut model = BTreeMap::new();
    for round in 0..4u32 {
        let db = Db::open(&d, opts()).unwrap();
        assert_eq!(full_scan(&db), model, "round {round}: state lost");
        db.pause_compaction(true);
        for i in 0..150u32 {
            let k = format!("r{round}k{i:04}").into_bytes();
            let v = format!("val{round}-{i}").into_bytes();
            db.put(&k, &v).unwrap();
            model.insert(k, v);
        }
        db.flush().unwrap();
        db.set_failpoint(Failpoint::CompactionBeforeInstall);
        let _ = db.compact_level(0); // crashes mid-merge unless L0 is trivial
        std::mem::forget(db);
    }
    let db = Db::open(&d, opts()).unwrap();
    assert_eq!(full_scan(&db), model);
    assert_no_debris(&d);
    drop(db);
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn torn_wal_tail_loses_only_the_torn_suffix() {
    let d = fresh_dir("tornwal");
    {
        let db = Db::open(&d, opts()).unwrap();
        db.put(b"intact", b"yes").unwrap();
        db.put(b"torn", b"missing-half").unwrap();
        std::mem::forget(db);
    }
    // Chop bytes off the newest WAL to simulate a torn final write.
    let wal = std::fs::read_dir(&d)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .max()
        .expect("a wal file exists");
    let data = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &data[..data.len() - 4]).unwrap();
    let db = Db::open(&d, opts()).unwrap();
    assert_eq!(db.get(b"intact").unwrap(), Some(b"yes".to_vec()));
    assert_eq!(
        db.get(b"torn").unwrap(),
        None,
        "torn record must not surface"
    );
    drop(db);
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn background_mode_recovers_after_ungraceful_drop() {
    let d = fresh_dir("bgcrash");
    let model;
    {
        let db = Db::open(
            &d,
            Options {
                compaction: CompactionMode::Background,
                // Never shed: the point is crash recovery, not overload.
                l0_stop_trigger: 10_000,
                l0_slowdown_trigger: 10_000,
                ..opts()
            },
        )
        .unwrap();
        model = seed_db(&db, 500);
        // Quiesce the worker (mem::forget leaks it, and a live worker
        // writing into the dir after reopen would be cross-instance
        // interference no real crash exhibits), then skip the clean
        // shutdown: no final WAL sync, no final memtable flush — the tail
        // of the data exists only in un-fsynced WALs.
        db.wait_idle().unwrap();
        std::mem::forget(db);
    }
    let db = Db::open(&d, opts()).unwrap();
    assert_eq!(full_scan(&db), model, "scan differs after recovery");
    assert_no_debris(&d);
    drop(db);
    std::fs::remove_dir_all(&d).ok();
}
