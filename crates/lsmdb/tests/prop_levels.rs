//! N-level structural property tests.
//!
//! `model.rs` checks that the engine *behaves* like a `BTreeMap`; this suite
//! checks that the *leveling machinery itself* preserves that equivalence
//! while it is stressed directly: targeted per-level compactions, the
//! `compact_all` escape hatch, background workers racing foreground writes,
//! and tombstone lifetimes (a delete must shadow older versions on every
//! deeper level until it reaches the bottom of the tree, and must never
//! resurrect a key once dropped).

use lsmdb::{CompactionMode, Db, Options};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Flush,
    CompactLevel(usize),
    CompactAll,
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Narrow key space: heavy overwrite + delete churn across levels.
    (0u32..48).prop_map(|i| format!("k{i:03}").into_bytes())
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (key_strategy(), proptest::collection::vec(any::<u8>(), 1..96))
            .prop_map(|(k, v)| Op::Put(k, v)),
        3 => key_strategy().prop_map(Op::Delete),
        1 => Just(Op::Flush),
        1 => (0usize..5).prop_map(Op::CompactLevel),
        1 => Just(Op::CompactAll),
    ]
}

/// Deeper and narrower than model.rs: 6 levels, small multiplier, so data
/// actually reaches L3+ within a test case.
fn deep_opts(mode: CompactionMode) -> Options {
    Options {
        memtable_bytes: 192,
        l0_compaction_trigger: 2,
        l0_slowdown_trigger: 6,
        l0_stop_trigger: 10_000, // never shed in the property test
        max_levels: 6,
        level_base_bytes: 512,
        level_multiplier: 2,
        table_target_bytes: 512,
        grandparent_limit_bytes: 2048,
        bloom_bits_per_key: 8,
        compaction: mode,
        max_stall: std::time::Duration::from_millis(1),
        ..Options::default()
    }
}

fn fresh_dir(tag: &str, case: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "lsmdb-levels-{tag}-{}-{case}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn check_against_model(db: &Db, model: &BTreeMap<Vec<u8>, Vec<u8>>) -> Result<(), TestCaseError> {
    for i in 0u32..48 {
        let k = format!("k{i:03}").into_bytes();
        prop_assert_eq!(db.get(&k).unwrap(), model.get(&k).cloned());
    }
    let scanned = db.scan(b"", None, 0).unwrap();
    let expected: Vec<(Vec<u8>, Vec<u8>)> =
        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    prop_assert_eq!(scanned, expected);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Inline mode: deterministic interleaving of writes with targeted
    /// per-level compactions and the escape hatch.
    #[test]
    fn n_level_precedence_matches_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..150),
        seed in any::<u64>(),
    ) {
        let dir = fresh_dir("inline", seed);
        let db = Db::open(&dir, deep_opts(CompactionMode::Inline)).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    db.put(k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Op::Delete(k) => {
                    db.delete(k).unwrap();
                    model.remove(k);
                }
                Op::Flush => db.flush().unwrap(),
                Op::CompactLevel(l) => db.compact_level(*l).unwrap(),
                Op::CompactAll => db.compact_all().unwrap(),
            }
        }
        check_against_model(&db, &model)?;

        // After compact_all every key lives at the bottom and all shadowed
        // versions/tombstones are gone: another full pass must be a no-op
        // for visible state.
        db.compact_all().unwrap();
        check_against_model(&db, &model)?;
        let stats = db.stats();
        for (lvl, n) in stats.level_tables.iter().enumerate() {
            if lvl + 1 < stats.level_tables.len() {
                prop_assert_eq!((lvl, *n), (lvl, 0));
            }
        }
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Background mode: the worker flushes/compacts concurrently with the
    /// write stream; after `wait_idle` the result must still match the
    /// oracle, and tombstones must have been dropped only via bottom-level
    /// compactions (never resurrecting a deleted key).
    #[test]
    fn background_compaction_matches_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..150),
        seed in any::<u64>(),
    ) {
        let dir = fresh_dir("bg", seed);
        let db = Db::open(&dir, deep_opts(CompactionMode::Background)).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    db.put(k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Op::Delete(k) => {
                    db.delete(k).unwrap();
                    model.remove(k);
                }
                Op::Flush => db.flush().unwrap(),
                Op::CompactLevel(l) => db.compact_level(*l).unwrap(),
                Op::CompactAll => db.compact_all().unwrap(),
            }
        }
        db.wait_idle().unwrap();
        check_against_model(&db, &model)?;

        // Reopen: durability of the background-maintained tree.
        drop(db);
        let db = Db::open(&dir, deep_opts(CompactionMode::Inline)).unwrap();
        check_against_model(&db, &model)?;
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Deterministic (non-proptest) check of the tombstone lifetime rule:
/// a delete whose tombstone is compacted into a *middle* level must keep
/// shadowing an older value that still lives at the bottom.
#[test]
fn tombstones_survive_until_bottom_level() {
    let dir = fresh_dir("tomb", 0);
    let db = Db::open(&dir, deep_opts(CompactionMode::Inline)).unwrap();

    // Install old values and push them to the bottom of the tree.
    for i in 0..48u32 {
        db.put(format!("k{i:03}").as_bytes(), b"old-value").unwrap();
    }
    db.compact_all().unwrap();
    let depth = db.stats().level_tables.len();
    assert!(
        db.stats().level_tables[depth - 1] > 0,
        "setup: bottom level must hold the old values"
    );

    // Delete half the keys; flush the tombstones and compact them exactly
    // one hop (L0 -> L1), which must NOT drop them: the bottom still holds
    // shadowed values.
    for i in (0..48u32).step_by(2) {
        db.delete(format!("k{i:03}").as_bytes()).unwrap();
    }
    db.flush().unwrap();
    let before = db.stats().tombstones_dropped;
    db.compact_level(0).unwrap();
    let stats = db.stats();
    assert_eq!(
        stats.tombstones_dropped, before,
        "tombstones were dropped above the bottom level"
    );
    for i in 0..48u32 {
        let k = format!("k{i:03}");
        let expect = if i % 2 == 0 {
            None
        } else {
            Some(b"old-value".to_vec())
        };
        assert_eq!(
            db.get(k.as_bytes()).unwrap(),
            expect,
            "key {k} after mid-level compaction"
        );
    }

    // Now drive the tombstones all the way down: they must be dropped (no
    // tombstone bytes retained at the bottom) and the keys must stay gone.
    db.compact_all().unwrap();
    assert!(
        db.stats().tombstones_dropped > before,
        "bottom-level compaction should finally drop the tombstones"
    );
    for i in (0..48u32).step_by(2) {
        let k = format!("k{i:03}");
        assert_eq!(db.get(k.as_bytes()).unwrap(), None, "key {k} resurrected");
    }
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}
