//! `bedrock` — JSON-driven bootstrap for Mochi-style services.
//!
//! The paper (§II-B) describes Bedrock as the component that "takes a JSON
//! configuration describing the service and spins up the components
//! according to this configuration": Argobots execution streams and pools,
//! Mercury settings, and the list of providers with their databases and
//! pool mappings. That configurability is what let the authors tune HEPnOS
//! (by hand and with ML-based autotuning) into the §IV-D deployment: 16
//! providers per node, each on its own execution stream, serving 8 event
//! and 8 product databases.
//!
//! This crate reproduces that layer:
//!
//! * [`ServiceConfig`] — the JSON schema (serde);
//! * [`launch`] — build the [`argos::Runtime`], wrap the endpoint in a
//!   [`margo::MargoInstance`], register a [`yokan::YokanService`], create
//!   the backends, and return a running [`BedrockServer`];
//! * [`ServiceConfig::hepnos_node`] — generator for the paper's per-node
//!   topology;
//! * [`ConnectionDescriptor`] — the address book handed to clients (the
//!   paper's `connect("config.json")`).
//!
//! # Example
//!
//! ```
//! use mercurio::local::Fabric;
//!
//! let fabric = Fabric::new(Default::default());
//! let cfg = bedrock::ServiceConfig::hepnos_node(2, 2, 2, bedrock::BackendKind::Map, None);
//! let server = bedrock::launch(fabric.endpoint("node0"), &cfg).unwrap();
//! assert_eq!(server.descriptor().providers.len(), 4);
//! server.shutdown();
//! ```

#![warn(missing_docs)]

use argos::{Runtime, SchedulingDiscipline};
use margo::MargoInstance;
use mercurio::Endpoint;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use yokan::{LsmBackend, MemBackend, YokanService};

/// Which storage backend a database uses (Bedrock's `type` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum BackendKind {
    /// In-memory ordered map (`std::map` analogue).
    Map,
    /// Persistent LSM engine (RocksDB analogue).
    Lsm,
}

/// One pool declaration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Pool name, unique within the instance.
    pub name: String,
    /// Scheduler kind: `fifo`, `fifo_wait`, `prio`, ...
    #[serde(default = "default_kind")]
    pub kind: String,
}

fn default_kind() -> String {
    "fifo_wait".to_string()
}

/// One execution-stream declaration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XstreamConfig {
    /// Xstream name.
    pub name: String,
    /// Pools drained by this xstream, in round-robin order.
    pub pools: Vec<String>,
}

/// The `argobots` section.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArgobotsConfig {
    /// Declared pools.
    pub pools: Vec<PoolConfig>,
    /// Declared execution streams.
    pub xstreams: Vec<XstreamConfig>,
}

/// The `margo` section.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MargoConfig {
    /// Argobots resources.
    pub argobots: ArgobotsConfig,
    /// Pool handling RPCs whose provider has no dedicated pool.
    #[serde(default = "default_rpc_pool")]
    pub rpc_pool: String,
}

fn default_rpc_pool() -> String {
    "default".to_string()
}

/// One database served by a provider.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatabaseConfig {
    /// Database name, unique within its provider.
    pub name: String,
    /// Backend kind.
    #[serde(rename = "type")]
    pub kind: BackendKind,
    /// Directory for persistent backends (required for `lsm`).
    #[serde(default)]
    pub path: Option<PathBuf>,
}

/// One provider declaration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProviderConfig {
    /// Human-readable name.
    pub name: String,
    /// Provider id clients address.
    pub provider_id: u16,
    /// Pool RPCs for this provider run in.
    pub pool: String,
    /// Databases served.
    pub databases: Vec<DatabaseConfig>,
}

/// The optional `overload` section: admission control and memory
/// watermarks. Absent from a config, the service accepts everything and
/// bounds nothing (the pre-overload-protection behaviour); present, every
/// knob has a serde default so handwritten configs can set only what they
/// care about.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Maximum queued-or-executing RPCs per provider before new requests
    /// are shed with `Busy`.
    #[serde(default = "default_max_queued")]
    pub max_queued_per_provider: usize,
    /// Maximum milliseconds a request may wait in its pool before being
    /// shed at the front (0 disables the queue-delay deadline).
    #[serde(default)]
    pub max_queue_delay_ms: u64,
    /// Backoff hint (milliseconds) returned to shed clients.
    #[serde(default = "default_retry_after_ms")]
    pub retry_after_ms: u64,
    /// Soft memory watermark per `map` database in bytes: mutations stall
    /// briefly above it (0 means "same as hard").
    #[serde(default)]
    pub soft_watermark_bytes: usize,
    /// Hard memory watermark per `map` database in bytes: mutations that
    /// would exceed it are shed with `Busy` (0 disables watermarks).
    #[serde(default)]
    pub hard_watermark_bytes: usize,
    /// Longest a mutation stalls at the soft watermark (milliseconds)
    /// before being applied anyway.
    #[serde(default = "default_max_stall_ms")]
    pub max_stall_ms: u64,
}

fn default_max_queued() -> usize {
    1024
}

fn default_retry_after_ms() -> u64 {
    5
}

fn default_max_stall_ms() -> u64 {
    20
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            max_queued_per_provider: default_max_queued(),
            max_queue_delay_ms: 0,
            retry_after_ms: default_retry_after_ms(),
            soft_watermark_bytes: 0,
            hard_watermark_bytes: 0,
            max_stall_ms: default_max_stall_ms(),
        }
    }
}

impl OverloadConfig {
    fn admission(&self) -> margo::AdmissionConfig {
        margo::AdmissionConfig {
            max_queued_per_provider: self.max_queued_per_provider,
            max_queue_delay: (self.max_queue_delay_ms > 0)
                .then(|| std::time::Duration::from_millis(self.max_queue_delay_ms)),
            retry_after_hint: std::time::Duration::from_millis(self.retry_after_ms),
        }
    }

    fn watermarks(&self) -> Option<yokan::WatermarkConfig> {
        if self.hard_watermark_bytes == 0 {
            return None;
        }
        let soft = if self.soft_watermark_bytes == 0 {
            self.hard_watermark_bytes
        } else {
            self.soft_watermark_bytes.min(self.hard_watermark_bytes)
        };
        Some(yokan::WatermarkConfig {
            soft_bytes: soft,
            hard_bytes: self.hard_watermark_bytes,
            max_stall: std::time::Duration::from_millis(self.max_stall_ms),
            retry_after_hint: std::time::Duration::from_millis(self.retry_after_ms),
        })
    }
}

/// The optional `lsm` section: tuning for every `lsm` database in the
/// config. Absent, databases open with [`lsmdb::Options::default`]; present,
/// every knob has the engine's default, so handwritten configs set only
/// what they care about.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LsmConfig {
    /// Memtable size before it freezes and flushes (bytes).
    #[serde(default = "d_memtable_bytes")]
    pub memtable_bytes: usize,
    /// L0 table count that triggers a compaction into L1.
    #[serde(default = "d_l0_compaction_trigger")]
    pub l0_compaction_trigger: usize,
    /// L0 table count above which writes stall briefly.
    #[serde(default = "d_l0_slowdown_trigger")]
    pub l0_slowdown_trigger: usize,
    /// L0 table count at which writes are shed with `Busy`.
    #[serde(default = "d_l0_stop_trigger")]
    pub l0_stop_trigger: usize,
    /// Number of levels in the tree (L0 plus the sorted runs).
    #[serde(default = "d_max_levels")]
    pub max_levels: usize,
    /// Target size of L1 (bytes); each deeper level is `level_multiplier`×
    /// larger.
    #[serde(default = "d_level_base_bytes")]
    pub level_base_bytes: u64,
    /// Growth factor between consecutive level size targets.
    #[serde(default = "d_level_multiplier")]
    pub level_multiplier: u64,
    /// Target size for one output table of a compaction (bytes).
    #[serde(default = "d_table_target_bytes")]
    pub table_target_bytes: usize,
    /// Grandparent-overlap limit at which compaction output tables are cut
    /// early (bytes).
    #[serde(default = "d_grandparent_limit_bytes")]
    pub grandparent_limit_bytes: u64,
    /// Bloom filter bits per key (0 disables bloom filters).
    #[serde(default = "d_bloom_bits_per_key")]
    pub bloom_bits_per_key: usize,
    /// Read cache capacity (bytes, 0 disables the cache).
    #[serde(default = "d_read_cache_bytes")]
    pub read_cache_bytes: usize,
    /// WAL durability mode: `"always"`, `"group"`, or `"none"`.
    #[serde(default = "d_wal_sync")]
    pub wal_sync: String,
    /// Run flush/compaction inline on the write path instead of on the
    /// background worker (testing/debugging only).
    #[serde(default)]
    pub inline_compaction: bool,
    /// Longest one write stalls at the L0 slowdown trigger (milliseconds).
    #[serde(default = "d_max_stall_ms")]
    pub max_stall_ms: u64,
    /// Backoff hint carried in L0-stop `Busy` rejections (milliseconds).
    #[serde(default = "d_retry_after_ms")]
    pub retry_after_ms: u64,
}

fn d_memtable_bytes() -> usize {
    lsmdb::Options::default().memtable_bytes
}
fn d_l0_compaction_trigger() -> usize {
    lsmdb::Options::default().l0_compaction_trigger
}
fn d_l0_slowdown_trigger() -> usize {
    lsmdb::Options::default().l0_slowdown_trigger
}
fn d_l0_stop_trigger() -> usize {
    lsmdb::Options::default().l0_stop_trigger
}
fn d_max_levels() -> usize {
    lsmdb::Options::default().max_levels
}
fn d_level_base_bytes() -> u64 {
    lsmdb::Options::default().level_base_bytes
}
fn d_level_multiplier() -> u64 {
    lsmdb::Options::default().level_multiplier
}
fn d_table_target_bytes() -> usize {
    lsmdb::Options::default().table_target_bytes
}
fn d_grandparent_limit_bytes() -> u64 {
    lsmdb::Options::default().grandparent_limit_bytes
}
fn d_bloom_bits_per_key() -> usize {
    lsmdb::Options::default().bloom_bits_per_key
}
fn d_read_cache_bytes() -> usize {
    lsmdb::Options::default().read_cache_bytes
}
fn d_wal_sync() -> String {
    "none".into()
}
fn d_max_stall_ms() -> u64 {
    lsmdb::Options::default().max_stall.as_millis() as u64
}
fn d_retry_after_ms() -> u64 {
    lsmdb::Options::default().retry_after_hint.as_millis() as u64
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_bytes: d_memtable_bytes(),
            l0_compaction_trigger: d_l0_compaction_trigger(),
            l0_slowdown_trigger: d_l0_slowdown_trigger(),
            l0_stop_trigger: d_l0_stop_trigger(),
            max_levels: d_max_levels(),
            level_base_bytes: d_level_base_bytes(),
            level_multiplier: d_level_multiplier(),
            table_target_bytes: d_table_target_bytes(),
            grandparent_limit_bytes: d_grandparent_limit_bytes(),
            bloom_bits_per_key: d_bloom_bits_per_key(),
            read_cache_bytes: d_read_cache_bytes(),
            wal_sync: d_wal_sync(),
            inline_compaction: false,
            max_stall_ms: d_max_stall_ms(),
            retry_after_ms: d_retry_after_ms(),
        }
    }
}

impl LsmConfig {
    /// Convert to engine options; rejects unknown `wal_sync` values.
    pub fn options(&self) -> Result<lsmdb::Options, BedrockError> {
        let wal_sync = lsmdb::WalSync::parse(&self.wal_sync)
            .ok_or_else(|| BedrockError::Invalid(format!("unknown wal_sync: {}", self.wal_sync)))?;
        Ok(lsmdb::Options {
            memtable_bytes: self.memtable_bytes,
            l0_compaction_trigger: self.l0_compaction_trigger,
            l0_slowdown_trigger: self.l0_slowdown_trigger,
            l0_stop_trigger: self.l0_stop_trigger,
            max_levels: self.max_levels,
            level_base_bytes: self.level_base_bytes,
            level_multiplier: self.level_multiplier,
            table_target_bytes: self.table_target_bytes,
            grandparent_limit_bytes: self.grandparent_limit_bytes,
            bloom_bits_per_key: self.bloom_bits_per_key,
            read_cache_bytes: self.read_cache_bytes,
            wal_sync,
            compaction: if self.inline_compaction {
                lsmdb::CompactionMode::Inline
            } else {
                lsmdb::CompactionMode::Background
            },
            max_stall: std::time::Duration::from_millis(self.max_stall_ms),
            retry_after_hint: std::time::Duration::from_millis(self.retry_after_ms),
        })
    }
}

/// The optional `replication` section: per-database chain replication
/// across servers. Absent, every database is single-copy and nothing
/// forwards (the pre-replication behaviour); present, every knob has a
/// serde default so handwritten configs set only what they care about.
/// The section is advertised in the [`ConnectionDescriptor`] so clients
/// and [`wire_replication`] compute the same chains.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicationConfig {
    /// Replicas per logical database (clamped to the copies available);
    /// `1` disables replication.
    #[serde(default = "d_replication_factor")]
    pub factor: usize,
    /// Per-attempt deadline (milliseconds) for one chain-forward RPC.
    #[serde(default = "d_forward_timeout_ms")]
    pub forward_timeout_ms: u64,
    /// Attempts per successor before a forward degrades to single-copy.
    #[serde(default = "d_forward_attempts")]
    pub forward_attempts: u32,
    /// How long (milliseconds) an unreachable successor is skipped before
    /// the next mutation probes it again.
    #[serde(default = "d_suspend_ms")]
    pub suspend_ms: u64,
}

fn d_replication_factor() -> usize {
    2
}
fn d_forward_timeout_ms() -> u64 {
    yokan::ForwardParams::default().timeout.as_millis() as u64
}
fn d_forward_attempts() -> u32 {
    yokan::ForwardParams::default().attempts
}
fn d_suspend_ms() -> u64 {
    yokan::ForwardParams::default().suspend.as_millis() as u64
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            factor: d_replication_factor(),
            forward_timeout_ms: d_forward_timeout_ms(),
            forward_attempts: d_forward_attempts(),
            suspend_ms: d_suspend_ms(),
        }
    }
}

impl ReplicationConfig {
    /// Convert to the service-side forwarding parameters.
    pub fn forward_params(&self) -> yokan::ForwardParams {
        yokan::ForwardParams {
            timeout: std::time::Duration::from_millis(self.forward_timeout_ms),
            attempts: self.forward_attempts.max(1),
            suspend: std::time::Duration::from_millis(self.suspend_ms),
        }
    }
}

/// The optional `migration` section: tuning for live rescaling (the
/// hepnos-side `Migrator` walks key ranges in bounded batches under
/// traffic) and, optionally, the overload-driven autoscaler that triggers
/// it. Absent, live rescaling uses the built-in defaults; every knob has a
/// serde default so handwritten configs set only what they care about.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Keys copied per migration range (the unit of freezing).
    #[serde(default = "d_batch_keys")]
    pub batch_keys: usize,
    /// Source chains migrated concurrently.
    #[serde(default = "d_max_inflight_ranges")]
    pub max_inflight_ranges: usize,
    /// `Busy { retry_after }` hint (milliseconds) returned to writers that
    /// touch a frozen range.
    #[serde(default = "d_freeze_retry_ms")]
    pub freeze_retry_ms: u64,
    /// Pause (milliseconds) between ranges of one source chain.
    #[serde(default)]
    pub range_pause_ms: u64,
    /// Autoscale policy; `None` means decisions stay manual.
    #[serde(default)]
    pub autoscale: Option<AutoscaleConfig>,
}

fn d_batch_keys() -> usize {
    256
}
fn d_max_inflight_ranges() -> usize {
    4
}
fn d_freeze_retry_ms() -> u64 {
    5
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            batch_keys: d_batch_keys(),
            max_inflight_ranges: d_max_inflight_ranges(),
            freeze_retry_ms: d_freeze_retry_ms(),
            range_pause_ms: 0,
            autoscale: None,
        }
    }
}

/// The `migration.autoscale` subsection: thresholds for overload-driven
/// add-provider / drain-provider decisions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Queue-depth high-water mark at or above which a node counts as
    /// overloaded.
    #[serde(default = "d_queue_hwm_trigger")]
    pub queue_hwm_trigger: u64,
    /// Shed fraction (0..1) at or above which a node counts as overloaded.
    #[serde(default = "d_shed_rate_trigger")]
    pub shed_rate_trigger: f64,
    /// LSM write stalls + sheds per interval at or above which a node
    /// counts as overloaded.
    #[serde(default = "d_stall_trigger")]
    pub stall_trigger: u64,
    /// Consecutive overloaded intervals before scaling out.
    #[serde(default = "d_sustain_intervals")]
    pub sustain_intervals: u32,
    /// Minimum seconds between two scaling actions.
    #[serde(default = "d_cooldown_secs")]
    pub cooldown_secs: u64,
    /// Seconds the whole deployment must stay idle before draining.
    #[serde(default = "d_drain_idle_secs")]
    pub drain_idle_secs: u64,
    /// Never drain below this many nodes.
    #[serde(default = "d_min_nodes")]
    pub min_nodes: usize,
}

fn d_queue_hwm_trigger() -> u64 {
    16
}
fn d_shed_rate_trigger() -> f64 {
    0.05
}
fn d_stall_trigger() -> u64 {
    8
}
fn d_sustain_intervals() -> u32 {
    2
}
fn d_cooldown_secs() -> u64 {
    30
}
fn d_drain_idle_secs() -> u64 {
    120
}
fn d_min_nodes() -> usize {
    1
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            queue_hwm_trigger: d_queue_hwm_trigger(),
            shed_rate_trigger: d_shed_rate_trigger(),
            stall_trigger: d_stall_trigger(),
            sustain_intervals: d_sustain_intervals(),
            cooldown_secs: d_cooldown_secs(),
            drain_idle_secs: d_drain_idle_secs(),
            min_nodes: d_min_nodes(),
        }
    }
}

/// A full Bedrock service configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Margo/Argobots resources.
    pub margo: MargoConfig,
    /// Yokan providers.
    pub providers: Vec<ProviderConfig>,
    /// Overload protection; `None` (the default) disables admission
    /// control and watermarks, keeping older configs valid.
    #[serde(default)]
    pub overload: Option<OverloadConfig>,
    /// LSM engine tuning for `lsm` databases; `None` uses engine defaults.
    #[serde(default)]
    pub lsm: Option<LsmConfig>,
    /// Chain replication; `None` (the default) keeps every database
    /// single-copy.
    #[serde(default)]
    pub replication: Option<ReplicationConfig>,
    /// Live rescaling and autoscale tuning; `None` uses built-in defaults
    /// and manual scaling.
    #[serde(default)]
    pub migration: Option<MigrationConfig>,
}

/// Errors raised during bootstrap.
#[derive(Debug)]
pub enum BedrockError {
    /// Config could not be parsed.
    Parse(String),
    /// Runtime construction failed (duplicate names, unknown pools...).
    Runtime(argos::RuntimeError),
    /// Margo wiring failed.
    Margo(margo::MargoError),
    /// A database backend could not be created.
    Backend(String),
    /// The configuration is structurally invalid.
    Invalid(String),
}

impl fmt::Display for BedrockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BedrockError::Parse(m) => write!(f, "config parse error: {m}"),
            BedrockError::Runtime(e) => write!(f, "runtime error: {e}"),
            BedrockError::Margo(e) => write!(f, "margo error: {e}"),
            BedrockError::Backend(m) => write!(f, "backend error: {m}"),
            BedrockError::Invalid(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for BedrockError {}

impl ServiceConfig {
    /// Parse from JSON text.
    pub fn from_json(text: &str) -> Result<ServiceConfig, BedrockError> {
        serde_json::from_str(text).map_err(|e| BedrockError::Parse(e.to_string()))
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialization cannot fail")
    }

    /// Generate the paper's per-node server topology (§IV-D): one provider
    /// per database, each on a dedicated pool and execution stream, serving
    /// `n_event_dbs` event databases and `n_product_dbs` product databases,
    /// with `extra_xstreams` additional xstreams draining the shared RPC
    /// pool. For `Lsm`, `data_dir` is the root under which each database
    /// gets a subdirectory (the node-local SSD).
    pub fn hepnos_node(
        n_event_dbs: usize,
        n_product_dbs: usize,
        extra_xstreams: usize,
        backend: BackendKind,
        data_dir: Option<PathBuf>,
    ) -> ServiceConfig {
        let mut pools = vec![PoolConfig {
            name: "default".into(),
            kind: "fifo_wait".into(),
        }];
        let mut xstreams = Vec::new();
        let mut providers = Vec::new();
        let mut provider_id = 0u16;
        let mut add = |label: &str, idx: usize, provider_id: u16| {
            let pool_name = format!("pool_{label}_{idx}");
            pools.push(PoolConfig {
                name: pool_name.clone(),
                kind: "fifo_wait".into(),
            });
            xstreams.push(XstreamConfig {
                name: format!("es_{label}_{idx}"),
                pools: vec![pool_name.clone(), "default".into()],
            });
            let db_name = format!("{label}_{idx}");
            providers.push(ProviderConfig {
                name: format!("yokan_{label}_{idx}"),
                provider_id,
                pool: pool_name,
                databases: vec![DatabaseConfig {
                    name: db_name.clone(),
                    kind: backend,
                    path: data_dir.as_ref().map(|d| d.join(&db_name)),
                }],
            });
        };
        for i in 0..n_event_dbs {
            add("events", i, provider_id);
            provider_id += 1;
        }
        for i in 0..n_product_dbs {
            add("products", i, provider_id);
            provider_id += 1;
        }
        for i in 0..extra_xstreams {
            xstreams.push(XstreamConfig {
                name: format!("es_rpc_{i}"),
                pools: vec!["default".into()],
            });
        }
        if extra_xstreams == 0 && xstreams.is_empty() {
            xstreams.push(XstreamConfig {
                name: "es_rpc_0".into(),
                pools: vec!["default".into()],
            });
        }
        ServiceConfig {
            margo: MargoConfig {
                argobots: ArgobotsConfig { pools, xstreams },
                rpc_pool: "default".into(),
            },
            providers,
            overload: None,
            lsm: None,
            replication: None,
            migration: None,
        }
    }
}

/// How many databases of each container kind a HEPnOS deployment uses
/// (paper §II-C1: "The number of databases for each type of container is
/// independently configurable").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DbCounts {
    /// Dataset databases (paths → UUIDs).
    pub datasets: usize,
    /// Run databases.
    pub runs: usize,
    /// Subrun databases.
    pub subruns: usize,
    /// Event databases.
    pub events: usize,
    /// Product databases.
    pub products: usize,
}

impl Default for DbCounts {
    /// The paper's per-node layout: 8 event + 8 product databases, one of
    /// each container-metadata database.
    fn default() -> Self {
        DbCounts {
            datasets: 1,
            runs: 1,
            subruns: 1,
            events: 8,
            products: 8,
        }
    }
}

impl ServiceConfig {
    /// Generate a full HEPnOS server node: one provider per database, each
    /// with a dedicated pool and execution stream, covering all five
    /// container kinds.
    pub fn hepnos_topology(
        counts: DbCounts,
        backend: BackendKind,
        data_dir: Option<PathBuf>,
    ) -> ServiceConfig {
        let mut cfg = ServiceConfig {
            margo: MargoConfig {
                argobots: ArgobotsConfig {
                    pools: vec![PoolConfig {
                        name: "default".into(),
                        kind: "fifo_wait".into(),
                    }],
                    xstreams: vec![XstreamConfig {
                        name: "es_rpc".into(),
                        pools: vec!["default".into()],
                    }],
                },
                rpc_pool: "default".into(),
            },
            providers: Vec::new(),
            overload: None,
            lsm: None,
            replication: None,
            migration: None,
        };
        let mut provider_id = 0u16;
        for (label, n) in [
            ("datasets", counts.datasets),
            ("runs", counts.runs),
            ("subruns", counts.subruns),
            ("events", counts.events),
            ("products", counts.products),
        ] {
            for i in 0..n {
                let pool_name = format!("pool_{label}_{i}");
                cfg.margo.argobots.pools.push(PoolConfig {
                    name: pool_name.clone(),
                    kind: "fifo_wait".into(),
                });
                cfg.margo.argobots.xstreams.push(XstreamConfig {
                    name: format!("es_{label}_{i}"),
                    pools: vec![pool_name.clone(), "default".into()],
                });
                let db_name = format!("{label}_{i}");
                cfg.providers.push(ProviderConfig {
                    name: format!("yokan_{label}_{i}"),
                    provider_id,
                    pool: pool_name,
                    databases: vec![DatabaseConfig {
                        name: db_name.clone(),
                        kind: backend,
                        path: data_dir.as_ref().map(|d| d.join(&db_name)),
                    }],
                });
                provider_id += 1;
            }
        }
        cfg
    }
}

/// What a client needs to reach one provider.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct ProviderDescriptor {
    /// Provider id.
    pub provider_id: u16,
    /// Databases served, sorted.
    pub databases: Vec<String>,
}

/// Replication parameters a server advertises to clients so both sides
/// compute identical chains.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct ReplicationDescriptor {
    /// Replicas per logical database.
    pub factor: usize,
}

/// What a client needs to reach one server — the paper's
/// `connect("config.json")` payload for a single node.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct ConnectionDescriptor {
    /// Routable endpoint address.
    pub address: String,
    /// Providers on this server.
    pub providers: Vec<ProviderDescriptor>,
    /// Replication advertisement; absent (older descriptors) means
    /// single-copy.
    #[serde(default)]
    pub replication: Option<ReplicationDescriptor>,
}

impl ConnectionDescriptor {
    /// Parse a deployment-wide connection file: a JSON array of per-server
    /// descriptors (what a job script aggregates from every server's
    /// [`BedrockServer::descriptor`]). This is the payload behind the
    /// paper's `DataStore::connect("config.json")`.
    pub fn parse_deployment(json: &str) -> Result<Vec<ConnectionDescriptor>, BedrockError> {
        serde_json::from_str(json).map_err(|e| BedrockError::Parse(e.to_string()))
    }

    /// Serialize a deployment's descriptors to the connection-file JSON.
    pub fn deployment_to_json(descriptors: &[ConnectionDescriptor]) -> String {
        serde_json::to_string_pretty(descriptors).expect("descriptor serialization cannot fail")
    }
}

/// A running Bedrock-bootstrapped server.
pub struct BedrockServer {
    margo: MargoInstance,
    yokan: YokanService,
    descriptor: ConnectionDescriptor,
}

impl fmt::Debug for BedrockServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BedrockServer")
            .field("descriptor", &self.descriptor)
            .finish()
    }
}

impl BedrockServer {
    /// The Margo instance (address, runtime, forward).
    pub fn margo(&self) -> &MargoInstance {
        &self.margo
    }

    /// The Yokan service (databases).
    pub fn yokan(&self) -> &YokanService {
        &self.yokan
    }

    /// This server's routable address.
    pub fn address(&self) -> String {
        self.margo.address()
    }

    /// The connection descriptor clients use to find providers/databases.
    pub fn descriptor(&self) -> &ConnectionDescriptor {
        &self.descriptor
    }

    /// Admission-control counters (all zero when the config had no
    /// `overload` section).
    pub fn overload_stats(&self) -> margo::OverloadStats {
        self.margo.overload_stats()
    }

    /// Graceful teardown: stop serving, drain pools, join xstreams.
    pub fn shutdown(self) {
        self.margo.finalize();
    }
}

/// Bootstrap a server on `endpoint` from `config`.
pub fn launch(
    endpoint: Arc<dyn Endpoint>,
    config: &ServiceConfig,
) -> Result<BedrockServer, BedrockError> {
    // Build the argos runtime.
    let mut rb = Runtime::builder();
    for p in &config.margo.argobots.pools {
        let disc = SchedulingDiscipline::parse(&p.kind)
            .ok_or_else(|| BedrockError::Invalid(format!("unknown scheduler kind: {}", p.kind)))?;
        rb = rb.pool(&p.name, disc);
    }
    for x in &config.margo.argobots.xstreams {
        let pool_refs: Vec<&str> = x.pools.iter().map(|s| s.as_str()).collect();
        rb = rb.xstream(&x.name, &pool_refs);
    }
    let runtime = rb.build().map_err(BedrockError::Runtime)?;
    let margo = MargoInstance::new(endpoint, runtime, &config.margo.rpc_pool)
        .map_err(BedrockError::Margo)?;
    if let Some(ov) = &config.overload {
        margo.enable_admission(ov.admission());
    }
    let watermarks = config.overload.as_ref().and_then(|ov| ov.watermarks());
    let lsm_opts = match &config.lsm {
        Some(c) => c.options()?,
        None => lsmdb::Options::default(),
    };
    let yokan = YokanService::register(&margo);
    let mut providers = Vec::new();
    for p in &config.providers {
        yokan
            .add_provider(&margo, p.provider_id, &p.pool)
            .map_err(BedrockError::Margo)?;
        let mut names = Vec::new();
        for db in &p.databases {
            let backend: Arc<dyn yokan::Backend> = match db.kind {
                BackendKind::Map => match &watermarks {
                    Some(w) => Arc::new(MemBackend::new().with_watermarks(w.clone())),
                    None => Arc::new(MemBackend::new()),
                },
                BackendKind::Lsm => {
                    let path = db.path.as_ref().ok_or_else(|| {
                        BedrockError::Invalid(format!("database {} needs a path", db.name))
                    })?;
                    Arc::new(
                        LsmBackend::open_with(path, lsm_opts.clone())
                            .map_err(|e| BedrockError::Backend(e.to_string()))?,
                    )
                }
            };
            yokan.add_database(p.provider_id, &db.name, backend);
            names.push(db.name.clone());
        }
        names.sort();
        providers.push(ProviderDescriptor {
            provider_id: p.provider_id,
            databases: names,
        });
    }
    providers.sort_by_key(|p| p.provider_id);
    // Persist the topology epoch beside the durable databases: a node
    // relaunched on the same data directory resumes at the epoch it had
    // installed, instead of coming back at epoch 1 and fencing every
    // current-epoch client until traffic re-teaches it.
    if let Some(dir) = config
        .providers
        .iter()
        .flat_map(|p| p.databases.iter())
        .filter_map(|db| db.path.as_ref().and_then(|path| path.parent()))
        .next()
    {
        let _ = std::fs::create_dir_all(dir);
        yokan.set_epoch_persistence(dir.join("topology_epoch"));
    }
    let replication = match &config.replication {
        Some(r) if r.factor > 1 => {
            yokan.set_forward_params(r.forward_params());
            Some(ReplicationDescriptor { factor: r.factor })
        }
        Some(_) | None => None,
    };
    let descriptor = ConnectionDescriptor {
        address: margo.address(),
        providers,
        replication,
    };
    Ok(BedrockServer {
        margo,
        yokan,
        descriptor,
    })
}

/// Every `(address, provider, database)` target a deployment serves.
pub fn deployment_targets(descriptors: &[ConnectionDescriptor]) -> Vec<yokan::DbTarget> {
    let mut targets = Vec::new();
    for d in descriptors {
        for p in &d.providers {
            for db in &p.databases {
                targets.push(yokan::DbTarget::new(d.address.clone(), p.provider_id, db));
            }
        }
    }
    targets
}

/// The deployment's replica chains: every database target grouped by name
/// and chained with the largest advertised replication factor (1 — i.e.
/// singleton chains — when no server advertises replication). Servers and
/// clients both derive their routing from this, so they agree without
/// coordination.
pub fn deployment_chains(descriptors: &[ConnectionDescriptor]) -> Vec<Vec<yokan::DbTarget>> {
    let factor = descriptors
        .iter()
        .filter_map(|d| d.replication.as_ref().map(|r| r.factor))
        .max()
        .unwrap_or(1);
    yokan::build_chains(&deployment_targets(descriptors), factor)
}

/// Install chain-forward routes on one server from the deployment's
/// descriptors. For every chain member hosted here, the successors are the
/// rest of the chain in circular order (so a promoted backup keeps
/// forwarding — degraded — toward the replaced head). Call it on every
/// server after all descriptors are known; re-calling with a changed
/// deployment replaces the routes.
pub fn wire_replication_node(server: &BedrockServer, descriptors: &[ConnectionDescriptor]) {
    let here = server.address();
    for chain in deployment_chains(descriptors) {
        if chain.len() < 2 {
            continue;
        }
        let n = chain.len();
        for (i, member) in chain.iter().enumerate() {
            if member.addr != here {
                continue;
            }
            let successors: Vec<yokan::DbTarget> =
                (1..n).map(|k| chain[(i + k) % n].clone()).collect();
            server
                .yokan()
                .set_forward_routes(member.provider_id, &member.db, &successors);
        }
    }
}

/// Wire chain-forward routes across a set of co-hosted servers (the
/// single-process deployment used by tests and benchmarks). Equivalent to
/// collecting every descriptor and calling [`wire_replication_node`] on
/// each server.
pub fn wire_replication(servers: &[&BedrockServer]) {
    let descriptors: Vec<ConnectionDescriptor> =
        servers.iter().map(|s| s.descriptor().clone()).collect();
    for s in servers {
        wire_replication_node(s, &descriptors);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurio::local::Fabric;
    use yokan::{DbTarget, YokanClient};

    #[test]
    fn hepnos_node_topology_matches_paper_shape() {
        let cfg = ServiceConfig::hepnos_node(8, 8, 0, BackendKind::Map, None);
        assert_eq!(cfg.providers.len(), 16);
        // one pool per provider + default
        assert_eq!(cfg.margo.argobots.pools.len(), 17);
        assert_eq!(cfg.margo.argobots.xstreams.len(), 16);
        let event_dbs: Vec<_> = cfg
            .providers
            .iter()
            .flat_map(|p| &p.databases)
            .filter(|d| d.name.starts_with("events"))
            .collect();
        assert_eq!(event_dbs.len(), 8);
    }

    #[test]
    fn json_round_trip() {
        let cfg = ServiceConfig::hepnos_node(2, 2, 1, BackendKind::Map, None);
        let text = cfg.to_json();
        let parsed = ServiceConfig::from_json(&text).unwrap();
        assert_eq!(parsed.providers.len(), 4);
        assert_eq!(parsed.margo.rpc_pool, "default");
    }

    #[test]
    fn parse_handwritten_config() {
        let text = r#"{
            "margo": {
                "argobots": {
                    "pools": [{"name": "default", "kind": "fifo_wait"}],
                    "xstreams": [{"name": "es0", "pools": ["default"]}]
                },
                "rpc_pool": "default"
            },
            "providers": [{
                "name": "kv",
                "provider_id": 3,
                "pool": "default",
                "databases": [{"name": "events_0", "type": "map"}]
            }]
        }"#;
        let cfg = ServiceConfig::from_json(text).unwrap();
        assert_eq!(cfg.providers[0].provider_id, 3);
        assert_eq!(cfg.providers[0].databases[0].kind, BackendKind::Map);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ServiceConfig::from_json("{not json").is_err());
        assert!(ServiceConfig::from_json("{}").is_err());
    }

    #[test]
    fn launch_and_serve() {
        let fabric = Fabric::new(Default::default());
        let cfg = ServiceConfig::hepnos_node(2, 2, 1, BackendKind::Map, None);
        let server = launch(fabric.endpoint("node0"), &cfg).unwrap();
        let desc = server.descriptor().clone();
        assert_eq!(desc.providers.len(), 4);
        assert_eq!(desc.address, server.address());
        let client = YokanClient::new(fabric.endpoint("client"));
        let t = DbTarget::new(desc.address.clone(), 0, "events_0");
        client.put(&t, b"k", b"v").unwrap();
        assert_eq!(client.get(&t, b"k").unwrap(), Some(b"v".to_vec()));
        // Database list matches the descriptor.
        let dbs = client.list_databases(&desc.address, 0).unwrap();
        assert_eq!(dbs, desc.providers[0].databases);
        server.shutdown();
    }

    #[test]
    fn launch_lsm_requires_path() {
        let fabric = Fabric::new(Default::default());
        let mut cfg = ServiceConfig::hepnos_node(1, 0, 0, BackendKind::Lsm, None);
        cfg.providers[0].databases[0].path = None;
        let err = launch(fabric.endpoint("n"), &cfg).unwrap_err();
        assert!(matches!(err, BedrockError::Invalid(_)));
    }

    #[test]
    fn launch_lsm_with_path_persists() {
        let dir = std::env::temp_dir().join(format!("bedrock-lsm-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let fabric = Fabric::new(Default::default());
        let cfg = ServiceConfig::hepnos_node(1, 1, 0, BackendKind::Lsm, Some(dir.clone()));
        let server = launch(fabric.endpoint("n"), &cfg).unwrap();
        let client = YokanClient::new(fabric.endpoint("c"));
        let t = DbTarget::new(server.address(), 0, "events_0");
        client.put(&t, b"persist", b"yes").unwrap();
        server.shutdown();
        let has_wal = std::fs::read_dir(dir.join("events_0"))
            .unwrap()
            .any(|e| e.unwrap().file_name().to_string_lossy().starts_with("wal-"));
        assert!(dir.join("events_0").join("MANIFEST").exists() || has_wal);
        // Relaunch on the same directory: the value must still be there.
        let server = launch(fabric.endpoint("n2"), &cfg).unwrap();
        let t = DbTarget::new(server.address(), 0, "events_0");
        assert_eq!(client.get(&t, b"persist").unwrap(), Some(b"yes".to_vec()));
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lsm_section_parses_tunes_and_rejects_bad_wal_sync() {
        let text = r#"{
            "margo": {
                "argobots": {
                    "pools": [{"name": "default", "kind": "fifo_wait"}],
                    "xstreams": [{"name": "es0", "pools": ["default"]}]
                }
            },
            "providers": [],
            "lsm": {"memtable_bytes": 4096, "wal_sync": "group"}
        }"#;
        let cfg = ServiceConfig::from_json(text).unwrap();
        let lsm = cfg.lsm.as_ref().unwrap();
        assert_eq!(lsm.memtable_bytes, 4096);
        let opts = lsm.options().unwrap();
        assert_eq!(opts.memtable_bytes, 4096);
        assert_eq!(opts.wal_sync, lsmdb::WalSync::Group);
        // Unset knobs keep engine defaults.
        assert_eq!(opts.max_levels, lsmdb::Options::default().max_levels);
        // Unknown wal_sync values are a config error, not a silent default.
        let bad = LsmConfig {
            wal_sync: "sometimes".into(),
            ..LsmConfig::default()
        };
        assert!(matches!(bad.options(), Err(BedrockError::Invalid(_))));
        // Configs without the section still parse (backward compatible).
        let old = ServiceConfig::hepnos_node(1, 1, 0, BackendKind::Map, None).to_json();
        assert!(ServiceConfig::from_json(&old).unwrap().lsm.is_none());
    }

    #[test]
    fn launch_applies_lsm_tuning() {
        let dir = std::env::temp_dir().join(format!("bedrock-lsmtune-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let fabric = Fabric::new(Default::default());
        let mut cfg = ServiceConfig::hepnos_node(1, 0, 0, BackendKind::Lsm, Some(dir.clone()));
        cfg.lsm = Some(LsmConfig {
            memtable_bytes: 256, // tiny: a handful of puts forces flushes
            inline_compaction: true,
            ..LsmConfig::default()
        });
        let server = launch(fabric.endpoint("n"), &cfg).unwrap();
        let client = YokanClient::new(fabric.endpoint("c"));
        let t = DbTarget::new(server.address(), 0, "events_0");
        for i in 0..50u32 {
            client
                .put(&t, format!("k{i:03}").as_bytes(), &[7u8; 32])
                .unwrap();
        }
        // The tiny memtable must have flushed — visible through stats.
        let all = server.yokan().backend_stats();
        let (_, _, stats) = all
            .iter()
            .find(|(pid, name, _)| *pid == 0 && name == "events_0")
            .expect("events_0 stats present");
        let lsm = stats.lsm.as_ref().expect("lsm stats present");
        assert!(lsm.flushes > 0, "tuned memtable size was not applied");
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn descriptor_serializes_for_clients() {
        let fabric = Fabric::new(Default::default());
        let cfg = ServiceConfig::hepnos_node(1, 1, 0, BackendKind::Map, None);
        let server = launch(fabric.endpoint("node0"), &cfg).unwrap();
        let json = serde_json::to_string(server.descriptor()).unwrap();
        let parsed: ConnectionDescriptor = serde_json::from_str(&json).unwrap();
        assert_eq!(&parsed, server.descriptor());
        server.shutdown();
    }

    #[test]
    fn overload_section_parses_with_defaults() {
        let text = r#"{
            "margo": {
                "argobots": {
                    "pools": [{"name": "default", "kind": "fifo_wait"}],
                    "xstreams": [{"name": "es0", "pools": ["default"]}]
                }
            },
            "providers": [{
                "name": "kv",
                "provider_id": 0,
                "pool": "default",
                "databases": [{"name": "events_0", "type": "map"}]
            }],
            "overload": {"max_queued_per_provider": 4}
        }"#;
        let cfg = ServiceConfig::from_json(text).unwrap();
        let ov = cfg.overload.as_ref().unwrap();
        assert_eq!(ov.max_queued_per_provider, 4);
        assert_eq!(ov.retry_after_ms, 5);
        assert!(ov.watermarks().is_none(), "hard watermark defaults to off");
        // Configs without the section still parse (backward compatible).
        let old = ServiceConfig::hepnos_node(1, 1, 0, BackendKind::Map, None).to_json();
        assert!(ServiceConfig::from_json(&old).unwrap().overload.is_none());
    }

    #[test]
    fn overload_zero_queue_sheds_everything() {
        let fabric = Fabric::new(Default::default());
        let mut cfg = ServiceConfig::hepnos_node(1, 0, 0, BackendKind::Map, None);
        cfg.overload = Some(OverloadConfig {
            max_queued_per_provider: 0,
            ..Default::default()
        });
        let server = launch(fabric.endpoint("node0"), &cfg).unwrap();
        let client = YokanClient::new(fabric.endpoint("client"));
        let t = DbTarget::new(server.address(), 0, "events_0");
        let err = client.put(&t, b"k", b"v").unwrap_err();
        assert!(
            matches!(
                &err,
                yokan::YokanError::Rpc(mercurio::RpcError::Busy { .. })
            ),
            "expected Busy pushback, got {err:?}"
        );
        let stats = server.overload_stats();
        assert!(stats.shed_queue_full >= 1);
        assert_eq!(stats.admitted, 0);
        server.shutdown();
    }

    #[test]
    fn overload_watermarks_reach_backends() {
        let fabric = Fabric::new(Default::default());
        let mut cfg = ServiceConfig::hepnos_node(1, 0, 0, BackendKind::Map, None);
        cfg.overload = Some(OverloadConfig {
            hard_watermark_bytes: 64,
            ..Default::default()
        });
        let server = launch(fabric.endpoint("node0"), &cfg).unwrap();
        let client = YokanClient::new(fabric.endpoint("client"));
        let t = DbTarget::new(server.address(), 0, "events_0");
        client.put(&t, b"small", b"fits").unwrap();
        let err = client.put(&t, b"big", &[0u8; 256]).unwrap_err();
        assert!(
            matches!(
                &err,
                yokan::YokanError::Rpc(mercurio::RpcError::Busy { .. })
            ),
            "expected hard-watermark shed, got {err:?}"
        );
        server.shutdown();
    }

    #[test]
    fn replication_section_parses_with_defaults() {
        let text = r#"{
            "margo": {
                "argobots": {
                    "pools": [{"name": "default", "kind": "fifo_wait"}],
                    "xstreams": [{"name": "es0", "pools": ["default"]}]
                }
            },
            "providers": [],
            "replication": {}
        }"#;
        let cfg = ServiceConfig::from_json(text).unwrap();
        let r = cfg.replication.as_ref().unwrap();
        assert_eq!(r.factor, 2);
        assert_eq!(
            r.forward_params().timeout,
            yokan::ForwardParams::default().timeout
        );
        // Configs without the section still parse (backward compatible).
        let old = ServiceConfig::hepnos_node(1, 1, 0, BackendKind::Map, None).to_json();
        assert!(ServiceConfig::from_json(&old)
            .unwrap()
            .replication
            .is_none());
        // ...and so do descriptors that never heard of replication.
        let desc: ConnectionDescriptor =
            serde_json::from_str(r#"{"address": "n0", "providers": []}"#).unwrap();
        assert!(desc.replication.is_none());
    }

    #[test]
    fn launch_advertises_replication_factor() {
        let fabric = Fabric::new(Default::default());
        let mut cfg = ServiceConfig::hepnos_node(1, 0, 0, BackendKind::Map, None);
        cfg.replication = Some(ReplicationConfig::default());
        let server = launch(fabric.endpoint("node0"), &cfg).unwrap();
        assert_eq!(server.descriptor().replication.as_ref().unwrap().factor, 2);
        // factor 1 is not an advertisement.
        cfg.replication = Some(ReplicationConfig {
            factor: 1,
            ..Default::default()
        });
        let single = launch(fabric.endpoint("node1"), &cfg).unwrap();
        assert!(single.descriptor().replication.is_none());
        server.shutdown();
        single.shutdown();
    }

    #[test]
    fn wire_replication_forwards_mutations_to_both_replicas() {
        let fabric = Fabric::new(Default::default());
        let mut cfg = ServiceConfig::hepnos_node(2, 0, 0, BackendKind::Map, None);
        cfg.replication = Some(ReplicationConfig::default());
        let s0 = launch(fabric.endpoint("node0"), &cfg).unwrap();
        let s1 = launch(fabric.endpoint("node1"), &cfg).unwrap();
        wire_replication(&[&s0, &s1]);
        let descriptors = vec![s0.descriptor().clone(), s1.descriptor().clone()];
        let chains = deployment_chains(&descriptors);
        assert_eq!(chains.len(), 2, "one chain per logical database");
        for c in &chains {
            assert_eq!(c.len(), 2);
        }
        // A routed client writes through the chain head...
        let client = YokanClient::new(fabric.endpoint("client"));
        client.install_replica_routes(&chains);
        let head = chains[0][0].clone();
        client.put(&head, b"k", b"v").unwrap();
        // ...and a raw (un-routed) client sees the value on every replica.
        let raw = YokanClient::new(fabric.endpoint("raw"));
        for replica in &chains[0] {
            assert_eq!(
                raw.get(replica, b"k").unwrap(),
                Some(b"v".to_vec()),
                "replica {replica:?} missing the forwarded value"
            );
        }
        let fwd = s0.yokan().forward_stats();
        let fwd1 = s1.yokan().forward_stats();
        assert_eq!(
            fwd.forwards_sent + fwd1.forwards_sent,
            1,
            "exactly one chain hop for one mutation"
        );
        s0.shutdown();
        s1.shutdown();
    }

    #[test]
    fn invalid_scheduler_kind_rejected() {
        let fabric = Fabric::new(Default::default());
        let mut cfg = ServiceConfig::hepnos_node(1, 0, 0, BackendKind::Map, None);
        cfg.margo.argobots.pools[0].kind = "quantum".into();
        let err = launch(fabric.endpoint("x"), &cfg).unwrap_err();
        assert!(matches!(err, BedrockError::Invalid(_)));
    }
}

#[cfg(test)]
mod topology_tests {
    use super::*;
    use mercurio::local::Fabric;

    #[test]
    fn hepnos_topology_covers_all_kinds() {
        let counts = DbCounts::default();
        let cfg = ServiceConfig::hepnos_topology(counts, BackendKind::Map, None);
        assert_eq!(cfg.providers.len(), 1 + 1 + 1 + 8 + 8);
        let names: Vec<&str> = cfg
            .providers
            .iter()
            .flat_map(|p| &p.databases)
            .map(|d| d.name.as_str())
            .collect();
        assert!(names.contains(&"datasets_0"));
        assert!(names.contains(&"runs_0"));
        assert!(names.contains(&"subruns_0"));
        assert!(names.contains(&"events_7"));
        assert!(names.contains(&"products_7"));
    }

    #[test]
    fn hepnos_topology_launches() {
        let fabric = Fabric::new(Default::default());
        let counts = DbCounts {
            datasets: 1,
            runs: 1,
            subruns: 1,
            events: 2,
            products: 2,
        };
        let cfg = ServiceConfig::hepnos_topology(counts, BackendKind::Map, None);
        let server = launch(fabric.endpoint("node0"), &cfg).unwrap();
        assert_eq!(server.descriptor().providers.len(), 7);
        server.shutdown();
    }
}
