//! Umbrella crate for the HEPnOS reproduction workspace. See README.md.
pub use hepnos;
