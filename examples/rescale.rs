//! Storage rescaling (the Pufferscale extension the paper cites as future
//! potential, §V): grow a running deployment from 3 to 4 event/product
//! databases, migrate the keys, and keep reading — comparing how much data
//! modulo vs consistent-hash-ring placement has to move when a single
//! database is added.
//!
//! Run: `cargo run --example rescale`

use bedrock::{ConnectionDescriptor, DbCounts};
use hepnos::placement::{ModuloPlacement, Placement, RingPlacement};
use hepnos::rescale::{rescale_events, rescale_products};
use hepnos::testing::local_deployment;
use hepnos::{DataStore, ProductLabel, WriteBatch};
use yokan::{DbTarget, YokanClient};

fn filter_dbs(full: &[ConnectionDescriptor], max: usize) -> Vec<ConnectionDescriptor> {
    full.iter()
        .map(|d| {
            let mut d = d.clone();
            for p in &mut d.providers {
                p.databases.retain(|name| {
                    match name
                        .rsplit('_')
                        .next()
                        .and_then(|s| s.parse::<usize>().ok())
                    {
                        Some(i) if name.starts_with("events") || name.starts_with("products") => {
                            i < max
                        }
                        _ => true,
                    }
                });
            }
            d.providers.retain(|p| !p.databases.is_empty());
            d
        })
        .collect()
}

fn targets(descriptors: &[ConnectionDescriptor], prefix: &str) -> Vec<DbTarget> {
    let mut v: Vec<DbTarget> = descriptors
        .iter()
        .flat_map(|d| {
            d.providers.iter().flat_map(|p| {
                p.databases
                    .iter()
                    .filter(|n| n.starts_with(prefix))
                    .map(|n| DbTarget::new(d.address.clone(), p.provider_id, n))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    v.sort();
    v
}

fn demo(placement: &dyn Placement, make_placement: fn() -> Box<dyn Placement>, name: &str) {
    let dep = local_deployment(
        1,
        DbCounts {
            datasets: 1,
            runs: 1,
            subruns: 1,
            events: 4,
            products: 4,
        },
    );
    let full = dep.descriptors().to_vec();
    let small = filter_dbs(&full, 3);
    let store = DataStore::connect_with_placement(
        dep.fabric().endpoint("writer"),
        &small,
        make_placement(),
    )
    .unwrap();
    let ds = store.root().create_dataset("grow").unwrap();
    let uuid = ds.uuid().unwrap();
    let run = ds.create_run(1).unwrap();
    let label = ProductLabel::new("p").unwrap();
    for s in 0..64u64 {
        let sr = run.create_subrun(s).unwrap();
        let mut batch = WriteBatch::new(&store);
        for e in 0..16u64 {
            let ev = batch.create_event(&sr, &uuid, e).unwrap();
            batch.store(&ev, &label, &(s * 16 + e)).unwrap();
        }
        batch.flush().unwrap();
    }
    let client = YokanClient::new(dep.fabric().endpoint("migrator"));
    let ev_stats = rescale_events(
        &client,
        &targets(&small, "events"),
        &targets(&full, "events"),
        placement,
    )
    .unwrap();
    let pr_stats = rescale_products(
        &client,
        &targets(&small, "products"),
        &targets(&full, "products"),
        placement,
    )
    .unwrap();
    println!(
        "{name:>7}: events moved {:>4}/{} ({:>4.1}%), products moved {:>4}/{} ({:>4.1}%)",
        ev_stats.keys_moved,
        ev_stats.keys_scanned,
        ev_stats.moved_fraction() * 100.0,
        pr_stats.keys_moved,
        pr_stats.keys_scanned,
        pr_stats.moved_fraction() * 100.0
    );
    // Verify reads through the grown topology.
    let store2 =
        DataStore::connect_with_placement(dep.fabric().endpoint("reader"), &full, make_placement())
            .unwrap();
    let run2 = store2.dataset("grow").unwrap().run(1).unwrap();
    let mut n = 0u64;
    for sr in run2.subruns().unwrap() {
        for ev in sr.events().unwrap() {
            let v: u64 = ev.load(&label).unwrap().expect("survived migration");
            assert_eq!(v, sr.number() * 16 + ev.number());
            n += 1;
        }
    }
    assert_eq!(n, 1024);
    dep.shutdown();
}

fn main() {
    println!("growing 3 -> 4 event/product databases, migrating 1024 events + products:\n");
    demo(&ModuloPlacement, || Box::new(ModuloPlacement), "modulo");
    demo(
        &RingPlacement::new(128),
        || Box::new(RingPlacement::new(128)),
        "ring",
    );
    println!("\nadding one database: the ring moves ~1/n of the keys, while modulo");
    println!("placement reshuffles most of them — the property Pufferscale needs");
}
