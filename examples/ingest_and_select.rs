//! The paper's full pipeline, end to end (§III-B, §IV):
//!
//! 1. produce a NOvA-layout dataset of columnar event files;
//! 2. ingest it into HEPnOS with the HDF2HEPnOS-style `DataLoader`
//!    (including generating the Rust code for the stored class from the
//!    file schema);
//! 3. run the candidate selection through the `ParallelEventProcessor`;
//! 4. run the same selection through the traditional file-based workflow;
//! 5. verify both accepted exactly the same slices — the paper's
//!    equal-results check;
//! 6. accumulate the selected slices into a CAFAna-style energy spectrum
//!    (per-worker partials merged at the end, the analogue of the MPI
//!    reduction in §IV-B).
//!
//! Run: `cargo run --release --example ingest_and_select`

use hepfile::run_file_workflow;
use hepnos::{ParallelEventProcessor, PepOptions};
use nova::loader::{slice_label, slice_type_name, DataLoader};
use nova::{files, select_slices, GeneratorConfig, NovaGenerator, SelectionCuts};
use parking_lot::Mutex;
use std::collections::BTreeSet;

fn main() {
    let dir = std::env::temp_dir().join(format!("hepnos-example-{}", std::process::id()));
    // A signal-enriched sample (like an MC study) so the final spectrum is
    // visibly populated at example scale; the production fraction (~1e-4)
    // is what the tests and benches use.
    let gen = NovaGenerator::with_config(
        20230213,
        GeneratorConfig {
            signal_fraction: 3e-3,
            ..GeneratorConfig::default()
        },
    );
    let cuts = SelectionCuts::default();

    // (1) A small synthetic dataset: 8 files x 250 events.
    let paths = files::write_dataset(&dir, &gen, 8, 250).expect("write dataset");
    println!("wrote {} files under {}", paths.len(), dir.display());

    // (2a) HDF2HEPnOS schema analysis + code generation.
    let reader = hepfile::TableFileReader::open(&paths[0]).expect("open file");
    println!("\n--- generated class (from file schema) ---");
    print!("{}", nova::loader::generate_class_code(&reader.schema()[0]));
    println!("-------------------------------------------\n");

    // (2b) Ingest into a 2-node deployment.
    let dep = hepnos::testing::local_deployment(2, Default::default());
    let store = dep.datastore();
    let ds = store.root().create_dataset("fermilab/nova").unwrap();
    let loader = DataLoader::new(store.clone(), ds.clone());
    let stats = loader.ingest_files(&paths).expect("ingest");
    println!(
        "ingested {} files: {} events, {} slices",
        stats.files, stats.events, stats.slices
    );

    // (3) HEPnOS workflow: ParallelEventProcessor + selection + spectrum.
    let accepted_hepnos: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::new());
    const WORKERS: usize = 4;
    let spectra: Vec<Mutex<nova::Spectrum>> = (0..WORKERS)
        .map(|_| Mutex::new(nova::Spectrum::nue_energy()))
        .collect();
    let pep = ParallelEventProcessor::new(
        store.clone(),
        PepOptions {
            num_workers: WORKERS,
            load_batch_size: 1024,
            dispatch_batch_size: 64,
            prefetch: vec![(slice_label(), slice_type_name())],
            ..Default::default()
        },
    );
    let cuts2 = cuts.clone();
    let pep_stats = pep
        .process(&ds, |worker, pe| {
            let slices: Vec<nova::SliceQuantities> =
                pe.load(&slice_label()).unwrap().unwrap_or_default();
            let (run, subrun, event) = pe.event().coordinates();
            let rec = nova::EventRecord {
                run,
                subrun,
                event,
                slices,
            };
            let mut spec = spectra[worker].lock();
            spec.add_exposure(1.0);
            for s in rec.slices.iter().filter(|s| cuts2.passes(s)) {
                spec.fill_slice(s);
            }
            drop(spec);
            accepted_hepnos.lock().extend(select_slices(&rec, &cuts2));
        })
        .expect("pep");
    println!(
        "HEPnOS workflow: {} events in {:.1?} ({:.0} ev/s), load imbalance {:.2}",
        pep_stats.total_events,
        pep_stats.wall_time,
        pep_stats.throughput(),
        pep_stats.load_imbalance()
    );

    // (4) Traditional workflow: worker pool over the file list.
    let accepted_file: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::new());
    let grid = run_file_workflow(paths.len(), 4, |i| {
        let events = files::read_file(&paths[i]).expect("read file");
        let mut acc = Vec::new();
        for ev in &events {
            acc.extend(select_slices(ev, &cuts));
        }
        accepted_file.lock().extend(acc);
    });
    println!(
        "file-based workflow: {} files in {:.1?}, utilization {:.0}%",
        grid.total_files,
        grid.makespan,
        grid.utilization() * 100.0
    );

    // (5) The equal-results check.
    let a = accepted_hepnos.into_inner();
    let b = accepted_file.into_inner();
    assert_eq!(a, b, "workflows disagree!");
    println!(
        "\nboth workflows accepted the same {} candidate slices (of {} total; \
         rejection ratio {:.1e})",
        a.len(),
        stats.slices,
        stats.slices as f64 / a.len().max(1) as f64
    );
    // (6) Merge the per-worker spectra — the MPI-reduction analogue.
    let mut total_spectrum = nova::Spectrum::nue_energy();
    for s in &spectra {
        total_spectrum.merge(&s.lock());
    }
    println!(
        "
selected nu_e-candidate energy spectrum ({} entries over {} events):",
        total_spectrum.integral(),
        total_spectrum.exposure()
    );
    print!("{}", total_spectrum.ascii());
    dep.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
