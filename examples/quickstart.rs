//! Quickstart: the paper's Listing 1, in Rust.
//!
//! Starts an in-process HEPnOS deployment (one server "node", in-memory
//! backends), stores and loads a vector of particles on an event, and
//! iterates the hierarchy.
//!
//! Run: `cargo run --example quickstart`

use hepnos::{DataStore, ProductLabel};
use serde::{Deserialize, Serialize};

// The example structure from Listing 1. Boost's `serialize` member becomes
// a serde derive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Particle {
    x: f32,
    y: f32,
    z: f32,
}

fn main() {
    // In C++: hepnos::DataStore::connect("config.json"). Here the testing
    // helper boots servers in-process and hands us a connected DataStore;
    // see examples/multinode_config.rs for the explicit Bedrock route.
    let deployment = hepnos::testing::local_deployment(1, Default::default());
    let datastore: DataStore = deployment.datastore();

    // Access (create) a nested dataset.
    let ds = datastore
        .root()
        .create_dataset("path/to/dataset")
        .expect("dataset creation failed");
    // Access run 43, create subrun 56 and event 25 within it.
    let run = ds.create_run(43).expect("run creation failed");
    let subrun = run.create_subrun(56).expect("subrun creation failed");
    let ev = subrun.create_event(25).expect("event creation failed");

    // Store data (a Vec of Particle).
    let vp1 = vec![
        Particle {
            x: 1.0,
            y: 2.0,
            z: 3.0,
        },
        Particle {
            x: -1.5,
            y: 0.25,
            z: 9.0,
        },
    ];
    let label = ProductLabel::new("mylabel").unwrap();
    ev.store(&label, &vp1).expect("store failed");

    // Load data back.
    let vp2: Vec<Particle> = ev
        .load(&label)
        .expect("load failed")
        .expect("product should exist");
    assert_eq!(vp1, vp2);
    println!(
        "stored and loaded {} particles on event {:?}",
        vp2.len(),
        ev
    );

    // Iterate over the subruns in a run.
    for subrun in run.subruns().expect("iteration failed") {
        println!("run {} contains subrun {}", run.number(), subrun.number());
    }

    // Navigation is also possible by full path, from any client.
    let again = datastore.dataset("path/to/dataset").expect("open failed");
    println!(
        "dataset '{}' has uuid {}",
        again.full_path(),
        again.uuid().expect("non-root datasets have uuids")
    );

    deployment.shutdown();
    println!("done");
}
