//! HEPnOS over real TCP sockets: the multi-process deployment path.
//!
//! The paper runs servers and clients as separate MPI programs; the Rust
//! reproduction's equivalent is endpoints on the TCP transport. This
//! example boots a server on a real socket and talks to it through a
//! separate TCP endpoint — the same code works across actual processes or
//! hosts by exchanging the connection descriptor as JSON.
//!
//! Run: `cargo run --example tcp_cluster`

use bedrock::{BackendKind, DbCounts, ServiceConfig};
use hepnos::{DataStore, ProductLabel};
use mercurio::tcp::TcpEndpoint;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Hit {
    plane: u16,
    cell: u16,
    adc: u32,
}

fn main() {
    // --- server side (would be its own process in production) ---
    let server_ep = TcpEndpoint::bind(0).expect("bind server socket");
    let counts = DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 2,
        products: 2,
    };
    let config = ServiceConfig::hepnos_topology(counts, BackendKind::Map, None);
    let server = bedrock::launch(server_ep, &config).expect("server bootstrap");
    // The descriptor is plain JSON — this is what a job script would write
    // to a shared file for the clients.
    let descriptor_json = serde_json::to_string_pretty(server.descriptor()).unwrap();
    println!(
        "server up at {}\ndescriptor:\n{descriptor_json}\n",
        server.address()
    );

    // --- client side ---
    let client_ep = TcpEndpoint::bind(0).expect("bind client socket");
    let descriptor = serde_json::from_str(&descriptor_json).expect("descriptor parses");
    let store = DataStore::connect(client_ep, &[descriptor]).expect("connect over tcp");

    let ds = store.root().create_dataset("tcp/demo").unwrap();
    let ev = ds
        .create_run(1)
        .unwrap()
        .create_subrun(2)
        .unwrap()
        .create_event(3)
        .unwrap();
    let hits = vec![
        Hit {
            plane: 1,
            cell: 10,
            adc: 512,
        },
        Hit {
            plane: 2,
            cell: 20,
            adc: 760,
        },
    ];
    let label = ProductLabel::new("hits").unwrap();
    ev.store(&label, &hits).unwrap();
    let back: Vec<Hit> = ev.load(&label).unwrap().unwrap();
    assert_eq!(back, hits);
    println!("stored and loaded {} hits over TCP sockets", back.len());

    // Batched writes also cross the socket (bulk path for large batches).
    let sr = ds.run(1).unwrap().subrun(2).unwrap();
    let uuid = ds.uuid().unwrap();
    let mut batch = hepnos::WriteBatch::new(&store);
    for e in 10..110u64 {
        let ev = batch.create_event(&sr, &uuid, e).unwrap();
        batch
            .store(
                &ev,
                &label,
                &vec![
                    Hit {
                        plane: 0,
                        cell: e as u16,
                        adc: 1
                    };
                    4
                ],
            )
            .unwrap();
    }
    batch.flush().unwrap();
    println!(
        "batched 100 events + products in {} RPCs",
        batch.flush_rpcs()
    );
    assert_eq!(sr.events().unwrap().len(), 101);

    server.shutdown();
    println!("done");
}
