//! Bedrock-style deployment from explicit JSON configuration (paper §II-B):
//! build the per-node service config (pools, execution streams, providers,
//! databases), launch several server "nodes" on one fabric, hand the
//! connection descriptors to a client, and use the store across nodes.
//!
//! Run: `cargo run --example multinode_config`

use bedrock::{BackendKind, DbCounts, ServiceConfig};
use hepnos::{DataStore, ProductLabel};
use mercurio::local::Fabric;

fn main() {
    // The per-node topology the paper tunes in §IV-D, scaled down: every
    // database gets its own provider, pool and execution stream.
    let counts = DbCounts {
        datasets: 1,
        runs: 1,
        subruns: 1,
        events: 4,
        products: 4,
    };
    let config = ServiceConfig::hepnos_topology(counts, BackendKind::Map, None);
    println!("--- bedrock config for one server node (excerpt) ---");
    let json = config.to_json();
    for line in json.lines().take(24) {
        println!("{line}");
    }
    println!("... ({} lines total)\n", json.lines().count());

    // Re-parse from JSON (what `bedrock` does with a config file) and boot
    // three server nodes on a shared fabric.
    let parsed = ServiceConfig::from_json(&json).expect("config parses");
    let fabric = Fabric::new(Default::default());
    let servers: Vec<_> = (0..3)
        .map(|i| {
            bedrock::launch(fabric.endpoint(&format!("node{i}")), &parsed)
                .expect("server bootstrap")
        })
        .collect();
    let descriptors: Vec<_> = servers.iter().map(|s| s.descriptor().clone()).collect();
    println!("launched {} server nodes:", servers.len());
    for d in &descriptors {
        println!(
            "  {} providers={} (first: {:?})",
            d.address,
            d.providers.len(),
            d.providers[0].databases
        );
    }

    // A client connects with the descriptor list — the paper's
    // connect("config.json").
    let client = fabric.endpoint("client");
    let store = DataStore::connect(client, &descriptors).expect("connect");
    println!(
        "\nclient connected: {} event dbs, {} product dbs across the deployment",
        store.num_event_databases(),
        store.num_product_databases()
    );

    // Spread data across nodes: many subruns hash to different databases.
    let ds = store.root().create_dataset("spread").unwrap();
    let run = ds.create_run(1).unwrap();
    let label = ProductLabel::new("blob").unwrap();
    for s in 0..24u64 {
        let sr = run.create_subrun(s).unwrap();
        let ev = sr.create_event(0).unwrap();
        ev.store(&label, &vec![s as u32; 8]).unwrap();
    }
    // And read everything back through a *second* client, proving placement
    // agreement across independent clients.
    let store2 = DataStore::connect(fabric.endpoint("client2"), &descriptors).unwrap();
    let ds2 = store2.dataset("spread").unwrap();
    let mut total = 0;
    for sr in ds2.run(1).unwrap().subruns().unwrap() {
        let ev = sr.event(0).unwrap();
        let blob: Vec<u32> = ev.load(&label).unwrap().expect("product exists");
        assert_eq!(blob, vec![sr.number() as u32; 8]);
        total += 1;
    }
    println!("second client read {total} subruns' products back correctly");

    for s in servers {
        s.shutdown();
    }
    println!("done");
}
